//! Chaos test: the full service under injected infrastructure faults.
//!
//! A seeded [`FaultInjector`] wraps the ground-truth step action, so a
//! configurable fraction of step attempts come back infra-red (worker
//! crashes, timeouts, tooling blips). The service's recovery layer must
//! absorb all of it:
//!
//! * (a) the mainline stays green — `verify_history` passes even when
//!   the audit itself runs under the same faulty action;
//! * (b) no genuinely-passing change is ever rejected, and no broken
//!   change ever lands;
//! * (c) reruns with the same seed produce bit-identical histories
//!   (same ticket outcomes, same commit log, same HEAD).

use keeping_master_green::core::recovery::RecoveryConfig;
use keeping_master_green::core::service::{StepAction, SubmitQueueService, TicketState};
use keeping_master_green::exec::{FaultInjector, FaultPlan, RetryPolicy, StepOutcome};
use keeping_master_green::vcs::{FileOp, Patch, RepoPath};
use sq_workload::repo_model::MaterializedRepo;
use sq_workload::{ChangeSpec, WorkloadBuilder, WorkloadParams};

const FLAKE_RATE: f64 = 0.15; // ≥ 0.1 per-step infra-fault probability
const SEEDS: [u64; 3] = [1, 2, 3];
const N_CHANGES: usize = 24;

fn small_params() -> WorkloadParams {
    let mut p = WorkloadParams::ios();
    p.n_parts = 16;
    p
}

/// Render a change as a patch, planting a visible bug marker when the
/// ground truth says the change is intrinsically broken.
fn patch_with_truth(m: &MaterializedRepo, c: &ChangeSpec) -> Patch {
    let mut patch = m.patch_for(c);
    if !c.intrinsic_success {
        let pkg = m.package_of(c.parts[0]);
        patch.push(FileOp::Write {
            path: RepoPath::new(format!("{pkg}/bug_marker_{}.txt", c.id.0)).unwrap(),
            content: "this change is broken".into(),
        });
    }
    patch
}

/// The genuine outcome of a step: fails iff the target's package
/// contains a bug marker.
fn truth_outcome(
    step: &keeping_master_green::exec::BuildStep,
    tree: &keeping_master_green::vcs::Tree,
) -> StepOutcome {
    let pkg = step.target.package();
    let has_bug = tree
        .paths_under(pkg)
        .any(|p| p.file_name().starts_with("bug_marker"));
    if has_bug {
        StepOutcome::Failure(format!("bug marker present in {pkg}"))
    } else {
        StepOutcome::Success
    }
}

/// Everything that defines "the history" of a run — the observables
/// that must be bit-identical across reruns with the same seed.
#[derive(Debug, Clone, PartialEq, Eq)]
struct History {
    /// (change id, final ticket state rendered) in submission order.
    outcomes: Vec<(u64, String)>,
    /// Final mainline HEAD.
    head: String,
    /// Commit points verified green by the from-scratch audit.
    verified: usize,
}

struct ChaosRun {
    history: History,
    landed: u64,
    rejected: u64,
    step_retries: u64,
    good: Vec<u64>,
    bad: Vec<u64>,
}

fn chaos_run(seed: u64, rate: f64) -> ChaosRun {
    let params = small_params();
    let m = MaterializedRepo::generate(&params).unwrap();
    let w = WorkloadBuilder::new(params)
        .seed(seed)
        .n_changes(N_CHANGES)
        .build()
        .unwrap();
    let recovery = RecoveryConfig {
        retry: RetryPolicy::standard(6, seed),
        max_rebuilds: 3,
        quarantine_threshold: 3,
    };
    let service = SubmitQueueService::with_recovery(m.repo.clone(), 3, recovery);
    let injector = FaultInjector::new(FaultPlan::uniform(seed ^ 0xC4A05, rate));
    let action: Box<StepAction> =
        Box::new(move |step, tree| injector.run(step, |s| truth_outcome(s, tree)));

    let mut outcomes = Vec::with_capacity(w.changes.len());
    let (mut good, mut bad) = (Vec::new(), Vec::new());
    for c in &w.changes {
        if c.intrinsic_success {
            good.push(c.id.0);
        } else {
            bad.push(c.id.0);
        }
        let base = service.head();
        let ticket = service.submit(
            format!("dev{}", c.developer.0),
            format!("change {}", c.id),
            base,
            patch_with_truth(&m, c),
        );
        service.run_until_idle(&action);
        let state = match service.status(ticket).unwrap() {
            TicketState::Landed(commit) => format!("landed {commit}"),
            TicketState::Rejected(reason) => format!("rejected: {reason}"),
            TicketState::Queued => panic!("queue drained but {ticket} still queued"),
        };
        outcomes.push((c.id.0, state));
    }
    // (a) Mainline green, audited under the *same* faulty action: the
    // audit's own retries absorb the injected flakes.
    let verified = service
        .verify_history(&action)
        .unwrap_or_else(|e| panic!("seed {seed}: mainline not green under faults: {e}"));
    let stats = service.stats();
    ChaosRun {
        history: History {
            outcomes,
            head: service.head().to_string(),
            verified,
        },
        landed: stats.landed,
        rejected: stats.rejected,
        step_retries: stats.step_retries,
        good,
        bad,
    }
}

#[test]
fn chaos_faults_never_reject_good_changes_and_history_is_reproducible() {
    for seed in SEEDS {
        let run = chaos_run(seed, FLAKE_RATE);

        // Faults actually fired: at a 15% per-step rate over dozens of
        // steps, silence would mean the injector is disconnected.
        assert!(
            run.step_retries > 0,
            "seed {seed}: no infra faults were injected"
        );

        // (b) Every genuinely-passing change landed; every broken one
        // was rejected for its *content*, not for infrastructure.
        assert_eq!(
            run.landed + run.rejected,
            N_CHANGES as u64,
            "seed {seed}: unresolved tickets"
        );
        for (id, state) in &run.history.outcomes {
            if run.good.contains(id) {
                assert!(
                    state.starts_with("landed"),
                    "seed {seed}: genuinely-passing change C{id} was rejected: {state}"
                );
            } else {
                assert!(run.bad.contains(id));
                assert!(
                    state.starts_with("rejected"),
                    "seed {seed}: broken change C{id} landed: {state}"
                );
                assert!(
                    !state.contains("infrastructure"),
                    "seed {seed}: broken change C{id} blamed on infra: {state}"
                );
            }
        }

        // (a) The audit saw root + every landed change, all green.
        assert_eq!(run.history.verified as u64, run.landed + 1, "seed {seed}");

        // (c) Same seed ⇒ bit-identical history.
        let rerun = chaos_run(seed, FLAKE_RATE);
        assert_eq!(
            run.history, rerun.history,
            "seed {seed}: rerun produced a different history"
        );
    }
}

// ---------------------------------------------------------------------
// Crash-point chaos: the durable service under seeded process deaths.
//
// A `MemStorage` crash plan kills the simulated process at mutating
// storage operations — including the window between a journal append
// and its acknowledgement — at rate 0.1. After every death the harness
// does what an operator does: keeps the VCS (external state), revives
// the storage medium, and reopens the service from snapshot + journal.
// The recovered run must converge to byte-identical exported state with
// an uncrashed twin, never double-commit, and never lose an
// acknowledged enqueue.
// ---------------------------------------------------------------------

use keeping_master_green::core::durable::DurableSubmitQueue;
use keeping_master_green::core::service::TicketId;
use keeping_master_green::store::{CrashPlan, DurableStore, DurableStoreConfig, MemStorage};
use std::sync::{Arc, Mutex as StdMutex};

const CRASH_RATE: f64 = 0.1;
const CRASH_SEEDS: [u64; 3] = [11, 12, 13];

type SharedStorage = Arc<StdMutex<MemStorage>>;

struct DurableRun {
    export: String,
    landed: u64,
    commits: usize,
    crashes: u32,
    acked: Vec<u64>,
}

/// Revive the dead medium and reopen the service over the surviving
/// repository — the recovery step after each simulated process death.
fn recover(
    dead: DurableSubmitQueue<DurableStore<SharedStorage>>,
    storage: &SharedStorage,
) -> DurableSubmitQueue<DurableStore<SharedStorage>> {
    let repo = dead.repository();
    drop(dead);
    storage.lock().unwrap().revive();
    DurableSubmitQueue::open(
        repo,
        3,
        RecoveryConfig::disabled(),
        storage.clone(),
        DurableStoreConfig::with_snapshot_every(8),
    )
    .expect("reopen after crash")
}

/// Run the whole workload through a durable service whose storage dies
/// per `plan`, recovering after every death.
fn durable_run(workload_seed: u64, plan: CrashPlan) -> DurableRun {
    let params = small_params();
    let m = MaterializedRepo::generate(&params).unwrap();
    let w = WorkloadBuilder::new(params)
        .seed(workload_seed)
        .n_changes(N_CHANGES)
        .build()
        .unwrap();
    let storage: SharedStorage = Arc::new(StdMutex::new(MemStorage::with_crashes(plan)));
    let mut dq = DurableSubmitQueue::open(
        m.repo.clone(),
        3,
        RecoveryConfig::disabled(),
        storage.clone(),
        DurableStoreConfig::with_snapshot_every(8),
    )
    .expect("open fresh store");
    let action: Box<StepAction> = Box::new(truth_outcome);

    let mut crashes = 0u32;
    let mut acked = Vec::with_capacity(w.changes.len());
    for (i, c) in w.changes.iter().enumerate() {
        // Tickets are assigned sequentially, and the resubmit protocol
        // below keeps the assignment deterministic across crashes.
        let expected = i as u64 + 1;
        loop {
            let base = dq.head();
            match dq.submit(
                format!("dev{}", c.developer.0),
                format!("change {}", c.id),
                base,
                patch_with_truth(&m, c),
            ) {
                Ok(t) => {
                    assert_eq!(t, TicketId(expected), "ticket assignment diverged");
                    break;
                }
                Err(_) => {
                    crashes += 1;
                    dq = recover(dq, &storage);
                    // The ack was lost; the enqueue itself may or may
                    // not be durable. If recovery replayed it, the
                    // submission counts as accepted — never resubmit.
                    if dq.status(TicketId(expected)).is_some() {
                        break;
                    }
                }
            }
        }
        acked.push(expected);
        // Drain: process until idle, recovering across deaths.
        loop {
            match dq.process_next(&action) {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    crashes += 1;
                    dq = recover(dq, &storage);
                }
            }
        }
    }
    let repo = dq.repository();
    DurableRun {
        export: dq.export_state_json(),
        landed: dq.service().stats().landed,
        commits: repo.log(repo.head()).unwrap().len(),
        crashes,
        acked,
    }
}

#[test]
fn chaos_crash_points_recover_to_identical_state() {
    for seed in CRASH_SEEDS {
        let crashed = durable_run(seed, CrashPlan::at_rate(seed, CRASH_RATE));
        // The plan actually fired: a silent run would test nothing.
        assert!(crashed.crashes > 0, "seed {seed}: no crash points hit");

        // An uncrashed twin over the same workload.
        let clean = durable_run(seed, CrashPlan::none());
        assert_eq!(clean.crashes, 0);

        // Snapshot + journal replay reconstructs service state
        // byte-identically to the run that never died.
        assert_eq!(
            crashed.export, clean.export,
            "seed {seed}: recovered state diverged from uncrashed run"
        );

        // Zero double-applied commits: the mainline has exactly one
        // commit per landed change (plus the root), crashes or not.
        assert_eq!(
            crashed.commits as u64,
            crashed.landed + 1,
            "seed {seed}: commit log does not match landed count"
        );
        assert_eq!(crashed.commits, clean.commits, "seed {seed}");

        // Zero acked-then-lost events: every acknowledged enqueue
        // reached a terminal state.
        let states: Vec<String> = crashed
            .acked
            .iter()
            .map(|t| {
                let json = &crashed.export;
                let key = format!("\"{t}\":");
                assert!(
                    json.contains(&key),
                    "seed {seed}: acked ticket {t} missing from recovered state"
                );
                key
            })
            .collect();
        assert_eq!(states.len(), N_CHANGES);
        assert!(
            !crashed.export.contains("\"state\":\"queued\""),
            "seed {seed}: drained run left a ticket queued"
        );
    }
}

// ---------------------------------------------------------------------
// Replicated failover chaos: seeded leader deaths with fenced promotion.
//
// The durable service now journals through a replicating `Leader` with
// two followers. A crash plan kills the *leader's* medium at arbitrary
// mutating ops — including the window between the VCS commit and the
// verdict journal append. After every death the harness does what the
// failover coordinator does: picks the best surviving replica
// (`best_promotion_candidate`), promotes it above the cluster-max epoch
// (`promote_from_follower`), revives the deposed leader's medium, and
// reattaches it as a follower (resync discards its divergent unacked
// tail). The run must converge to byte-identical exported state with an
// uncrashed replicated twin — zero lost acked enqueues, zero double
// commits — for every seed, in both Async and Quorum ack modes, with
// promotion epochs strictly increasing.
// ---------------------------------------------------------------------

use keeping_master_green::core::failover::{
    best_promotion_candidate, open_leader, promote_from_follower,
};
use keeping_master_green::store::{AckMode, Leader, ReplicationConfig};

const REPL_CRASH_RATE: f64 = 0.08;
const REPL_SEEDS: [u64; 3] = [21, 22, 23];
const N_REPL_CHANGES: usize = 12;

type ReplQueue = DurableSubmitQueue<Leader<SharedStorage>>;

fn repl_store_cfg() -> DurableStoreConfig {
    DurableStoreConfig::with_snapshot_every(8)
}

struct ReplicatedRun {
    export: String,
    landed: u64,
    commits: usize,
    crashes: u32,
    failovers: u32,
    epochs: Vec<u64>,
    acked: Vec<u64>,
    truncated_tail_bytes: u64,
}

/// Fenced failover after a leader death: promote the best surviving
/// replica, bring the deposed medium back as a follower, and re-arm the
/// crash plan (fresh seed) on the new leader if the run is a chaos run.
/// `replicas[0]` is the dead leader's storage; the vec is reordered so
/// the promoted replica leads.
fn failover_replicated(
    dead: ReplQueue,
    replicas: &mut Vec<SharedStorage>,
    mode: AckMode,
    plan: Option<CrashPlan>,
) -> (ReplQueue, u64) {
    let repo = dead.repository();
    let dead_epoch = dead.epoch();
    drop(dead); // the leader process is gone; its medium is dark
    let survivors: Vec<SharedStorage> = replicas[1..].to_vec();
    let candidate = best_promotion_candidate(&survivors, &repl_store_cfg(), &repl_cfg(mode))
        .expect("surviving replicas are readable");
    let promoted_storage = survivors[candidate.index].clone();
    let (dq, report) = promote_from_follower(
        repo,
        3,
        RecoveryConfig::disabled(),
        promoted_storage.clone(),
        repl_store_cfg(),
        repl_cfg(mode),
        candidate.cluster_epoch.max(dead_epoch),
    )
    .expect("promotion from best candidate");

    // Rebuild the cluster around the new leader: the other survivor
    // first, then the revived old medium (divergent tail discarded by
    // resync, which also repairs any torn tail its crash left behind).
    let old_leader = replicas[0].clone();
    old_leader.lock().unwrap().revive();
    old_leader.lock().unwrap().set_plan(CrashPlan::none());
    let mut order = vec![promoted_storage.clone()];
    for (i, s) in survivors.iter().enumerate() {
        if i != candidate.index {
            dq.attach_follower(s.clone(), repl_store_cfg())
                .expect("reattach survivor");
            order.push(s.clone());
        }
    }
    dq.attach_follower(old_leader.clone(), repl_store_cfg())
        .expect("reattach deposed leader");
    order.push(old_leader);
    *replicas = order;

    if let Some(plan) = plan {
        promoted_storage.lock().unwrap().set_plan(plan);
    }
    (dq, report.epoch)
}

fn repl_cfg(mode: AckMode) -> ReplicationConfig {
    ReplicationConfig::with_ack_mode(mode)
}

/// Run the workload through a replicated durable service whose leader
/// medium dies at rate `REPL_CRASH_RATE` (when `crashy`), failing over
/// after every death.
fn replicated_run(workload_seed: u64, mode: AckMode, crashy: bool) -> ReplicatedRun {
    let params = small_params();
    let m = MaterializedRepo::generate(&params).unwrap();
    let w = WorkloadBuilder::new(params)
        .seed(workload_seed)
        .n_changes(N_REPL_CHANGES)
        .build()
        .unwrap();
    let mut replicas: Vec<SharedStorage> = (0..3)
        .map(|_| Arc::new(StdMutex::new(MemStorage::with_crashes(CrashPlan::none()))))
        .collect();
    let mut dq = open_leader(
        m.repo.clone(),
        3,
        RecoveryConfig::disabled(),
        replicas[0].clone(),
        repl_store_cfg(),
        repl_cfg(mode),
    )
    .expect("open replicated leader");
    dq.attach_follower(replicas[1].clone(), repl_store_cfg())
        .expect("attach");
    dq.attach_follower(replicas[2].clone(), repl_store_cfg())
        .expect("attach");
    // Arm the chaos only once the cluster is formed, so every death
    // exercises failover rather than first-boot handling.
    let mut generation = 0u64;
    let next_plan = |generation: u64| {
        crashy.then(|| CrashPlan::at_rate(workload_seed ^ (0xFA11 + generation), REPL_CRASH_RATE))
    };
    if let Some(plan) = next_plan(generation) {
        replicas[0].lock().unwrap().set_plan(plan);
    }
    let action: Box<StepAction> = Box::new(truth_outcome);

    let (mut crashes, mut failovers) = (0u32, 0u32);
    let mut epochs = vec![dq.epoch()];
    let mut acked = Vec::with_capacity(w.changes.len());
    for (i, c) in w.changes.iter().enumerate() {
        let expected = i as u64 + 1;
        loop {
            let base = dq.head();
            match dq.submit(
                format!("dev{}", c.developer.0),
                format!("change {}", c.id),
                base,
                patch_with_truth(&m, c),
            ) {
                Ok(t) => {
                    assert_eq!(t, TicketId(expected), "ticket assignment diverged");
                    break;
                }
                Err(_) => {
                    crashes += 1;
                    generation += 1;
                    let (next, epoch) =
                        failover_replicated(dq, &mut replicas, mode, next_plan(generation));
                    dq = next;
                    failovers += 1;
                    epochs.push(epoch);
                    // The ack was lost. If the promoted replica holds
                    // the enqueue, it was durable on a quorum of media
                    // — never resubmit an accepted change.
                    if dq.status(TicketId(expected)).is_some() {
                        break;
                    }
                }
            }
        }
        acked.push(expected);
        loop {
            match dq.process_next(&action) {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    crashes += 1;
                    generation += 1;
                    let (next, epoch) =
                        failover_replicated(dq, &mut replicas, mode, next_plan(generation));
                    dq = next;
                    failovers += 1;
                    epochs.push(epoch);
                }
            }
        }
    }
    let repo = dq.repository();
    ReplicatedRun {
        export: dq.export_state_json(),
        landed: dq.service().stats().landed,
        commits: repo.log(repo.head()).unwrap().len(),
        crashes,
        failovers,
        epochs,
        acked,
        truncated_tail_bytes: dq.store_stats().truncated_tail_bytes,
    }
}

#[test]
fn chaos_leader_deaths_fail_over_with_zero_loss_in_both_ack_modes() {
    for mode in [AckMode::Async, AckMode::Quorum] {
        for seed in REPL_SEEDS {
            let crashed = replicated_run(seed, mode, true);
            // The chaos actually fired and forced real promotions.
            assert!(
                crashed.crashes > 0,
                "seed {seed} {mode:?}: no leader deaths injected"
            );
            assert!(
                crashed.failovers > 0,
                "seed {seed} {mode:?}: no failovers exercised"
            );
            // Fencing is strict: every promotion claimed a fresh epoch.
            assert!(
                crashed.epochs.windows(2).all(|w| w[0] < w[1]),
                "seed {seed} {mode:?}: epochs not strictly increasing: {:?}",
                crashed.epochs
            );

            // An uncrashed replicated twin over the same workload.
            let clean = replicated_run(seed, mode, false);
            assert_eq!(clean.crashes, 0);
            assert_eq!(clean.epochs, vec![1], "twin must never promote");
            // The twin's recovery path never repaired anything: its WAL
            // tail was never torn (bugfix guard for `truncated_bytes`).
            assert_eq!(
                clean.truncated_tail_bytes, 0,
                "seed {seed} {mode:?}: uncrashed twin repaired a torn tail"
            );

            // Zero lost acked enqueues: the promoted replicas carried
            // every acknowledged record, so the final state is
            // byte-identical to the run where the leader never died.
            assert_eq!(
                crashed.export, clean.export,
                "seed {seed} {mode:?}: failover diverged from uncrashed run"
            );

            // Zero double commits across every promotion — exactly one
            // commit per landed change plus the root.
            assert_eq!(
                crashed.commits as u64,
                crashed.landed + 1,
                "seed {seed} {mode:?}: commit log does not match landed count"
            );
            assert_eq!(crashed.commits, clean.commits, "seed {seed} {mode:?}");

            // Every acked ticket reached a terminal state.
            for t in &crashed.acked {
                assert!(
                    crashed.export.contains(&format!("\"{t}\":")),
                    "seed {seed} {mode:?}: acked ticket {t} missing after failovers"
                );
            }
            assert!(
                !crashed.export.contains("\"state\":\"queued\""),
                "seed {seed} {mode:?}: drained run left a ticket queued"
            );
        }
    }
}

#[test]
fn chaos_distinct_seeds_inject_distinct_fault_patterns() {
    // Not a determinism requirement — a sanity check that the seed
    // actually steers the injected fault pattern.
    let a = chaos_run(SEEDS[0], FLAKE_RATE);
    let b = chaos_run(SEEDS[1], FLAKE_RATE);
    assert!(
        a.step_retries != b.step_retries || a.history.outcomes != b.history.outcomes,
        "two different seeds produced identical runs and retry counts"
    );
}
