//! Thread-safety of the embeddable service: the paper's API service is
//! "a stateless backend service" hit by many developers at once; our
//! in-process equivalent must accept concurrent submissions and status
//! queries while a processor drains the queue.

use keeping_master_green::core::service::{SubmitQueueService, TicketState};
use keeping_master_green::exec::StepOutcome;
use keeping_master_green::vcs::{Patch, RepoPath, Repository};
use std::sync::Arc;

fn repo() -> Repository {
    let mut files: Vec<(String, String)> = Vec::new();
    for i in 0..8 {
        files.push((
            format!("pkg{i}/BUILD"),
            format!("library(name = \"pkg{i}\", srcs = [\"lib.rs\"])"),
        ));
        files.push((format!("pkg{i}/lib.rs"), format!("pub fn f{i}() {{}}")));
    }
    Repository::init(files.iter().map(|(p, c)| (p.as_str(), c.as_str()))).unwrap()
}

#[test]
fn concurrent_submitters_and_one_processor() {
    let service = Arc::new(SubmitQueueService::new(repo(), 2));
    let n_threads = 4;
    let per_thread = 5;

    // Phase 1: submitters race (each on its own package: no conflicts).
    let tickets: Vec<_> = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let service = Arc::clone(&service);
            handles.push(scope.spawn(move |_| {
                let mut mine = Vec::new();
                for k in 0..per_thread {
                    // All submissions race against the same (root) HEAD;
                    // distinct files keep the rebases textual-conflict
                    // free, which is the point of this test — concurrency
                    // of the service itself, not of the patches.
                    let base = service.head();
                    let path = RepoPath::new(format!("pkg{t}/note_{k}.rs")).unwrap();
                    let ticket = service.submit(
                        format!("dev{t}"),
                        format!("edit {k} from thread {t}"),
                        base,
                        Patch::write(path, format!("// note {k} from thread {t}\n")),
                    );
                    mine.push(ticket);
                }
                mine
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
    .unwrap();

    assert_eq!(tickets.len(), n_threads * per_thread);
    // All tickets distinct.
    let mut sorted = tickets.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), tickets.len());

    // Phase 2: drain with concurrent status readers.
    let readers_done = std::sync::atomic::AtomicBool::new(false);
    crossbeam::scope(|scope| {
        let svc = Arc::clone(&service);
        let readers_done_ref = &readers_done;
        let tickets_ref = &tickets;
        scope.spawn(move |_| {
            svc.run_until_idle(&|_s, _t| StepOutcome::Success);
            readers_done_ref.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        let svc2 = Arc::clone(&service);
        scope.spawn(move |_| {
            // Poll statuses while processing happens; every answer must
            // be a valid state (never a poisoned lock or a panic).
            while !readers_done_ref.load(std::sync::atomic::Ordering::SeqCst) {
                for &t in tickets_ref {
                    let st = svc2.status(t);
                    assert!(st.is_some());
                }
                std::thread::yield_now();
            }
        });
    })
    .unwrap();

    // Everything landed: same-thread edits chain (later ones rebase), and
    // cross-thread edits touch disjoint packages.
    let mut landed = 0;
    for t in tickets {
        match service.status(t).unwrap() {
            TicketState::Landed(_) => landed += 1,
            other => panic!("expected landed, got {other:?}"),
        }
    }
    assert_eq!(landed, n_threads * per_thread);
    // Final contents: every submitted file is present at HEAD.
    for t in 0..n_threads {
        for k in 0..per_thread {
            let content = service
                .read_head_file(&format!("pkg{t}/note_{k}.rs"))
                .unwrap_or_else(|| panic!("pkg{t}/note_{k}.rs missing at HEAD"));
            assert!(content.contains(&format!("thread {t}")));
        }
    }
}
