//! End-to-end integration: a generated workload flows through the real
//! stack — materialized monorepo, three-way rebases, the Section 5
//! conflict analyzer, real parallel builds with artifact caching — and
//! the mainline stays green at every commit point.

use keeping_master_green::core::service::{SubmitQueueService, TicketState};
use keeping_master_green::exec::StepOutcome;
use keeping_master_green::vcs::{FileOp, Patch, RepoPath};
use sq_workload::repo_model::MaterializedRepo;
use sq_workload::{WorkloadBuilder, WorkloadParams};

/// Render a change as a patch, planting a visible bug marker when the
/// ground truth says the change is intrinsically broken.
fn patch_with_truth(m: &MaterializedRepo, c: &sq_workload::ChangeSpec) -> Patch {
    let mut patch = m.patch_for(c);
    if !c.intrinsic_success {
        let pkg = m.package_of(c.parts[0]);
        patch.push(FileOp::Write {
            path: RepoPath::new(format!("{pkg}/bug_marker_{}.txt", c.id.0)).unwrap(),
            content: "this change is broken".into(),
        });
    }
    patch
}

/// Build steps fail for any target whose package contains a bug marker.
fn truth_action(
    step: &keeping_master_green::exec::BuildStep,
    tree: &keeping_master_green::vcs::Tree,
) -> StepOutcome {
    let pkg = step.target.package();
    let has_bug = tree
        .paths_under(pkg)
        .any(|p| p.file_name().starts_with("bug_marker"));
    if has_bug {
        StepOutcome::Failure(format!("bug marker present in {pkg}"))
    } else {
        StepOutcome::Success
    }
}

fn small_params() -> WorkloadParams {
    let mut p = WorkloadParams::ios();
    p.n_parts = 16;
    p
}

#[test]
fn workload_through_the_full_stack_keeps_master_green() {
    let params = small_params();
    let m = MaterializedRepo::generate(&params).unwrap();
    let w = WorkloadBuilder::new(params)
        .seed(42)
        .n_changes(40)
        .build()
        .unwrap();
    let service = SubmitQueueService::new(m.repo.clone(), 4);

    let mut landed = 0;
    let mut rejected = 0;
    for c in &w.changes {
        let base = service.head(); // developer syncs before submitting
        let ticket = service.submit(
            format!("dev{}", c.developer.0),
            format!("change {}", c.id),
            base,
            patch_with_truth(&m, c),
        );
        service.run_until_idle(&truth_action);
        match service.status(ticket).unwrap() {
            TicketState::Landed(_) => {
                landed += 1;
                assert!(
                    c.intrinsic_success,
                    "broken change {} landed on the mainline",
                    c.id
                );
            }
            TicketState::Rejected(reason) => {
                rejected += 1;
                assert!(
                    !c.intrinsic_success,
                    "good change {} was rejected: {reason}",
                    c.id
                );
            }
            TicketState::Queued => panic!("queue drained but ticket still queued"),
        }
    }
    assert!(landed > 0, "some changes must land");
    assert!(rejected > 0, "the workload contains broken changes");
    assert_eq!(landed + rejected, 40);

    // Every commit point in history rebuilds green from scratch.
    let verified = service.verify_history(&truth_action).unwrap();
    assert_eq!(verified, landed + 1, "root + every landed change");
}

#[test]
fn stale_submissions_race_and_the_loser_is_rebased_or_rejected() {
    let params = small_params();
    let m = MaterializedRepo::generate(&params).unwrap();
    let w = WorkloadBuilder::new(params)
        .seed(17)
        .n_changes(30)
        .build()
        .unwrap();
    // Everyone branches from the same HEAD (release-crunch style), so
    // later submissions are stale by construction.
    let service = SubmitQueueService::new(m.repo.clone(), 4);
    let base = service.head();
    let tickets: Vec<_> = w
        .changes
        .iter()
        .filter(|c| c.intrinsic_success)
        .take(20)
        .map(|c| {
            (
                c.id,
                service.submit(
                    format!("dev{}", c.developer.0),
                    format!("change {}", c.id),
                    base,
                    patch_with_truth(&m, c),
                ),
            )
        })
        .collect();
    service.run_until_idle(&truth_action);
    let mut landed = 0;
    let mut merge_rejected = 0;
    for (id, t) in tickets {
        match service.status(t).unwrap() {
            TicketState::Landed(_) => landed += 1,
            TicketState::Rejected(reason) => {
                merge_rejected += 1;
                assert!(
                    reason.contains("merge conflict") || reason.contains("failed"),
                    "change {id} rejected for an unexpected reason: {reason}"
                );
            }
            TicketState::Queued => panic!("still queued"),
        }
    }
    assert!(
        landed >= 10,
        "disjoint-file stale changes rebase cleanly (landed {landed})"
    );
    // History is green regardless of how the race resolved.
    service.verify_history(&truth_action).unwrap();
    let _ = merge_rejected;
}

#[test]
fn artifact_cache_makes_incremental_builds_cheap() {
    let params = small_params();
    let m = MaterializedRepo::generate(&params).unwrap();
    let service = SubmitQueueService::new(m.repo.clone(), 4);
    // Land several single-part changes; each build should only rebuild
    // the affected package (plus dependents), not the world.
    let w = WorkloadBuilder::new(small_params())
        .seed(5)
        .n_changes(12)
        .build()
        .unwrap();
    for c in w.changes.iter().filter(|c| c.intrinsic_success).take(8) {
        let base = service.head();
        service.submit("dev", format!("{}", c.id), base, patch_with_truth(&m, c));
        service.run_until_idle(&truth_action);
    }
    let stats = service.stats();
    // The whole repo has 16 packages; if caching failed, every change
    // would rebuild all 16. Affected-set builds keep misses near the
    // number of actually-affected targets.
    assert!(
        stats.cache_misses < 8 * 8,
        "too many rebuilt targets: {stats:?}"
    );
}
