//! Property tests for Section 5.2: the union-graph algorithm (Steps 1–4)
//! against the Equation 6 oracle, over randomly generated workspaces and
//! patches.
//!
//! Invariants:
//! * the union-graph detector never misses a conflict Eq. 6 finds
//!   (no false negatives — the cheap pass must be conservative);
//! * when neither patch touches the build graph's structure, the fast
//!   path agrees with Equation 6 exactly;
//! * conflict relations are symmetric in the pair order.

use proptest::prelude::*;
use sq_build::affected::SnapshotAnalysis;
use sq_build::conflict::{eq6_conflict, fast_path_conflict, union_graph_conflict};
use sq_vcs::{FileOp, ObjectStore, Patch, RepoPath, Tree};

/// A small random workspace: a layered DAG of `n` packages, each with
/// two sources; package i may depend on an earlier package.
fn build_workspace(n: usize, dep_mask: u64) -> (Tree, ObjectStore) {
    let mut store = ObjectStore::new();
    let mut tree = Tree::new();
    for i in 0..n {
        for s in 0..2 {
            let id = store.put(format!("pkg{i} src{s}").into_bytes());
            tree.insert(RepoPath::new(format!("p{i}/s{s}.rs")).unwrap(), id);
        }
        let dep = if i > 0 && (dep_mask >> i) & 1 == 1 {
            format!(", deps = [\"//p{}:t{}\"]", i - 1, i - 1)
        } else {
            String::new()
        };
        let build = format!("library(name = \"t{i}\", srcs = [\"s0.rs\", \"s1.rs\"]{dep})");
        let id = store.put(build.into_bytes());
        tree.insert(RepoPath::new(format!("p{i}/BUILD")).unwrap(), id);
    }
    (tree, store)
}

/// One random patch op against the workspace.
#[derive(Debug, Clone)]
enum Op {
    EditSource { pkg: usize, src: usize, v: u8 },
    AddDep { pkg: usize, on: usize },
    NewFileInBuild { pkg: usize, v: u8 },
}

fn arb_op(n: usize) -> impl proptest::strategy::Strategy<Value = Op> {
    prop_oneof![
        3 => (0..n, 0..2usize, any::<u8>())
            .prop_map(|(pkg, src, v)| Op::EditSource { pkg, src, v }),
        1 => (1..n.max(2), any::<u8>()).prop_map(move |(pkg, v)| Op::NewFileInBuild {
            pkg: pkg.min(n - 1),
            v
        }),
        1 => (0..n, 0..n).prop_map(|(a, b)| Op::AddDep {
            pkg: a.max(b),
            on: a.min(b)
        }),
    ]
}

fn render(ops: &[Op], n: usize, dep_mask: u64) -> Patch {
    let mut patch = Patch::new();
    for op in ops {
        match op {
            Op::EditSource { pkg, src, v } => patch.push(FileOp::Write {
                path: RepoPath::new(format!("p{pkg}/s{src}.rs")).unwrap(),
                content: format!("pkg{pkg} src{src} edited v{v}"),
            }),
            Op::AddDep { pkg, on } if pkg != on => {
                // Rewrite BUILD with an extra dependency (acyclic: on < pkg).
                let base_dep = if *pkg > 0 && (dep_mask >> pkg) & 1 == 1 && *on != pkg - 1 {
                    format!("\"//p{}:t{}\", ", pkg - 1, pkg - 1)
                } else {
                    String::new()
                };
                patch.push(FileOp::Write {
                    path: RepoPath::new(format!("p{pkg}/BUILD")).unwrap(),
                    content: format!(
                        "library(name = \"t{pkg}\", srcs = [\"s0.rs\", \"s1.rs\"], deps = [{base_dep}\"//p{on}:t{on}\"])"
                    ),
                });
            }
            Op::AddDep { .. } => {}
            Op::NewFileInBuild { pkg, v } => {
                patch.push(FileOp::Write {
                    path: RepoPath::new(format!("p{pkg}/extra.rs")).unwrap(),
                    content: format!("extra v{v}"),
                });
                patch.push(FileOp::Write {
                    path: RepoPath::new(format!("p{pkg}/BUILD")).unwrap(),
                    content: format!(
                        "library(name = \"t{pkg}\", srcs = [\"s0.rs\", \"s1.rs\", \"extra.rs\"])"
                    ),
                });
            }
        }
    }
    let _ = n;
    patch
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn union_graph_is_conservative_and_fast_path_exact(
        n in 2usize..6,
        dep_mask in any::<u64>(),
        ops_i in proptest::collection::vec(arb_op(5), 1..3),
        ops_j in proptest::collection::vec(arb_op(5), 1..3),
    ) {
        let ops_i: Vec<Op> = ops_i.into_iter().filter(|op| keep(op, n)).collect();
        let ops_j: Vec<Op> = ops_j.into_iter().filter(|op| keep(op, n)).collect();
        prop_assume!(!ops_i.is_empty() && !ops_j.is_empty());
        let (tree, mut store) = build_workspace(n, dep_mask);
        // Normalize away no-op writes (content identical to the base):
        // a real change's patch is a diff, and an "edit" that changes
        // nothing would otherwise overwrite — and thus revert — the
        // other patch's work under ⊕-composition.
        let normalize = |p: Patch, store: &ObjectStore| -> Patch {
            Patch::from_ops(p.ops().filter(|op| match op {
                FileOp::Write { path, content } => {
                    tree.get(path)
                        .and_then(|id| store.get_text(&id))
                        .as_deref()
                        != Some(content.as_str())
                }
                FileOp::Delete { path } => tree.contains(path),
            }).cloned())
        };
        let pi = normalize(render(&ops_i, n, dep_mask), &store);
        let pj = normalize(render(&ops_j, n, dep_mask), &store);
        prop_assume!(!pi.is_empty() && !pj.is_empty());
        // Textually conflicting pairs are conflicts *by definition* and
        // short-circuit before Equation 6 in the production tiering
        // (`changes_conflict`); last-write-wins composition would
        // misrepresent them (the later patch silently reverts the
        // earlier one's file), so they are out of scope here.
        if sq_vcs::merge::merge_patches(&tree, &store, &pi, &pj).is_err() {
            return Ok(());
        }
        let ti = pi.apply(&tree, &mut store).unwrap();
        let tj = pj.apply(&tree, &mut store).unwrap();
        let tij = pi.compose(&pj).apply(&tree, &mut store).unwrap();

        let base = SnapshotAnalysis::analyze(&tree, &store);
        let ai = SnapshotAnalysis::analyze(&ti, &store);
        let aj = SnapshotAnalysis::analyze(&tj, &store);
        let aij = SnapshotAnalysis::analyze(&tij, &store);
        // Random dep additions can occasionally produce cycles or dangling
        // labels; those snapshots are rejected by the build system itself.
        let (Ok(base), Ok(ai), Ok(aj), Ok(aij)) = (base, ai, aj, aij) else {
            return Ok(());
        };

        let exact = eq6_conflict(&base, &ai, &aj, &aij);
        let cheap = union_graph_conflict(&base, &ai, &aj);
        // Conservative: no false negatives.
        prop_assert!(!exact || cheap, "union-graph missed a conflict");
        // Symmetric.
        prop_assert_eq!(cheap, union_graph_conflict(&base, &aj, &ai));

        // Fast path agrees exactly when applicable.
        if let Some(fast) = fast_path_conflict(&base, &ai, &aj) {
            prop_assert_eq!(fast, exact, "fast path diverged from Eq. 6");
        }
    }
}

fn keep(op: &Op, n: usize) -> bool {
    match op {
        Op::EditSource { pkg, .. } => *pkg < n,
        Op::AddDep { pkg, on } => *pkg < n && on < pkg,
        Op::NewFileInBuild { pkg, .. } => *pkg < n,
    }
}
