//! Section 2.2's back-of-envelope: "with a thousand changes per day,
//! where each change takes 30 minutes to pass all build steps, the
//! turnaround time of the last enqueued change will be over 20 days" —
//! verified in closed form and cross-checked against the simulator with
//! the Single-Queue strategy on a fully conflicting workload.

use sq_core::planner::{run_simulation, PlannerConfig};
use sq_core::strategy::{Strategy, StrategyKind};
use sq_sim::SimDuration;
use sq_workload::{WorkloadBuilder, WorkloadParams};

#[test]
fn closed_form_twenty_days() {
    // 1000 changes × 30 minutes, strictly serialized.
    let serial = SimDuration::from_mins(30) * 1000;
    let days = serial.as_hours_f64() / 24.0;
    assert!(days > 20.0, "serial backlog is {days:.1} days");
    assert!((days - 20.8).abs() < 0.1);
}

#[test]
fn simulator_reproduces_the_serial_backlog_shape() {
    // Scaled down 20×: 50 changes arriving in one burst, every pair
    // conflicting (analyzer off), constant-ish build times. The last
    // change's turnaround must be ≈ n × (build + overhead).
    let mut params = WorkloadParams::ios().with_rate(100_000.0); // near-simultaneous burst
    params.duration_sigma = 0.01; // nearly constant durations
    params.duration_median_mins = 30.0;
    params.duration_min_mins = 29.0;
    params.duration_max_mins = 31.0;
    params.success_base_logit = 50.0; // everyone succeeds: pure queueing
    params.pairwise_conflict_prob = 0.0;
    let w = WorkloadBuilder::new(params)
        .seed(8)
        .n_changes(50)
        .build()
        .unwrap();
    let strategy = Strategy::build(StrategyKind::SingleQueue, &w, None);
    let config = PlannerConfig {
        workers: 50,
        conflict_analyzer: false, // every change conflicts ⇒ one queue
        ..PlannerConfig::default()
    };
    let r = run_simulation(&w, &strategy, &config);
    assert_eq!(r.committed(), 50);
    let last = r.records.iter().max_by_key(|rec| rec.resolved).unwrap();
    let serial_estimate = 50.0 * 31.0; // n × (build + overhead) minutes
    let measured = last.turnaround.as_mins_f64();
    assert!(
        (measured - serial_estimate).abs() / serial_estimate < 0.15,
        "last turnaround {measured:.0} min vs serial estimate {serial_estimate:.0} min"
    );
}

#[test]
fn speculation_collapses_the_backlog() {
    // Same burst, same serial queue shape — but the Oracle speculates,
    // so all 50 builds run concurrently and the backlog collapses from
    // ~25 hours to ~the longest single build.
    let mut params = WorkloadParams::ios().with_rate(100_000.0);
    params.duration_sigma = 0.01;
    params.duration_median_mins = 30.0;
    params.duration_min_mins = 29.0;
    params.duration_max_mins = 31.0;
    params.success_base_logit = 50.0;
    params.pairwise_conflict_prob = 0.0;
    let w = WorkloadBuilder::new(params)
        .seed(8)
        .n_changes(50)
        .build()
        .unwrap();
    let oracle = Strategy::build(StrategyKind::Oracle, &w, None);
    let config = PlannerConfig {
        workers: 50,
        conflict_analyzer: false,
        ..PlannerConfig::default()
    };
    let r = run_simulation(&w, &oracle, &config);
    assert_eq!(r.committed(), 50);
    let worst = r
        .records
        .iter()
        .map(|rec| rec.turnaround.as_mins_f64())
        .fold(0.0, f64::max);
    assert!(
        worst < 120.0,
        "oracle speculation should finish the burst in ~one build time, got {worst:.0} min"
    );
}
