//! Property tests for the paper's headline guarantee: under *any*
//! workload and *any* scheduling strategy, the planner never lets a red
//! commit reach the mainline, never loses a change, and never leaks
//! workers.

use proptest::prelude::*;
use sq_core::audit::audit_green;
use sq_core::batching::{simulate_batching, BatchingConfig};
use sq_core::pending::ChangeOutcome;
use sq_core::planner::{run_simulation, PlannerConfig};
use sq_core::strategy::{Strategy, StrategyKind};
use sq_workload::{WorkloadBuilder, WorkloadParams};

fn arb_strategy_kind() -> impl Strategy2 {
    prop_oneof![
        Just(StrategyKind::Oracle),
        Just(StrategyKind::SpeculateAll),
        Just(StrategyKind::Optimistic),
        Just(StrategyKind::SingleQueue),
    ]
}

// Helper trait alias to keep the signature readable.
trait Strategy2: proptest::strategy::Strategy<Value = StrategyKind> {}
impl<T: proptest::strategy::Strategy<Value = StrategyKind>> Strategy2 for T {}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn planner_keeps_master_green(
        seed in 0u64..10_000,
        rate in 50f64..400.0,
        n_changes in 20usize..80,
        workers in 20usize..200,
        kind in arb_strategy_kind(),
        analyzer in any::<bool>(),
    ) {
        let w = WorkloadBuilder::new(WorkloadParams::ios().with_rate(rate))
            .seed(seed)
            .n_changes(n_changes)
            .build()
            .unwrap();
        let strategy = Strategy::build(kind, &w, None);
        let config = PlannerConfig {
            workers,
            conflict_analyzer: analyzer,
            ..PlannerConfig::default()
        };
        let r = run_simulation(&w, &strategy, &config);

        // 1. Liveness: every change resolves exactly once.
        prop_assert_eq!(r.records.len(), n_changes);
        let mut ids: Vec<_> = r.records.iter().map(|rec| rec.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n_changes);

        // 2. Safety: the commit log is green at every point.
        if let Err(e) = audit_green(&w, &r) {
            return Err(TestCaseError::fail(format!("{} broke master: {e}", kind.name())));
        }

        // 3. Accounting: commit log matches records; makespan covers all
        // resolutions; turnarounds are non-negative by construction.
        let committed = r.records.iter().filter(|rec| rec.outcome == ChangeOutcome::Committed).count();
        prop_assert_eq!(committed, r.commit_log.len());
        for rec in &r.records {
            prop_assert!(rec.resolved >= rec.submitted);
            prop_assert!(rec.resolved <= r.makespan);
        }

        // 4. Sanity: utilization is a fraction; no negative waste.
        prop_assert!((0.0..=1.0).contains(&r.utilization));
        prop_assert!(r.builds_aborted <= r.builds_started);
    }

    #[test]
    fn batching_pipeline_keeps_master_green(
        seed in 0u64..5_000,
        rate in 50f64..400.0,
        n_changes in 20usize..80,
        max_batch in 1usize..12,
        workers in 1usize..60,
    ) {
        let w = WorkloadBuilder::new(WorkloadParams::ios().with_rate(rate))
            .seed(seed)
            .n_changes(n_changes)
            .build()
            .unwrap();
        let r = simulate_batching(
            &w,
            &BatchingConfig {
                max_batch,
                workers,
                ..BatchingConfig::default()
            },
        );
        // Liveness: everyone resolves exactly once.
        prop_assert_eq!(r.records.len(), n_changes);
        let mut ids: Vec<_> = r.records.iter().map(|rec| rec.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n_changes);
        // Safety: commits are individually good and pairwise conflict-free
        // across overlapping windows.
        let truth = w.truth();
        for (k, &(c_id, _)) in r.commits.iter().enumerate() {
            let c = &w.changes[c_id.0 as usize];
            prop_assert!(truth.succeeds_alone(c));
            for &(d_id, d_time) in &r.commits[..k] {
                let d = &w.changes[d_id.0 as usize];
                if c.submit_time < d_time {
                    prop_assert!(!truth.real_conflict(c, d),
                        "batching committed conflicting {} and {}", c_id, d_id);
                }
            }
        }
        // Accounting: at least one build per batch is needed, and with
        // max_batch = 1 it is exactly one build per change (no bisection
        // possible — singleton failures reject directly).
        prop_assert!(r.builds_run as usize >= n_changes.div_ceil(max_batch));
        if max_batch == 1 {
            prop_assert_eq!(r.builds_run as usize, n_changes);
        }
    }

    #[test]
    fn oracle_dominates_every_other_strategy(
        seed in 0u64..2_000,
        kind in prop_oneof![
            Just(StrategyKind::SpeculateAll),
            Just(StrategyKind::Optimistic),
            Just(StrategyKind::SingleQueue),
        ],
    ) {
        let w = WorkloadBuilder::new(WorkloadParams::ios().with_rate(200.0))
            .seed(seed)
            .n_changes(60)
            .build()
            .unwrap();
        let config = PlannerConfig { workers: 100, ..PlannerConfig::default() };
        let oracle = run_simulation(&w, &Strategy::build(StrategyKind::Oracle, &w, None), &config);
        let other = run_simulation(&w, &Strategy::build(kind, &w, None), &config);
        let (o50, _, _) = oracle.turnaround_p50_p95_p99();
        let (x50, _, _) = other.turnaround_p50_p95_p99();
        // Oracle is the normalization floor of Section 8 (tiny tolerance
        // for ties in discrete event ordering).
        prop_assert!(x50 >= o50 * 0.999, "{} P50 {} < oracle {}", kind.name(), x50, o50);
        // And the oracle never wastes a build.
        prop_assert_eq!(oracle.builds_aborted, 0);
    }
}
