//! `sqctl` — interactive console over a demo SubmitQueue service.
//!
//! ```bash
//! cargo run --bin sqctl
//! sq> submit alice libs/util/u.rs pub fn u() { /* better */ }
//! sq> process
//! sq> status T1
//! sq> verify
//! ```

use keeping_master_green::cli::{Console, Reply};
use std::io::{BufRead, Write};

fn main() {
    let console = Console::new();
    println!("sqctl — SubmitQueue console (type 'help')");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("sq> ");
        out.flush().expect("stdout flush");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => match console.interpret(line.trim()) {
                Reply::Text(s) => {
                    if !s.is_empty() {
                        println!("{s}");
                    }
                }
                Reply::Quit => break,
            },
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
    }
}
