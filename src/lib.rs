//! # keeping-master-green
//!
//! Umbrella crate for the reproduction of *Keeping Master Green at Scale*
//! (Ananthanarayanan et al., EuroSys '19): Uber's **SubmitQueue**, a
//! change-management system that guarantees an always-green monorepo
//! mainline at thousands of commits per day.
//!
//! The workspace layering (see `DESIGN.md` for the full inventory):
//!
//! * [`sim`] — deterministic discrete-event simulation kernel.
//! * [`vcs`] — content-addressed in-memory monorepo.
//! * [`build`] — Buck-like build system: targets, Algorithm-1 hashing,
//!   Section 5.2 conflict detection.
//! * [`exec`] — build controller: caching, load balancing, real executor.
//! * [`ml`] — logistic regression + RFE (Section 7.2).
//! * [`workload`] — synthetic workloads calibrated to the paper's curves.
//! * [`store`] — durable state: CRC-checksummed write-ahead journal,
//!   snapshots, crash-consistent recovery.
//! * [`core`] — SubmitQueue itself: speculation engine, conflict
//!   analyzer, planner, baselines, service API (including the durable
//!   `DurableSubmitQueue` wrapper).
//!
//! ```
//! use keeping_master_green::core::service::SubmitQueueService;
//! use keeping_master_green::exec::StepOutcome;
//! use keeping_master_green::vcs::{Patch, RepoPath, Repository};
//!
//! let repo = Repository::init([
//!     ("pkg/BUILD", "library(name = \"pkg\", srcs = [\"lib.rs\"])"),
//!     ("pkg/lib.rs", "pub fn f() {}"),
//! ]).unwrap();
//! let service = SubmitQueueService::new(repo, 2);
//! let base = service.head();
//! let ticket = service.submit(
//!     "alice",
//!     "first change",
//!     base,
//!     Patch::write(RepoPath::new("pkg/lib.rs").unwrap(), "pub fn f() { /* v2 */ }"),
//! );
//! service.run_until_idle(&|_step, _tree| StepOutcome::Success);
//! assert!(matches!(
//!     service.status(ticket),
//!     Some(keeping_master_green::core::service::TicketState::Landed(_))
//! ));
//! ```

pub mod cli;

pub use sq_build as build;
pub use sq_core as core;
pub use sq_exec as exec;
pub use sq_ml as ml;
pub use sq_sim as sim;
pub use sq_store as store;
pub use sq_vcs as vcs;
pub use sq_workload as workload;
