//! Command interpreter for `sqctl` — a minimal operator console over a
//! [`SubmitQueueService`], playing the role of the paper's API service +
//! web UI (Section 7.1: "landing a change, and getting the state of a
//! change").
//!
//! The interpreter is a plain function from command line to response
//! string so it can be unit-tested without a terminal; `src/bin/sqctl.rs`
//! wraps it in a stdin/stdout loop.

use crate::core::service::{SubmitQueueService, TicketId, TicketState};
use crate::exec::StepOutcome;
use crate::vcs::{Patch, RepoPath, Repository};

/// The console: a service plus the demo step action.
pub struct Console {
    service: SubmitQueueService,
}

/// Result of interpreting one command.
pub enum Reply {
    /// Text to print.
    Text(String),
    /// Exit the console.
    Quit,
}

impl Default for Console {
    fn default() -> Self {
        Self::new()
    }
}

impl Console {
    /// A console over a demo monorepo (three packages, one dependency).
    pub fn new() -> Self {
        let repo = Repository::init([
            (
                "libs/util/BUILD",
                "library(name = \"util\", srcs = [\"u.rs\"])",
            ),
            ("libs/util/u.rs", "pub fn u() {}"),
            (
                "apps/app/BUILD",
                "binary(name = \"app\", srcs = [\"m.rs\"], deps = [\"//libs/util:util\"])",
            ),
            ("apps/app/m.rs", "fn main() {}"),
            ("cfg/BUILD", "config(name = \"cfg\", srcs = [\"c.json\"])"),
            ("cfg/c.json", "{}"),
        ])
        .expect("demo repo initializes");
        Console {
            service: SubmitQueueService::new(repo, 2),
        }
    }

    /// Wrap an existing service.
    pub fn with_service(service: SubmitQueueService) -> Self {
        Console { service }
    }

    /// The demo step action: steps fail when the file `<pkg>/FAIL`
    /// exists, so failures can be staged from the console itself.
    fn action(step: &crate::exec::BuildStep, tree: &crate::vcs::Tree) -> StepOutcome {
        let marker = format!("{}/FAIL", step.target.package());
        let failed = tree.iter().any(|(p, _)| p.as_str() == marker);
        if failed {
            StepOutcome::Failure(format!("{marker} present"))
        } else {
            StepOutcome::Success
        }
    }

    /// Interpret one command line.
    ///
    /// Commands:
    /// * `submit <author> <path> <content…>` — queue a single-file write
    ///   against the current HEAD, returns the ticket id;
    /// * `process` — drain the queue (builds run for real);
    /// * `status <ticket>` — the paper's second API call;
    /// * `head` — current mainline commit;
    /// * `stats` — landed/rejected/queued + cache counters;
    /// * `cat <path>` — file contents at HEAD;
    /// * `verify` — rebuild every commit point from scratch;
    /// * `help`, `quit`.
    pub fn interpret(&self, line: &str) -> Reply {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Reply::Text(String::new());
        };
        match cmd {
            "quit" | "exit" => Reply::Quit,
            "help" => Reply::Text(
                "commands: submit <author> <path> <content…> | process | \
                 status <ticket> | head | stats | cat <path> | verify | quit"
                    .into(),
            ),
            "submit" => {
                let Some(author) = parts.next() else {
                    return Reply::Text("usage: submit <author> <path> <content…>".into());
                };
                let Some(path) = parts.next() else {
                    return Reply::Text("usage: submit <author> <path> <content…>".into());
                };
                let Ok(path) = RepoPath::new(path) else {
                    return Reply::Text(format!("invalid path '{path}'"));
                };
                let content: String = parts.collect::<Vec<_>>().join(" ");
                let base = self.service.head();
                let ticket = self.service.submit(
                    author,
                    format!("console edit of {path}"),
                    base,
                    Patch::write(path, content),
                );
                Reply::Text(format!("queued as {ticket}"))
            }
            "process" => {
                let n = self.service.run_until_idle(&Self::action);
                Reply::Text(format!(
                    "processed {n} change(s); HEAD = {}",
                    self.service.head()
                ))
            }
            "status" => {
                let Some(raw) = parts.next() else {
                    return Reply::Text("usage: status <ticket>".into());
                };
                let Ok(n) = raw.trim_start_matches('T').parse::<u64>() else {
                    return Reply::Text(format!("bad ticket '{raw}'"));
                };
                match self.service.status(TicketId(n)) {
                    Some(TicketState::Queued) => Reply::Text(format!("T{n}: queued")),
                    Some(TicketState::Landed(c)) => Reply::Text(format!("T{n}: landed at {c}")),
                    Some(TicketState::Rejected(why)) => {
                        Reply::Text(format!("T{n}: rejected — {why}"))
                    }
                    None => Reply::Text(format!("unknown ticket T{n}")),
                }
            }
            "head" => Reply::Text(format!("{}", self.service.head())),
            "stats" => Reply::Text(format!("{:?}", self.service.stats())),
            "cat" => {
                let Some(path) = parts.next() else {
                    return Reply::Text("usage: cat <path>".into());
                };
                match self.service.read_head_file(path) {
                    Some(content) => Reply::Text(content),
                    None => Reply::Text(format!("no such file '{path}' at HEAD")),
                }
            }
            "verify" => match self.service.verify_history(&Self::action) {
                Ok(n) => Reply::Text(format!("verified {n} commit point(s): all green")),
                Err(e) => Reply::Text(format!("RED MAINLINE: {e}")),
            },
            other => Reply::Text(format!("unknown command '{other}' (try 'help')")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(reply: Reply) -> String {
        match reply {
            Reply::Text(s) => s,
            Reply::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn submit_process_status_roundtrip() {
        let console = Console::new();
        let out = text(console.interpret("submit alice libs/util/u.rs pub fn u() { /* v2 */ }"));
        assert!(out.contains("queued as T1"), "{out}");
        let out = text(console.interpret("process"));
        assert!(out.contains("processed 1"), "{out}");
        let out = text(console.interpret("status T1"));
        assert!(out.contains("landed"), "{out}");
        let out = text(console.interpret("cat libs/util/u.rs"));
        assert!(out.contains("v2"), "{out}");
        let out = text(console.interpret("verify"));
        assert!(out.contains("all green"), "{out}");
    }

    #[test]
    fn staged_failure_rejects_and_master_stays_green() {
        let console = Console::new();
        // Stage a failure marker *and* touch the package source in one
        // queue: the marker write itself doesn't affect targets (FAIL is
        // not a src), so land it first, then break the build.
        text(console.interpret("submit mallory cfg/FAIL boom"));
        text(console.interpret("process"));
        text(console.interpret("submit mallory cfg/c.json {\"broken\":true}"));
        let out = text(console.interpret("process"));
        assert!(out.contains("processed 1"), "{out}");
        let out = text(console.interpret("status T2"));
        assert!(out.contains("rejected"), "{out}");
        // HEAD still has the original config.
        let out = text(console.interpret("cat cfg/c.json"));
        assert_eq!(out, "{}");
    }

    #[test]
    fn help_quit_and_errors() {
        let console = Console::new();
        assert!(text(console.interpret("help")).contains("submit"));
        assert!(matches!(console.interpret("quit"), Reply::Quit));
        assert!(text(console.interpret("status T99")).contains("unknown ticket"));
        assert!(text(console.interpret("frobnicate")).contains("unknown command"));
        assert!(text(console.interpret("submit onlyauthor")).contains("usage"));
        assert!(text(console.interpret("cat nope/nothing.rs")).contains("no such file"));
        assert_eq!(text(console.interpret("")), "");
    }

    #[test]
    fn status_of_queued_change() {
        let console = Console::new();
        text(console.interpret("submit bob apps/app/m.rs fn main() { new(); }"));
        let out = text(console.interpret("status 1"));
        assert!(out.contains("queued"), "{out}");
    }
}
