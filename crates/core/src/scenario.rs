//! Scenario-matrix runner.
//!
//! Replays a named [`ScenarioManifest`] through every scheduling
//! strategy in [`StrategyKind::all`] — the same list, so a strategy
//! added there automatically joins every scenario matrix — and audits
//! each run against the ground truth: the always-green invariant
//! ([`audit_green`]) and rejection justification
//! ([`audit_rejections_justified`], with the wrongful count surfaced for
//! reports). The SubmitQueue predictor trains on a disjoint history
//! drawn from the *same* adversarial generative process, so flaky-test
//! clusters and hub touches are part of what the models learn.

use crate::audit::{audit_green, audit_rejections_justified, count_wrongful_rejections};
use crate::lean::SKIP_MISS_BUDGET;
use crate::planner::{run_simulation, PlannerConfig, SimFaults, SimResult};
use crate::predict::LearnedPredictor;
use crate::shard::{ShardPlan, ShardReport, ShardSpec};
use crate::strategy::{Strategy, StrategyKind};
use sq_workload::{ScenarioManifest, Workload, WorkloadBuilder};

/// Seed offset separating the training history from the replayed trace.
const HISTORY_SALT: u64 = 0xA11CE;

/// One strategy's audited run through a scenario.
#[derive(Debug)]
pub struct StrategyOutcome {
    /// Which strategy ran.
    pub kind: StrategyKind,
    /// The finished simulation.
    pub result: SimResult,
    /// Always-green audit verdict.
    pub green: Result<(), String>,
    /// Rejection-justification audit verdict.
    pub rejections_justified: Result<(), String>,
    /// Number of wrongful rejections (zero whenever
    /// `rejections_justified` is `Ok`).
    pub wrongful_rejections: usize,
    /// Per-lane attribution of the run, present when the manifest
    /// requested sharded planning (`shards > 0`).
    pub shard_report: Option<ShardReport>,
}

impl StrategyOutcome {
    /// Did this run clear both audits with nothing wrongfully rejected —
    /// globally, and (when sharded) in every lane?
    pub fn clean(&self) -> bool {
        self.green.is_ok()
            && self.rejections_justified.is_ok()
            && self.wrongful_rejections == 0
            && self
                .shard_report
                .as_ref()
                .is_none_or(|r| r.total_wrongful() == 0)
    }
}

/// A fully-run, fully-audited scenario.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The manifest that was replayed.
    pub manifest: ScenarioManifest,
    /// Seed of the replayed trace (history uses a salted seed).
    pub seed: u64,
    /// The generated workload.
    pub workload: Workload,
    /// One audited outcome per entry of [`StrategyKind::all`].
    pub outcomes: Vec<StrategyOutcome>,
}

impl ScenarioRun {
    /// The first audit violation across all strategies, if any.
    pub fn first_violation(&self) -> Option<String> {
        self.outcomes.iter().find_map(|o| {
            let problem = match (&o.green, &o.rejections_justified) {
                (Err(e), _) => Some(("green", e.clone())),
                (_, Err(e)) => Some(("rejections", e.clone())),
                _ => None,
            }?;
            Some(format!(
                "{} / {}: {} audit failed: {}",
                self.manifest.name,
                o.kind.name(),
                problem.0,
                problem.1
            ))
        })
    }
}

/// Replay `manifest` through every strategy with `n_changes` changes
/// (pass [`ScenarioManifest::n_changes`] for the configured duration)
/// and a disjoint `history_changes`-sized training workload.
pub fn run_scenario(
    manifest: &ScenarioManifest,
    seed: u64,
    n_changes: usize,
    history_changes: usize,
) -> Result<ScenarioRun, String> {
    let params = manifest.params()?;
    let n_parts = params.n_parts;
    let workload = manifest.workload(seed, n_changes)?;
    let history = WorkloadBuilder::new(params)
        .seed(seed ^ HISTORY_SALT)
        .n_changes(history_changes)
        .build()?;
    let plan = (manifest.shards > 0).then(|| ShardPlan::round_robin(n_parts, manifest.shards));
    let config = PlannerConfig {
        workers: manifest.workers,
        faults: (manifest.infra_fault_rate > 0.0)
            .then(|| SimFaults::at_rate(manifest.infra_fault_rate, seed)),
        shards: plan
            .clone()
            .map(|p| ShardSpec::proportional(p, &workload, manifest.workers)),
        ..PlannerConfig::default()
    };
    // Train the learned models once and share them across every kind
    // that needs them (SubmitQueue + the three lean variants) — the
    // same seed and calibration budget `Strategy::build` uses, so the
    // shared instances are decision-identical to per-kind training.
    let (predictor, _) = LearnedPredictor::train(&history, 0xFEED);
    let skip_threshold = predictor.calibrate_skip_threshold(&history, SKIP_MISS_BUDGET);
    let outcomes: Vec<StrategyOutcome> = StrategyKind::all()
        .into_iter()
        .map(|kind| {
            let strategy = match kind.lean_config(skip_threshold) {
                Some(cfg) => Strategy::lean_with(predictor.clone(), cfg),
                None if kind == StrategyKind::SubmitQueue => {
                    Strategy::submit_queue_with(predictor.clone())
                }
                None => Strategy::build(kind, &workload, None),
            };
            debug_assert_eq!(strategy.kind(), kind);
            let result = run_simulation(&workload, &strategy, &config);
            let green = audit_green(&workload, &result);
            let rejections_justified = audit_rejections_justified(&workload, &result);
            let wrongful_rejections = count_wrongful_rejections(&workload, &result);
            let shard_report = plan
                .as_ref()
                .map(|p| ShardReport::from_result(&workload, &result, p));
            StrategyOutcome {
                kind,
                result,
                green,
                rejections_justified,
                wrongful_rejections,
                shard_report,
            }
        })
        .collect();
    debug_assert_eq!(outcomes.len(), StrategyKind::COUNT);
    Ok(ScenarioRun {
        manifest: manifest.clone(),
        seed,
        workload,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_scenario_runs_every_strategy_clean() {
        let run = run_scenario(&ScenarioManifest::baseline(), 3, 40, 400).unwrap();
        assert_eq!(run.outcomes.len(), StrategyKind::COUNT);
        let kinds: Vec<StrategyKind> = run.outcomes.iter().map(|o| o.kind).collect();
        assert_eq!(kinds, StrategyKind::all().to_vec());
        for o in &run.outcomes {
            assert!(
                o.clean(),
                "{}: {:?} {:?}",
                o.kind.name(),
                o.green,
                o.rejections_justified
            );
            assert_eq!(o.result.records.len(), 40);
        }
        assert!(run.first_violation().is_none());
    }

    #[test]
    fn shard_stress_scenario_is_clean_per_lane_and_globally() {
        let manifest = ScenarioManifest::shard_stress();
        assert!(manifest.shards > 0, "manifest must request sharding");
        let run = run_scenario(&manifest, 5, 60, 400).unwrap();
        for o in &run.outcomes {
            let report = o
                .shard_report
                .as_ref()
                .expect("sharded scenarios carry a per-lane report");
            assert_eq!(report.lanes.len(), manifest.shards + 1);
            // Zero wrongful rejections in every lane and overall.
            for lane in &report.lanes {
                assert_eq!(
                    lane.wrongful,
                    0,
                    "{}: lane {} wrongfully rejected",
                    o.kind.name(),
                    lane.name
                );
            }
            assert!(o.clean(), "{}: {:?}", o.kind.name(), o.green);
            // The adversarial footprint mix must actually exercise the
            // arbiter lane, not just the per-shard fast paths.
            let arbiter = report.lanes.last().unwrap();
            assert!(
                arbiter.routed > 0,
                "{}: nothing reached the arbiter",
                o.kind.name()
            );
        }
    }

    #[test]
    fn invalid_manifest_is_rejected_up_front() {
        let mut m = ScenarioManifest::baseline();
        m.workers = 0;
        assert!(run_scenario(&m, 1, 10, 50).is_err());
    }
}
