//! Scenario-matrix runner.
//!
//! Replays a named [`ScenarioManifest`] through every scheduling
//! strategy in [`StrategyKind::all`] — the same list, so a strategy
//! added there automatically joins every scenario matrix — and audits
//! each run against the ground truth: the always-green invariant
//! ([`audit_green`]) and rejection justification
//! ([`audit_rejections_justified`], with the wrongful count surfaced for
//! reports). The SubmitQueue predictor trains on a disjoint history
//! drawn from the *same* adversarial generative process, so flaky-test
//! clusters and hub touches are part of what the models learn.

use crate::audit::{audit_green, audit_rejections_justified, count_wrongful_rejections};
use crate::planner::{run_simulation, PlannerConfig, SimFaults, SimResult};
use crate::strategy::{Strategy, StrategyKind};
use sq_workload::{ScenarioManifest, Workload, WorkloadBuilder};

/// Seed offset separating the training history from the replayed trace.
const HISTORY_SALT: u64 = 0xA11CE;

/// One strategy's audited run through a scenario.
#[derive(Debug)]
pub struct StrategyOutcome {
    /// Which strategy ran.
    pub kind: StrategyKind,
    /// The finished simulation.
    pub result: SimResult,
    /// Always-green audit verdict.
    pub green: Result<(), String>,
    /// Rejection-justification audit verdict.
    pub rejections_justified: Result<(), String>,
    /// Number of wrongful rejections (zero whenever
    /// `rejections_justified` is `Ok`).
    pub wrongful_rejections: usize,
}

impl StrategyOutcome {
    /// Did this run clear both audits with nothing wrongfully rejected?
    pub fn clean(&self) -> bool {
        self.green.is_ok() && self.rejections_justified.is_ok() && self.wrongful_rejections == 0
    }
}

/// A fully-run, fully-audited scenario.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The manifest that was replayed.
    pub manifest: ScenarioManifest,
    /// Seed of the replayed trace (history uses a salted seed).
    pub seed: u64,
    /// The generated workload.
    pub workload: Workload,
    /// One audited outcome per entry of [`StrategyKind::all`].
    pub outcomes: Vec<StrategyOutcome>,
}

impl ScenarioRun {
    /// The first audit violation across all strategies, if any.
    pub fn first_violation(&self) -> Option<String> {
        self.outcomes.iter().find_map(|o| {
            let problem = match (&o.green, &o.rejections_justified) {
                (Err(e), _) => Some(("green", e.clone())),
                (_, Err(e)) => Some(("rejections", e.clone())),
                _ => None,
            }?;
            Some(format!(
                "{} / {}: {} audit failed: {}",
                self.manifest.name,
                o.kind.name(),
                problem.0,
                problem.1
            ))
        })
    }
}

/// Replay `manifest` through every strategy with `n_changes` changes
/// (pass [`ScenarioManifest::n_changes`] for the configured duration)
/// and a disjoint `history_changes`-sized training workload.
pub fn run_scenario(
    manifest: &ScenarioManifest,
    seed: u64,
    n_changes: usize,
    history_changes: usize,
) -> Result<ScenarioRun, String> {
    let params = manifest.params()?;
    let workload = manifest.workload(seed, n_changes)?;
    let history = WorkloadBuilder::new(params)
        .seed(seed ^ HISTORY_SALT)
        .n_changes(history_changes)
        .build()?;
    let config = PlannerConfig {
        workers: manifest.workers,
        faults: (manifest.infra_fault_rate > 0.0)
            .then(|| SimFaults::at_rate(manifest.infra_fault_rate, seed)),
        ..PlannerConfig::default()
    };
    let outcomes: Vec<StrategyOutcome> = StrategyKind::all()
        .into_iter()
        .map(|kind| {
            let strategy = Strategy::build(kind, &workload, Some(&history));
            let result = run_simulation(&workload, &strategy, &config);
            let green = audit_green(&workload, &result);
            let rejections_justified = audit_rejections_justified(&workload, &result);
            let wrongful_rejections = count_wrongful_rejections(&workload, &result);
            StrategyOutcome {
                kind,
                result,
                green,
                rejections_justified,
                wrongful_rejections,
            }
        })
        .collect();
    debug_assert_eq!(outcomes.len(), StrategyKind::COUNT);
    Ok(ScenarioRun {
        manifest: manifest.clone(),
        seed,
        workload,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_scenario_runs_every_strategy_clean() {
        let run = run_scenario(&ScenarioManifest::baseline(), 3, 40, 400).unwrap();
        assert_eq!(run.outcomes.len(), StrategyKind::COUNT);
        let kinds: Vec<StrategyKind> = run.outcomes.iter().map(|o| o.kind).collect();
        assert_eq!(kinds, StrategyKind::all().to_vec());
        for o in &run.outcomes {
            assert!(
                o.clean(),
                "{}: {:?} {:?}",
                o.kind.name(),
                o.green,
                o.rejections_justified
            );
            assert_eq!(o.result.records.len(), 40);
        }
        assert!(run.first_violation().is_none());
    }

    #[test]
    fn invalid_manifest_is_rejected_up_front() {
        let mut m = ScenarioManifest::baseline();
        m.workers = 0;
        assert!(run_scenario(&m, 1, 10, 50).is_err());
    }
}
