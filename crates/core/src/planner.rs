//! The planner engine (paper Section 6) driving a discrete-event
//! simulation of the whole system.
//!
//! On every event (change arrival, build completion) the planner:
//!
//! 1. re-queries the strategy for the prioritized list of desired builds
//!    (the paper's planner contacts the speculation engine "on every
//!    epoch"; we replan event-driven, which is the epoch limit → 0),
//! 2. **aborts** running builds that are no longer in the desired list,
//! 3. **schedules** new desired builds while workers are available,
//! 4. **commits or rejects** changes whose gating build result is known:
//!    a change resolves once every earlier conflicting change has
//!    resolved and the build against the exact committed prefix has
//!    finished — the serializability rule that keeps the mainline green.
//!
//! Build outcomes come from the workload's ground truth, so every
//! strategy replays the identical reality; the audit module then verifies
//! the headline invariant (an always-green commit log) after the fact.

use crate::analyzer::{ConflictGraph, IndexedAnalyzer};
use crate::lean::LeanReport;
use crate::pending::{ChangeOutcome, ChangeRecord};
use crate::predict::SpeculationCounters;
use crate::recovery::QuarantineList;
use crate::shard::{PlanningCost, ShardSpec};
use crate::speculation::BuildKey;
use crate::strategy::{Strategy, StrategyKind};
use sq_exec::fault::{fraction, mix64};
use sq_exec::{RetryPolicy, WorkerPool};
use sq_obs::{Observer, SpanId};
use sq_sim::{run as run_des, EventQueue, Scheduler, SimDuration, SimTime};
use sq_workload::{ChangeId, ChangeSpec, GroundTruth, Workload};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Worker fleet size (each build occupies one worker).
    pub workers: usize,
    /// Whether the conflict analyzer is enabled (Figure 13 ablates this;
    /// disabled ⇒ every pair of pending changes is treated as
    /// conflicting, the Section 4 baseline assumption).
    pub conflict_analyzer: bool,
    /// Fixed scheduling/fetch overhead added to every build.
    pub build_overhead: SimDuration,
    /// Safety valve on simulation events.
    pub max_events: u64,
    /// Section 10 "Change Reordering": when enabled, a change may commit
    /// as soon as its build against the *current* committed prefix
    /// succeeds, even if earlier conflicting changes are still pending —
    /// small changes no longer wait behind a large refactor. The paper
    /// flags the starvation/fairness tradeoff; the greedy policy here
    /// surfaces it as increased aborted-build counts for the overtaken
    /// changes.
    pub reorder: bool,
    /// Section 10 "Build Preemption": when set, a running build whose
    /// progress fraction is at least this value is never preempted for a
    /// gating build ("if a build is near its completion, it might be
    /// beneficial to continue running its build steps").
    pub preemption_guard: Option<f64>,
    /// Section 6 epochs: when set, the planner contacts the speculation
    /// engine only every `epoch` of simulated time instead of on every
    /// event ("the planner engine contacts the speculation engine on
    /// every epoch"). `None` replans event-driven (epoch → 0), which is
    /// strictly more reactive; the ablation quantifies what longer
    /// epochs cost.
    pub epoch: Option<SimDuration>,
    /// Deterministic infra-fault model: when set, each finished build
    /// attempt may come back infra-red and is retried (worker retained,
    /// backoff charged) instead of being treated as a change failure.
    pub faults: Option<SimFaults>,
    /// Sharded multi-lane planning (ROADMAP item 1): when set, changes
    /// route to per-shard planning lanes (multi-shard footprints to the
    /// arbiter lane), each lane plans only its own pending window with
    /// its own worker sub-fleet, and the conflict graph + resolution
    /// rule stay global so always-green holds over the merged trunk.
    /// `None` keeps today's single global lane, bit for bit.
    pub shards: Option<ShardSpec>,
    /// Model of the planning round's own cost: when set, each lane's
    /// replans are deferred to adaptive ticks `base + per_pending · n`
    /// behind its window size `n` (composing with [`Self::epoch`], which
    /// adds its fixed period on top). This is what a huge single-lane
    /// window saturates on; `None` models free planning rounds.
    pub planning_cost: Option<PlanningCost>,
}

/// Deterministic infra-failure model for the simulation.
///
/// An infra-red attempt carries no information about the change, so the
/// planner *never* rejects on it: the build reruns on the same worker
/// after a charged backoff, for as long as it takes. The retry policy's
/// attempt bound only sets where the backoff schedule plateaus and when
/// a change is flagged for quarantine — infra evidence alone can never
/// turn into a rejection, which is what keeps wrongly-rejected-change
/// counts at zero under flake-rate sweeps.
#[derive(Debug, Clone)]
pub struct SimFaults {
    /// Probability that any single build attempt ends infra-red.
    pub rate: f64,
    /// Seed for the per-(build, attempt) fault decisions.
    pub seed: u64,
    /// Backoff schedule charged (as queue time on the retained worker)
    /// before each infra retry.
    pub retry: RetryPolicy,
    /// Infra-red attempts observed on one change before it is flagged
    /// in the result's quarantine list (retrying continues regardless).
    pub quarantine_threshold: u32,
}

impl SimFaults {
    /// A uniform fault model at `rate` with production-shaped backoff.
    /// Panics unless `rate` is a probability in `[0, 1]`.
    pub fn at_rate(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0,1]");
        SimFaults {
            rate,
            seed,
            retry: RetryPolicy::standard(4, seed),
            quarantine_threshold: 3,
        }
    }

    /// Decide whether `attempt` (1-based) of the build `key` is
    /// infra-red. Pure function of `(seed, key, attempt)` — identical
    /// across runs, independent of event interleaving.
    pub fn infra_red(&self, key: &BuildKey, attempt: u32) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        let mut h = mix64(self.seed ^ 0x5EED_FA17);
        h = mix64(h ^ key.subject.0);
        for a in &key.assumed {
            h = mix64(h ^ a.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        h = mix64(h ^ u64::from(attempt));
        fraction(h) < self.rate
    }
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            workers: 100,
            conflict_analyzer: true,
            build_overhead: SimDuration::from_secs(60),
            max_events: 50_000_000,
            reorder: false,
            preemption_guard: None,
            epoch: None,
            faults: None,
            shards: None,
            planning_cost: None,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The policy that ran.
    pub strategy: StrategyKind,
    /// Per-change records, in resolution order.
    pub records: Vec<ChangeRecord>,
    /// Commit log: change ids in mainline order.
    pub commit_log: Vec<ChangeId>,
    /// Simulated time when the last change resolved.
    pub makespan: SimTime,
    /// Builds started / aborted (wasted work measure).
    pub builds_started: u64,
    /// Builds aborted before finishing.
    pub builds_aborted: u64,
    /// Mean worker utilization over the run.
    pub utilization: f64,
    /// Build attempts that came back infra-red and were retried
    /// (0 unless [`PlannerConfig::faults`] is set).
    pub infra_retries: u64,
    /// Total backoff charged before infra retries (adds latency, never
    /// rejections).
    pub infra_backoff: SimDuration,
    /// Changes flagged as chronically infra-flaky (quarantine list).
    pub quarantined: Vec<ChangeId>,
    /// Lean-speculation accounting (skips, hits, misses, bypasses) —
    /// present exactly when the strategy is a lean instance.
    pub lean: Option<LeanReport>,
}

impl SimResult {
    /// Committed change count.
    pub fn committed(&self) -> usize {
        self.commit_log.len()
    }

    /// Rejected change count.
    pub fn rejected(&self) -> usize {
        self.records.len() - self.commit_log.len()
    }

    /// Turnaround percentiles in minutes: (P50, P95, P99).
    pub fn turnaround_p50_p95_p99(&self) -> (f64, f64, f64) {
        let mut p = sq_sim::Percentiles::with_capacity(self.records.len());
        for r in &self.records {
            p.push(r.turnaround.as_mins_f64());
        }
        p.p50_p95_p99().unwrap_or((0.0, 0.0, 0.0))
    }

    /// Mean turnaround in minutes.
    pub fn mean_turnaround_mins(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.turnaround.as_mins_f64())
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// Average commit throughput in changes/hour over the makespan.
    pub fn throughput_per_hour(&self) -> f64 {
        let hours = self.makespan.as_hours_f64();
        if hours <= 0.0 {
            return 0.0;
        }
        self.committed() as f64 / hours
    }

    /// Sustained commit throughput: the rate over the inter-quartile
    /// window of commit times. Robust to the warm-up ramp and to the
    /// drain-phase stragglers at the end of a finite replay, which is
    /// what the paper's steady-state "average throughput" reports.
    pub fn sustained_throughput_per_hour(&self) -> f64 {
        let mut commit_times: Vec<f64> = self
            .records
            .iter()
            .filter(|r| matches!(r.outcome, crate::pending::ChangeOutcome::Committed))
            .map(|r| r.resolved.as_hours_f64())
            .collect();
        if commit_times.len() < 4 {
            return self.throughput_per_hour();
        }
        commit_times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let n = commit_times.len();
        let t25 = commit_times[n / 4];
        let t75 = commit_times[(3 * n) / 4];
        let span = t75 - t25;
        if span <= 1e-9 {
            return self.throughput_per_hour();
        }
        (n as f64 / 2.0) / span
    }

    /// Turnaround values in minutes (for CDFs).
    pub fn turnarounds_mins(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.turnaround.as_mins_f64())
            .collect()
    }
}

/// Run a strategy over a workload.
///
/// ```
/// use sq_core::planner::{run_simulation, PlannerConfig};
/// use sq_core::strategy::{Strategy, StrategyKind};
/// use sq_workload::{WorkloadBuilder, WorkloadParams};
///
/// let workload = WorkloadBuilder::new(WorkloadParams::ios().with_rate(100.0))
///     .seed(1)
///     .n_changes(20)
///     .build()
///     .unwrap();
/// let oracle = Strategy::build(StrategyKind::Oracle, &workload, None);
/// let result = run_simulation(&workload, &oracle, &PlannerConfig::default());
/// assert_eq!(result.records.len(), 20);
/// sq_core::audit::audit_green(&workload, &result).unwrap();
/// ```
pub fn run_simulation(
    workload: &Workload,
    strategy: &Strategy,
    config: &PlannerConfig,
) -> SimResult {
    let mut obs = Observer::disabled();
    run_simulation_observed(workload, strategy, config, &mut obs)
}

/// [`run_simulation`] with observability: planner decisions, speculation
/// pressure, build spans, and recovery events are recorded into `obs`
/// as the simulation runs.
///
/// Everything recorded is a pure function of `(workload, strategy,
/// config)` — timestamps are simulated, names are sorted at export — so
/// two same-seed runs produce byte-identical `obs.to_json()` output.
/// Passing [`Observer::disabled`] makes every hook a no-op;
/// [`run_simulation`] is exactly that.
pub fn run_simulation_observed(
    workload: &Workload,
    strategy: &Strategy,
    config: &PlannerConfig,
    obs: &mut Observer,
) -> SimResult {
    // The index-backed analyzer: per-change part bitsets are computed
    // once on admission and served from cache for every later pairwise
    // query (decision-identical to the plain statistical analyzer).
    let analyzer = if config.conflict_analyzer {
        IndexedAnalyzer::new()
    } else {
        IndexedAnalyzer::disabled()
    };
    // Lane layout: one global lane, or (sharded) one lane per shard plus
    // the arbiter, each with its own worker sub-fleet.
    let (lane_workers, lane_labels): (Vec<usize>, Vec<String>) = match &config.shards {
        Some(s) => {
            assert_eq!(
                s.lane_workers.len(),
                s.plan.n_lanes(),
                "one worker count per lane (shards + arbiter)"
            );
            assert!(
                s.lane_workers.iter().all(|&w| w >= 1),
                "every lane needs at least one worker"
            );
            (
                s.lane_workers.clone(),
                (0..s.plan.n_lanes()).map(|l| s.plan.lane_name(l)).collect(),
            )
        }
        None => (vec![config.workers], vec![String::new()]),
    };
    let n_lanes = lane_workers.len();
    // A strategy instance may be reused across runs (the benchmark
    // grid); lean decision bookkeeping is per-run.
    strategy.lean_reset();
    let mut sim = Planner {
        workload,
        truth: workload.truth(),
        strategy,
        config: config.clone(),
        analyzer,
        graph: ConflictGraph::new(),
        pending: BTreeMap::new(),
        running: HashMap::new(),
        seq_to_key: HashMap::new(),
        aborted_seqs: HashSet::new(),
        build_results: HashMap::new(),
        resolved_rejected: HashSet::new(),
        pools: lane_workers.iter().map(|&w| WorkerPool::new(w)).collect(),
        lane_workers,
        lane_labels,
        lane_pending_count: vec![0; n_lanes],
        lane_running_count: vec![0; n_lanes],
        next_seq: 0,
        builds_started: 0,
        builds_aborted: 0,
        records: Vec::with_capacity(workload.changes.len()),
        commit_log: Vec::new(),
        makespan: SimTime::ZERO,
        epoch_scheduled: vec![false; n_lanes],
        infra_attempts: HashMap::new(),
        infra_retries: 0,
        infra_backoff: SimDuration::ZERO,
        quarantine: QuarantineList::new(
            config
                .faults
                .as_ref()
                .map(|f| f.quarantine_threshold.max(1))
                .unwrap_or(u32::MAX),
        ),
        lean: strategy.is_lean().then(LeanReport::default),
        obs,
    };
    let mut queue: EventQueue<Event> = EventQueue::new();
    for (i, c) in workload.changes.iter().enumerate() {
        queue.schedule(c.submit_time, Event::Arrival(i));
    }
    let outcome = run_des(&mut sim, &mut queue, config.max_events);
    debug_assert!(outcome.drained, "simulation hit the event safety valve");
    // Fleet-wide utilization: per-pool utilization weighted by lane
    // size (reduces to the single pool's value with one lane).
    let makespan = sim.makespan;
    let total_workers: usize = sim.lane_workers.iter().sum();
    let busy_weighted: f64 = sim
        .pools
        .iter_mut()
        .zip(&sim.lane_workers)
        .map(|(p, &w)| p.utilization(makespan) * w as f64)
        .sum();
    let utilization = if total_workers == 0 {
        0.0
    } else {
        busy_weighted / total_workers as f64
    };
    if sim.obs.is_enabled() {
        let per_worker: Vec<f64> = sim
            .pools
            .iter()
            .flat_map(|p| p.per_worker_utilization(makespan))
            .collect();
        let metrics = &mut sim.obs.metrics;
        metrics.set_gauge("planner.utilization", utilization);
        metrics.set_gauge("planner.makespan_mins", sim.makespan.as_secs_f64() / 60.0);
        let needed = metrics.counter("planner.builds_needed");
        metrics.set_gauge(
            "planner.builds_wasted",
            sim.builds_started.saturating_sub(needed) as f64,
        );
        for u in per_worker {
            metrics.observe("planner.worker_utilization", u);
        }
        // Conflict-index counters. `analyzer.parallel_ms` is
        // deterministically 0 here: the planner's incremental admission
        // path never runs a parallel matrix batch, so nothing
        // wall-clock-dependent can reach the export (the byte-identity
        // test below depends on this).
        sim.analyzer.index().stats().record_into(metrics);
        // Lean counters exist only for lean strategies, so every other
        // strategy's export stays byte-identical to the pre-lean planner.
        if let Some(report) = &sim.lean {
            report.record_into(metrics);
        }
    }
    SimResult {
        strategy: strategy.kind(),
        records: sim.records,
        commit_log: sim.commit_log,
        makespan: sim.makespan,
        builds_started: sim.builds_started,
        builds_aborted: sim.builds_aborted,
        utilization,
        infra_retries: sim.infra_retries,
        infra_backoff: sim.infra_backoff,
        quarantined: sim.quarantine.quarantined().copied().collect(),
        lean: sim.lean,
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Index into `workload.changes`.
    Arrival(usize),
    /// A build finished (may have been aborted meanwhile).
    BuildDone(u64),
    /// Planning tick for one lane (epoch / planning-cost modes only;
    /// lane 0 is the only lane without sharding).
    Epoch(usize),
}

#[derive(Debug, Clone, Copy)]
struct RunningBuild {
    seq: u64,
    start: SimTime,
    finish: SimTime,
    /// Planning lane that scheduled the build (0 without sharding).
    lane: usize,
    /// Worker-pool slot the build occupies (per-worker accounting).
    worker: usize,
    /// Trace span opened at schedule time, closed at finish/abort.
    span: SpanId,
}

struct PendingChange {
    /// Planning lane the change routed to (0 without sharding).
    lane: usize,
    fixed_committed: Vec<ChangeId>,
    counters: SpeculationCounters,
    builds_scheduled: u32,
    builds_aborted: u32,
}

struct Planner<'a> {
    workload: &'a Workload,
    truth: GroundTruth,
    strategy: &'a Strategy,
    config: PlannerConfig,
    analyzer: IndexedAnalyzer,
    graph: ConflictGraph,
    pending: BTreeMap<ChangeId, PendingChange>,
    running: HashMap<BuildKey, RunningBuild>,
    seq_to_key: HashMap<u64, BuildKey>,
    aborted_seqs: HashSet<u64>,
    build_results: HashMap<BuildKey, bool>,
    /// Changes that resolved as rejected (for contradiction checks).
    resolved_rejected: HashSet<ChangeId>,
    /// One worker pool per lane (a single pool without sharding).
    pools: Vec<WorkerPool>,
    /// Worker capacity per lane (`pools[l]` was built with this size).
    lane_workers: Vec<usize>,
    /// Display label per lane (empty without sharding — the single-lane
    /// export must stay byte-identical to the pre-shard planner).
    lane_labels: Vec<String>,
    /// Pending-window size per lane, maintained incrementally.
    lane_pending_count: Vec<usize>,
    /// Running-build count per lane, maintained incrementally.
    lane_running_count: Vec<usize>,
    next_seq: u64,
    builds_started: u64,
    builds_aborted: u64,
    records: Vec<ChangeRecord>,
    commit_log: Vec<ChangeId>,
    makespan: SimTime,
    /// Whether a planning tick is scheduled, per lane.
    epoch_scheduled: Vec<bool>,
    /// Attempt ordinal per build key (for fault decisions).
    infra_attempts: HashMap<BuildKey, u32>,
    infra_retries: u64,
    infra_backoff: SimDuration,
    quarantine: QuarantineList<ChangeId>,
    /// Lean accounting, present only for lean strategies.
    lean: Option<LeanReport>,
    obs: &'a mut Observer,
}

impl<'a> Planner<'a> {
    fn spec(&self, id: ChangeId) -> &'a ChangeSpec {
        // Change ids are dense indices by construction.
        &self.workload.changes[id.0 as usize]
    }

    fn pending_specs(&self) -> Vec<&'a ChangeSpec> {
        self.pending.keys().map(|&id| self.spec(id)).collect()
    }

    fn n_lanes(&self) -> usize {
        self.pools.len()
    }

    fn sharded(&self) -> bool {
        self.n_lanes() > 1
    }

    /// Lane a spec routes to (0 without sharding).
    fn lane_of(&self, spec: &ChangeSpec) -> usize {
        match &self.config.shards {
            Some(s) => s.plan.lane_of(spec),
            None => 0,
        }
    }

    /// The arbiter lane's index (the single lane without sharding).
    fn arbiter_lane(&self) -> usize {
        self.n_lanes() - 1
    }

    /// A lane's pending specs, in submission (id) order.
    fn lane_pending_specs(&self, lane: usize) -> Vec<&'a ChangeSpec> {
        if !self.sharded() {
            return self.pending_specs();
        }
        self.pending
            .iter()
            .filter(|(_, p)| p.lane == lane)
            .map(|(&id, _)| self.spec(id))
            .collect()
    }

    /// The build that decides `id` right now: in submission-order mode,
    /// only once every earlier conflict is resolved; in reorder mode
    /// (Section 10), always — the gating build runs against whatever has
    /// committed so far, and the change lands the moment it passes.
    fn realized_key_of(&self, id: ChangeId) -> Option<BuildKey> {
        if !self.config.reorder && !self.graph.earlier_conflicts(id).is_empty() {
            return None;
        }
        let p = self.pending.get(&id)?;
        let mut assumed = p.fixed_committed.clone();
        assumed.sort_unstable();
        assumed.dedup();
        Some(BuildKey {
            subject: id,
            assumed,
        })
    }

    /// Union a strategy pattern with the subject's committed prefix.
    fn finalize_key(&self, mut key: BuildKey) -> BuildKey {
        if let Some(p) = self.pending.get(&key.subject) {
            key.assumed.extend_from_slice(&p.fixed_committed);
            key.assumed.sort_unstable();
            key.assumed.dedup();
        }
        key
    }

    fn try_resolve(&mut self, now: SimTime) {
        loop {
            let candidates: Vec<ChangeId> = self.pending.keys().copied().collect();
            let mut resolved_any = false;
            for id in candidates {
                let Some(key) = self.realized_key_of(id) else {
                    continue;
                };
                let Some(&ok) = self.build_results.get(&key) else {
                    continue;
                };
                // The realized build's result is consumed: this build
                // was *needed* (vs merely selected or wasted).
                self.obs.metrics.inc("planner.builds_needed");
                self.resolve(id, ok, now);
                resolved_any = true;
            }
            if !resolved_any {
                return;
            }
        }
    }

    fn resolve(&mut self, id: ChangeId, ok: bool, now: SimTime) {
        // In submission-order mode only later neighbours can still be
        // pending; in reorder mode an overtaken *earlier* neighbour must
        // also rebase onto this commit.
        let neighbors: Vec<ChangeId> = self.graph.neighbors(id).collect();
        if ok {
            for n in neighbors {
                if let Some(p) = self.pending.get_mut(&n) {
                    p.fixed_committed.push(id);
                }
            }
            self.commit_log.push(id);
        } else {
            self.resolved_rejected.insert(id);
        }
        self.graph.remove(id);
        // The change's cached affected bitset can never be queried again.
        self.analyzer.forget(id);
        let p = self
            .pending
            .remove(&id)
            .expect("resolving a pending change");
        self.lane_pending_count[p.lane] -= 1;
        // Lean accounting: a skip was a *hit* when the change resolved
        // without a single aborted build (the speculation we didn't run
        // would have been pure waste), a *miss* otherwise.
        if let Some(report) = self.lean.as_mut() {
            if self.strategy.lean_skipped(id) {
                report.skipped += 1;
                if p.builds_aborted == 0 {
                    report.skip_hits += 1;
                } else {
                    report.skip_misses += 1;
                }
            }
            if self.strategy.lean_bypassed(id) {
                report.bypassed += 1;
            }
        }
        let spec = self.spec(id);
        let turnaround_mins = now.since(spec.submit_time).as_mins_f64();
        self.obs.metrics.inc(if ok {
            "planner.commits"
        } else {
            "planner.rejects"
        });
        self.obs
            .metrics
            .observe("planner.turnaround_mins", turnaround_mins);
        self.obs.tracer.event(
            if ok { "commit" } else { "reject" },
            now,
            &[
                ("change", id.0 as f64),
                ("turnaround_mins", turnaround_mins),
            ],
        );
        self.records.push(ChangeRecord::new(
            id,
            spec.submit_time,
            now,
            if ok {
                ChangeOutcome::Committed
            } else {
                ChangeOutcome::Rejected
            },
            p.builds_scheduled,
            p.builds_aborted,
        ));
        self.makespan = self.makespan.max(now);
    }

    /// A running build whose outcome pattern can no longer be the
    /// realized one (`P_needed = 0`): its subject resolved, a change it
    /// assumed committed was rejected, or a change it assumed aborted
    /// committed. The paper's Section 10 refinement — abort only builds
    /// "very unlikely to be needed" — with certainty substituted for
    /// likelihood: contradicted builds are *never* needed.
    fn contradicted(&self, key: &BuildKey) -> bool {
        let Some(p) = self.pending.get(&key.subject) else {
            return true; // subject already resolved
        };
        for d in &key.assumed {
            if self.resolved_rejected.contains(d) {
                return true; // assumed-committed change was rejected
            }
        }
        for d in &p.fixed_committed {
            if !key.assumed.contains(d) {
                return true; // assumed-aborted change committed
            }
        }
        false
    }

    fn abort_build(&mut self, key: &BuildKey, now: SimTime) {
        let rb = self.running.remove(key).expect("aborting a running build");
        self.aborted_seqs.insert(rb.seq);
        self.pools[rb.lane].release_worker(rb.worker, now);
        self.lane_running_count[rb.lane] -= 1;
        self.builds_aborted += 1;
        self.obs.metrics.inc("planner.builds_aborted");
        self.obs.tracer.span_field(rb.span, "aborted", 1.0);
        self.obs.tracer.end_span(rb.span, now);
        if let Some(p) = self.pending.get_mut(&key.subject) {
            p.builds_aborted += 1;
        }
    }

    /// Delay until a lane's next planning tick: the fixed epoch period
    /// (if any) plus the modeled cost of a planning round over the lane's
    /// current pending window (if any).
    fn tick_delay(&self, lane: usize) -> SimDuration {
        self.config.epoch.unwrap_or(SimDuration::ZERO)
            + self
                .config
                .planning_cost
                .as_ref()
                .map(|pc| pc.tick(self.lane_pending_count[lane]))
                .unwrap_or(SimDuration::ZERO)
    }

    /// Event-driven mode replans immediately; epoch / planning-cost mode
    /// defers each lane to its next tick (scheduling one if none is
    /// pending — every lane, so a quiet lane can't stall forever behind
    /// a busy one).
    fn maybe_replan(&mut self, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        if self.config.epoch.is_none() && self.config.planning_cost.is_none() {
            self.replan_now(now, sched);
            return;
        }
        for lane in 0..self.n_lanes() {
            if !self.epoch_scheduled[lane] {
                self.epoch_scheduled[lane] = true;
                sched.at(now + self.tick_delay(lane), Event::Epoch(lane));
            }
        }
    }

    fn replan_now(&mut self, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        for lane in 0..self.n_lanes() {
            self.replan_lane(lane, now, sched);
        }
    }

    /// One lane's planning round: abort contradicted builds, re-query the
    /// strategy over the lane's own pending window, and (re)schedule on
    /// the lane's worker sub-fleet. Planning is a pure function of the
    /// lane view — the only global inputs are the conflict graph and the
    /// build-result table, both of which are append-only facts.
    fn replan_lane(&mut self, lane: usize, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        let budget = self.lane_workers[lane];
        // 1. Abort this lane's running builds whose pattern is
        // contradicted by the outcomes observed so far — their result can
        // never be used.
        let dead: Vec<BuildKey> = self
            .running
            .iter()
            .filter(|(k, rb)| rb.lane == lane && self.contradicted(k))
            .map(|(k, _)| k.clone())
            .collect();
        for key in dead {
            self.abort_build(&key, now);
        }

        // 2. Desired list: gating builds first, then the strategy's picks
        // over the lane's pending window.
        let mut desired: Vec<BuildKey> = Vec::with_capacity(budget);
        let mut must_run: HashSet<BuildKey> = HashSet::new();
        let mut seen: HashSet<BuildKey> = HashSet::new();
        for (&id, p) in self.pending.iter() {
            if p.lane != lane {
                continue;
            }
            if let Some(key) = self.realized_key_of(id) {
                if !self.build_results.contains_key(&key) && seen.insert(key.clone()) {
                    must_run.insert(key.clone());
                    desired.push(key);
                }
            }
        }
        let pending_specs = self.lane_pending_specs(lane);
        let counters: HashMap<ChangeId, SpeculationCounters> = self
            .pending
            .iter()
            .filter(|(_, p)| p.lane == lane)
            .map(|(&id, p)| (id, p.counters))
            .collect();
        let fixed: HashMap<ChangeId, Vec<ChangeId>> = self
            .pending
            .iter()
            .filter(|(_, p)| p.lane == lane && !p.fixed_committed.is_empty())
            .map(|(&id, p)| (id, p.fixed_committed.clone()))
            .collect();
        let picks = self.strategy.desired_builds(
            self.workload,
            &pending_specs,
            &self.graph,
            &counters,
            &fixed,
            budget,
        );
        if self.obs.is_enabled() {
            // Speculation pressure per planning round: how deep the queue
            // is, how wide the strategy's speculation tree grew, and how
            // much success probability mass (`P_needed`) the picks carry.
            // With one lane the counts are the global ones — the export
            // stays byte-identical to the pre-shard planner.
            let queue_depth = self.lane_pending_count[lane];
            let running = self.lane_running_count[lane];
            let sharded = self.sharded();
            let label = self.lane_labels[lane].clone();
            let metrics = &mut self.obs.metrics;
            metrics.observe("planner.queue_depth", queue_depth as f64);
            metrics.observe("planner.running_builds", running as f64);
            metrics.observe("planner.gating_builds", must_run.len() as f64);
            metrics.observe("planner.speculation_tree_size", picks.len() as f64);
            metrics.observe(
                "planner.p_needed_mass",
                picks.iter().map(|pb| pb.value).sum(),
            );
            if sharded {
                metrics.observe(
                    &format!("planner.shard.{label}.queue_depth"),
                    queue_depth as f64,
                );
            }
        }
        // Arbiter stalls: a shard-lane change whose gating build cannot
        // run yet because an *arbiter-lane* earlier conflict is still
        // pending — the cross-shard coordination price.
        if self.sharded() && self.obs.is_enabled() && lane != self.arbiter_lane() {
            let arbiter = self.arbiter_lane();
            let stalls = self
                .pending
                .iter()
                .filter(|(_, p)| p.lane == lane)
                .filter(|(&id, _)| {
                    self.graph
                        .earlier_conflicts(id)
                        .iter()
                        .any(|d| self.pending.get(d).is_some_and(|pd| pd.lane == arbiter))
                })
                .count();
            if stalls > 0 {
                self.obs
                    .metrics
                    .observe("planner.shard.arbiter_stalls", stalls as f64);
            }
        }
        for pb in picks {
            if desired.len() >= budget {
                break;
            }
            let key = self.finalize_key(pb.key);
            if !self.build_results.contains_key(&key) && seen.insert(key.clone()) {
                desired.push(key);
            }
        }
        desired.truncate(budget);
        let desired_set: HashSet<BuildKey> = desired.iter().cloned().collect();

        // 3. Schedule in priority order. Running builds that are merely
        // out of fashion keep their workers (no thrash); only a *gating*
        // build may preempt, and only victims outside the desired set or
        // non-gating (latest-subject first — the least valuable
        // speculation under submission-order fairness).
        for key in desired {
            if self.running.contains_key(&key) {
                continue;
            }
            let worker = match self.pools[lane].acquire_worker(now) {
                Some(w) => w,
                None => {
                    if !must_run.contains(&key) {
                        break;
                    }
                    let guard = self.config.preemption_guard;
                    let victim = self
                        .running
                        .iter()
                        .filter(|(k, rb)| {
                            if rb.lane != lane || must_run.contains(*k) {
                                return false;
                            }
                            match guard {
                                Some(g) => {
                                    // Progress fraction of the candidate victim.
                                    let total = rb.finish.since(rb.start).as_secs_f64();
                                    let done = now.since(rb.start).as_secs_f64();
                                    total <= 0.0 || done / total < g
                                }
                                None => true,
                            }
                        })
                        .max_by(|(a, _), (b, _)| {
                            let a_out = !desired_set.contains(*a);
                            let b_out = !desired_set.contains(*b);
                            a_out.cmp(&b_out).then_with(|| a.cmp(b))
                        })
                        .map(|(k, _)| k.clone());
                    let Some(victim) = victim else { break };
                    self.abort_build(&victim, now);
                    self.obs.metrics.inc("planner.preemptions");
                    let acquired = self.pools[lane].acquire_worker(now);
                    debug_assert!(acquired.is_some(), "preemption frees exactly one worker");
                    match acquired {
                        Some(w) => w,
                        None => break,
                    }
                }
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            let duration = self.spec(key.subject).build_duration + self.config.build_overhead;
            sched.at(now + duration, Event::BuildDone(seq));
            self.seq_to_key.insert(seq, key.clone());
            let span = self.obs.tracer.start_span("build", now);
            self.obs
                .tracer
                .span_field(span, "subject", key.subject.0 as f64);
            self.obs
                .tracer
                .span_field(span, "assumed", key.assumed.len() as f64);
            self.obs.tracer.span_field(span, "worker", worker as f64);
            self.obs.metrics.inc("planner.builds_started");
            if must_run.contains(&key) {
                self.obs.metrics.inc("planner.gating_builds_started");
            }
            self.running.insert(
                key.clone(),
                RunningBuild {
                    seq,
                    start: now,
                    finish: now + duration,
                    lane,
                    worker,
                    span,
                },
            );
            self.lane_running_count[lane] += 1;
            self.builds_started += 1;
            if let Some(p) = self.pending.get_mut(&key.subject) {
                p.builds_scheduled += 1;
            }
        }
    }
}

impl<'a> sq_sim::Simulation for Planner<'a> {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<'_, Event>) {
        match event {
            Event::Arrival(i) => {
                self.obs.metrics.inc("planner.arrivals");
                let spec = &self.workload.changes[i];
                let lane = self.lane_of(spec);
                // Admission: a shard-lane newcomer can only really
                // conflict with its own lane or the arbiter lane (its
                // parts all live in one shard; a conflicting partner must
                // touch one of them, so it routed to the same lane or —
                // multi-shard — to the arbiter). Filtering the probe set
                // accordingly yields the identical conflict graph with
                // strictly fewer analyzer queries. Arbiter arrivals probe
                // everyone.
                let pending_specs = if self.sharded() && lane != self.arbiter_lane() {
                    let arbiter = self.arbiter_lane();
                    self.pending
                        .iter()
                        .filter(|(_, p)| p.lane == lane || p.lane == arbiter)
                        .map(|(&id, _)| self.spec(id))
                        .collect()
                } else {
                    self.pending_specs()
                };
                self.graph.admit(spec, &pending_specs, &mut self.analyzer);
                if self.sharded() && self.obs.is_enabled() {
                    // Cross-shard conflict rate: edges the newcomer forms
                    // with pending changes routed to a *different* lane
                    // (by the partition theorem, one endpoint is always
                    // the arbiter).
                    let cross = self
                        .graph
                        .earlier_conflicts(spec.id)
                        .iter()
                        .filter(|d| self.pending.get(d).is_some_and(|pd| pd.lane != lane))
                        .count();
                    if cross > 0 {
                        self.obs
                            .metrics
                            .add("planner.shard.cross_conflicts", cross as u64);
                    }
                }
                self.pending.insert(
                    spec.id,
                    PendingChange {
                        lane,
                        fixed_committed: Vec::new(),
                        counters: SpeculationCounters::default(),
                        builds_scheduled: 0,
                        builds_aborted: 0,
                    },
                );
                self.lane_pending_count[lane] += 1;
                // A duplicate-key result may already exist (identical
                // realized build computed for an earlier change set).
                self.try_resolve(now);
                self.maybe_replan(now, sched);
            }
            Event::BuildDone(seq) => {
                if self.aborted_seqs.remove(&seq) {
                    // Worker already released at abort time.
                    self.seq_to_key.remove(&seq);
                    return;
                }
                let key = self
                    .seq_to_key
                    .remove(&seq)
                    .expect("completed build was tracked");
                // Infra-fault check first: an infra-red attempt carries
                // no information about the change, so it is retried on
                // the *same* worker (not released) after a charged
                // backoff — never rejected, never recorded as a result.
                if let Some(faults) = self.config.faults.clone() {
                    let attempts = self.infra_attempts.entry(key.clone()).or_insert(0);
                    *attempts += 1;
                    let attempt = *attempts;
                    if faults.infra_red(&key, attempt) {
                        self.infra_retries += 1;
                        if self.quarantine.record_flake(key.subject).is_some() {
                            self.obs.metrics.inc("planner.quarantined");
                            self.obs.tracer.event(
                                "quarantine",
                                now,
                                &[("change", key.subject.0 as f64)],
                            );
                        }
                        let backoff = faults.retry.backoff(attempt);
                        let duration = backoff
                            + self.spec(key.subject).build_duration
                            + self.config.build_overhead;
                        let new_seq = self.next_seq;
                        self.next_seq += 1;
                        sched.at(now + duration, Event::BuildDone(new_seq));
                        self.seq_to_key.insert(new_seq, key.clone());
                        let prev = *self.running.get(&key).expect("retried build was running");
                        self.obs.metrics.inc("planner.infra_retries");
                        self.obs
                            .metrics
                            .observe("planner.infra_backoff_secs", backoff.as_secs_f64());
                        self.obs.tracer.event(
                            "infra_retry",
                            now,
                            &[
                                ("change", key.subject.0 as f64),
                                ("attempt", f64::from(attempt)),
                                ("backoff_secs", backoff.as_secs_f64()),
                            ],
                        );
                        self.running.insert(
                            key.clone(),
                            RunningBuild {
                                seq: new_seq,
                                start: now,
                                finish: now + duration,
                                lane: prev.lane,
                                worker: prev.worker,
                                span: prev.span,
                            },
                        );
                        self.infra_backoff += backoff;
                        self.builds_started += 1;
                        if let Some(p) = self.pending.get_mut(&key.subject) {
                            p.builds_scheduled += 1;
                        }
                        return;
                    }
                }
                let rb = self
                    .running
                    .remove(&key)
                    .expect("finished build was running");
                self.pools[rb.lane].release_worker(rb.worker, now);
                self.lane_running_count[rb.lane] -= 1;
                self.obs
                    .metrics
                    .observe("planner.build_mins", now.since(rb.start).as_mins_f64());
                let subject = self.spec(key.subject);
                let assumed: Vec<&ChangeSpec> = key.assumed.iter().map(|&a| self.spec(a)).collect();
                let ok = self.truth.build_succeeds(subject, assumed.iter().copied());
                self.build_results.insert(key.clone(), ok);
                self.obs.metrics.inc("planner.builds_finished");
                self.obs
                    .tracer
                    .span_field(rb.span, "ok", if ok { 1.0 } else { 0.0 });
                self.obs.tracer.end_span(rb.span, now);
                // Dynamic speculation counters (Section 7.2): a finished
                // speculation is evidence for its subject and, on
                // success, for every change it stacked on.
                if let Some(p) = self.pending.get_mut(&key.subject) {
                    if ok {
                        p.counters.succeeded += 1;
                    } else {
                        p.counters.failed += 1;
                    }
                }
                if ok {
                    for a in &key.assumed {
                        if let Some(p) = self.pending.get_mut(a) {
                            p.counters.succeeded += 1;
                        }
                    }
                }
                self.try_resolve(now);
                self.maybe_replan(now, sched);
            }
            Event::Epoch(lane) => {
                self.epoch_scheduled[lane] = false;
                self.obs.metrics.inc("planner.epochs");
                self.replan_lane(lane, now, sched);
                // Keep the lane ticking while it has anything to plan for.
                if self.lane_pending_count[lane] > 0 || self.lane_running_count[lane] > 0 {
                    self.epoch_scheduled[lane] = true;
                    sched.at(now + self.tick_delay(lane), Event::Epoch(lane));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::audit_green;
    use sq_workload::{WorkloadBuilder, WorkloadParams};

    fn workload(rate: f64, n: usize, seed: u64) -> Workload {
        WorkloadBuilder::new(WorkloadParams::ios().with_rate(rate))
            .seed(seed)
            .n_changes(n)
            .build()
            .unwrap()
    }

    fn config(workers: usize) -> PlannerConfig {
        PlannerConfig {
            workers,
            ..PlannerConfig::default()
        }
    }

    #[test]
    fn oracle_resolves_every_change() {
        let w = workload(100.0, 200, 1);
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let r = run_simulation(&w, &strategy, &config(200));
        assert_eq!(r.records.len(), 200);
        assert!(r.committed() > 0);
        assert_eq!(r.committed() + r.rejected(), 200);
    }

    #[test]
    fn all_strategies_keep_master_green() {
        let w = workload(150.0, 150, 2);
        let history = workload(100.0, 4000, 99);
        for kind in StrategyKind::all() {
            let strategy = Strategy::build(kind, &w, Some(&history));
            let r = run_simulation(&w, &strategy, &config(150));
            assert_eq!(r.records.len(), 150, "{} must resolve all", kind.name());
            audit_green(&w, &r).unwrap_or_else(|e| {
                panic!("{} broke the mainline: {e}", kind.name());
            });
        }
    }

    #[test]
    fn oracle_never_wastes_builds() {
        let w = workload(100.0, 150, 3);
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let r = run_simulation(&w, &strategy, &config(300));
        // Perfect prediction: every started build is the realized one.
        assert_eq!(r.builds_aborted, 0, "oracle aborted builds");
        assert_eq!(r.builds_started as usize, 150);
    }

    #[test]
    fn speculate_all_wastes_builds() {
        let w = workload(200.0, 150, 4);
        let oracle = Strategy::build(StrategyKind::Oracle, &w, None);
        let all = Strategy::build(StrategyKind::SpeculateAll, &w, None);
        let r_oracle = run_simulation(&w, &oracle, &config(100));
        let r_all = run_simulation(&w, &all, &config(100));
        assert!(
            r_all.builds_started > r_oracle.builds_started,
            "speculate-all must run more builds ({} vs {})",
            r_all.builds_started,
            r_oracle.builds_started
        );
        assert!(r_all.builds_aborted > 0);
    }

    #[test]
    fn oracle_has_best_turnaround() {
        let w = workload(200.0, 200, 5);
        let history = workload(100.0, 4000, 98);
        let workers = 150;
        let oracle = run_simulation(
            &w,
            &Strategy::build(StrategyKind::Oracle, &w, None),
            &config(workers),
        );
        let (o50, _, _) = oracle.turnaround_p50_p95_p99();
        for kind in [
            StrategyKind::SubmitQueue,
            StrategyKind::SpeculateAll,
            StrategyKind::Optimistic,
            StrategyKind::SingleQueue,
        ] {
            let r = run_simulation(
                &w,
                &Strategy::build(kind, &w, Some(&history)),
                &config(workers),
            );
            let (p50, _, _) = r.turnaround_p50_p95_p99();
            assert!(
                p50 >= o50 * 0.999,
                "{} beat the oracle: {p50} < {o50}",
                kind.name()
            );
        }
    }

    #[test]
    fn rejections_always_have_a_ground_truth_reason() {
        // Commit sets can legitimately differ across strategies (a slower
        // strategy widens concurrency windows, exposing more real
        // conflicts), but every individual decision must be justified: a
        // rejection needs either an intrinsic failure or a real conflict
        // with a change that committed while it was in flight.
        let w = workload(150.0, 120, 6);
        let history = workload(100.0, 4000, 97);
        for kind in StrategyKind::all() {
            let strategy = Strategy::build(kind, &w, Some(&history));
            let r = run_simulation(&w, &strategy, &config(200));
            crate::audit::audit_rejections_justified(&w, &r)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }

    #[test]
    fn single_queue_is_slowest() {
        let w = workload(500.0, 300, 7);
        let oracle = run_simulation(
            &w,
            &Strategy::build(StrategyKind::Oracle, &w, None),
            &config(200),
        );
        let sq = run_simulation(
            &w,
            &Strategy::build(StrategyKind::SingleQueue, &w, None),
            &config(200),
        );
        // Independent changes proceed in parallel under Single-Queue, so
        // the median gap is modest; the conflict chains dominate the tail
        // (the paper's P95/P99 blow-ups of 129–132×).
        let (o50, o95, _) = oracle.turnaround_p50_p95_p99();
        let (s50, s95, _) = sq.turnaround_p50_p95_p99();
        assert!(s50 > o50 * 1.3, "P50: {s50} vs oracle {o50}");
        assert!(s95 > o95 * 2.0, "P95: {s95} vs oracle {o95}");
    }

    #[test]
    fn more_workers_never_hurt_oracle() {
        let w = workload(300.0, 200, 8);
        let few = run_simulation(
            &w,
            &Strategy::build(StrategyKind::Oracle, &w, None),
            &config(50),
        );
        let many = run_simulation(
            &w,
            &Strategy::build(StrategyKind::Oracle, &w, None),
            &config(400),
        );
        let (f50, _, _) = few.turnaround_p50_p95_p99();
        let (m50, _, _) = many.turnaround_p50_p95_p99();
        assert!(
            m50 <= f50 * 1.001,
            "more workers worsened oracle: {m50} vs {f50}"
        );
    }

    #[test]
    fn conflict_analyzer_improves_submitqueue() {
        let w = workload(300.0, 250, 9);
        let history = workload(100.0, 4000, 96);
        let strategy = Strategy::build(StrategyKind::SubmitQueue, &w, Some(&history));
        let with = run_simulation(&w, &strategy, &config(150));
        let without = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                workers: 150,
                conflict_analyzer: false,
                ..PlannerConfig::default()
            },
        );
        let (_, w95, _) = with.turnaround_p50_p95_p99();
        let (_, wo95, _) = without.turnaround_p50_p95_p99();
        assert!(
            w95 <= wo95 * 1.05,
            "analyzer should help (with {w95} vs without {wo95})"
        );
        // Both remain green.
        audit_green(&w, &with).unwrap();
        audit_green(&w, &without).unwrap();
    }

    #[test]
    fn utilization_is_a_fraction() {
        let w = workload(100.0, 100, 10);
        let r = run_simulation(
            &w,
            &Strategy::build(StrategyKind::Optimistic, &w, None),
            &config(100),
        );
        assert!((0.0..=1.0).contains(&r.utilization));
        assert!(r.makespan > SimTime::ZERO);
        assert!(r.throughput_per_hour() > 0.0);
    }

    #[test]
    fn reorder_mode_stays_green_and_helps_small_changes() {
        // Section 10 "Change Reordering": a small change submitted after
        // a long-running conflicting change no longer waits for it.
        let w = workload(300.0, 200, 11);
        let base = PlannerConfig {
            workers: 150,
            ..PlannerConfig::default()
        };
        let reordered = PlannerConfig {
            reorder: true,
            ..base.clone()
        };
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let in_order = run_simulation(&w, &strategy, &base);
        let out_of_order = run_simulation(&w, &strategy, &reordered);
        // Safety first: reordering must not break the mainline.
        audit_green(&w, &out_of_order).unwrap();
        assert_eq!(out_of_order.records.len(), 200);
        // Reordering is the paper's fairness/starvation tradeoff: jumped
        // changes finish sooner, overtaken ones rebuild on the grown
        // prefix. Net median must stay in the same band, not regress
        // wholesale.
        let (p50_in, _, _) = in_order.turnaround_p50_p95_p99();
        let (p50_re, _, _) = out_of_order.turnaround_p50_p95_p99();
        assert!(
            p50_re <= p50_in * 1.25,
            "reordering regressed median turnaround badly ({p50_re} vs {p50_in})"
        );
        // The commit order genuinely deviates from submission order.
        let monotone = out_of_order.commit_log.windows(2).all(|p| p[0] < p[1]);
        assert!(
            !monotone || in_order.commit_log == out_of_order.commit_log,
            "reorder mode should produce out-of-order commits on a contended workload"
        );
    }

    #[test]
    fn preemption_guard_protects_nearly_finished_builds() {
        // Section 10 "Build Preemption": with a guard, builds past the
        // threshold are never aborted for gating work. The run must still
        // terminate, stay green, and abort no more than the unguarded run.
        let w = workload(400.0, 150, 12);
        let strategy = Strategy::build(StrategyKind::SpeculateAll, &w, None);
        let unguarded = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                workers: 60,
                ..PlannerConfig::default()
            },
        );
        let guarded = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                workers: 60,
                preemption_guard: Some(0.8),
                ..PlannerConfig::default()
            },
        );
        audit_green(&w, &guarded).unwrap();
        assert_eq!(guarded.records.len(), 150);
        assert!(
            guarded.builds_aborted <= unguarded.builds_aborted,
            "guard must not increase aborts ({} vs {})",
            guarded.builds_aborted,
            unguarded.builds_aborted
        );
    }

    #[test]
    fn epoch_mode_is_green_and_close_to_event_driven() {
        // Section 6: planning on epochs instead of every event. Short
        // epochs should cost little; the run must stay green and resolve
        // everything either way.
        let w = workload(200.0, 150, 14);
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let event_driven = run_simulation(&w, &strategy, &config(150));
        let epoch = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                workers: 150,
                epoch: Some(SimDuration::from_secs(30)),
                ..PlannerConfig::default()
            },
        );
        audit_green(&w, &epoch).unwrap();
        assert_eq!(epoch.records.len(), 150);
        let (p50_event, _, _) = event_driven.turnaround_p50_p95_p99();
        let (p50_epoch, _, _) = epoch.turnaround_p50_p95_p99();
        // A 30s epoch adds at most ~1 tick of latency per planning round.
        assert!(
            p50_epoch <= p50_event + 5.0,
            "30s epochs should cost little: {p50_epoch} vs {p50_event}"
        );
        // Long epochs visibly hurt.
        let slow = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                workers: 150,
                epoch: Some(SimDuration::from_mins(20)),
                ..PlannerConfig::default()
            },
        );
        audit_green(&w, &slow).unwrap();
        let (p50_slow, _, _) = slow.turnaround_p50_p95_p99();
        assert!(
            p50_slow > p50_epoch,
            "20-minute epochs should be slower: {p50_slow} vs {p50_epoch}"
        );
    }

    #[test]
    fn empty_workload_terminates_immediately() {
        let w = WorkloadBuilder::new(WorkloadParams::ios())
            .seed(20)
            .n_changes(0)
            .build()
            .unwrap();
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let r = run_simulation(&w, &strategy, &config(10));
        assert!(r.records.is_empty());
        assert!(r.commit_log.is_empty());
        assert_eq!(r.builds_started, 0);
        assert_eq!(r.makespan, SimTime::ZERO);
    }

    #[test]
    fn single_change_workload() {
        let w = workload(100.0, 1, 21);
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let r = run_simulation(&w, &strategy, &config(1));
        assert_eq!(r.records.len(), 1);
        let c = &w.changes[0];
        assert_eq!(r.commit_log.len(), usize::from(c.intrinsic_success));
        // Turnaround = build duration + overhead (no queueing).
        let expected = c.build_duration + PlannerConfig::default().build_overhead;
        assert_eq!(r.records[0].turnaround, expected);
    }

    #[test]
    fn all_changes_failing_still_terminates_green() {
        let mut params = WorkloadParams::ios().with_rate(200.0);
        params.success_base_logit = -50.0; // nobody passes
        let w = WorkloadBuilder::new(params)
            .seed(22)
            .n_changes(60)
            .build()
            .unwrap();
        assert_eq!(w.isolated_success_rate(), 0.0);
        for kind in [
            StrategyKind::Oracle,
            StrategyKind::SpeculateAll,
            StrategyKind::SingleQueue,
        ] {
            let strategy = Strategy::build(kind, &w, None);
            let r = run_simulation(&w, &strategy, &config(50));
            assert_eq!(r.records.len(), 60, "{}", kind.name());
            assert!(r.commit_log.is_empty(), "{}", kind.name());
            audit_green(&w, &r).unwrap();
        }
    }

    #[test]
    fn one_worker_never_deadlocks() {
        let w = workload(300.0, 40, 23);
        for kind in [
            StrategyKind::Oracle,
            StrategyKind::SpeculateAll,
            StrategyKind::Optimistic,
        ] {
            let strategy = Strategy::build(kind, &w, None);
            let r = run_simulation(&w, &strategy, &config(1));
            assert_eq!(r.records.len(), 40, "{} starved", kind.name());
            audit_green(&w, &r).unwrap();
        }
    }

    #[test]
    fn zero_overhead_turnarounds_are_exact_durations_for_oracle_uncontended() {
        let w = workload(10.0, 10, 24); // very sparse arrivals
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let r = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                workers: 100,
                build_overhead: SimDuration::ZERO,
                ..PlannerConfig::default()
            },
        );
        // With no contention and no conflicts gating at this sparsity for
        // most changes, most turnarounds equal the build duration exactly.
        let exact = r
            .records
            .iter()
            .filter(|rec| rec.turnaround == w.changes[rec.id.0 as usize].build_duration)
            .count();
        assert!(exact >= 7, "only {exact}/10 exact");
    }

    #[test]
    fn simulations_are_bit_for_bit_deterministic() {
        let w = workload(250.0, 120, 25);
        let history = workload(100.0, 3000, 94);
        for kind in [StrategyKind::Oracle, StrategyKind::SubmitQueue] {
            let strategy = Strategy::build(kind, &w, Some(&history));
            let r1 = run_simulation(&w, &strategy, &config(120));
            let r2 = run_simulation(&w, &strategy, &config(120));
            assert_eq!(r1.commit_log, r2.commit_log, "{}", kind.name());
            assert_eq!(r1.builds_started, r2.builds_started);
            assert_eq!(r1.builds_aborted, r2.builds_aborted);
            assert_eq!(r1.makespan, r2.makespan);
            for (a, b) in r1.records.iter().zip(&r2.records) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.resolved, b.resolved);
                assert_eq!(a.outcome, b.outcome);
            }
        }
    }

    #[test]
    fn infra_faults_cost_latency_but_never_reject_passing_changes() {
        let w = workload(150.0, 100, 30);
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let clean = run_simulation(&w, &strategy, &config(100));
        assert_eq!(clean.infra_retries, 0);
        assert!(clean.quarantined.is_empty());
        let faulty = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                workers: 100,
                faults: Some(SimFaults::at_rate(0.2, 7)),
                ..PlannerConfig::default()
            },
        );
        // Everything still resolves; the flakes only cost retries and
        // charged backoff.
        assert_eq!(faulty.records.len(), 100);
        assert!(faulty.infra_retries > 0, "a 20% flake rate must fire");
        assert!(faulty.infra_backoff > SimDuration::ZERO);
        audit_green(&w, &faulty).unwrap();
        // The headline: no genuinely-passing change is wrongly rejected.
        crate::audit::audit_rejections_justified(&w, &faulty).unwrap();
    }

    #[test]
    fn fault_model_is_bit_for_bit_deterministic_per_seed() {
        let w = workload(250.0, 80, 31);
        let history = workload(100.0, 3000, 93);
        let strategy = Strategy::build(StrategyKind::SubmitQueue, &w, Some(&history));
        let cfg = PlannerConfig {
            workers: 80,
            faults: Some(SimFaults::at_rate(0.25, 9)),
            ..PlannerConfig::default()
        };
        let r1 = run_simulation(&w, &strategy, &cfg);
        let r2 = run_simulation(&w, &strategy, &cfg);
        assert_eq!(r1.commit_log, r2.commit_log);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.infra_retries, r2.infra_retries);
        assert_eq!(r1.infra_backoff, r2.infra_backoff);
        assert_eq!(r1.quarantined, r2.quarantined);
        for (a, b) in r1.records.iter().zip(&r2.records) {
            assert_eq!((a.id, a.resolved, a.outcome), (b.id, b.resolved, b.outcome));
        }
        // A different fault seed still resolves everything, still green.
        let other = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                workers: 80,
                faults: Some(SimFaults::at_rate(0.25, 10)),
                ..PlannerConfig::default()
            },
        );
        assert_eq!(other.records.len(), 80);
        audit_green(&w, &other).unwrap();
    }

    #[test]
    fn chronic_flakes_land_in_the_quarantine_list() {
        let w = workload(100.0, 30, 32);
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let mut faults = SimFaults::at_rate(0.6, 3);
        faults.quarantine_threshold = 2;
        let r = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                workers: 30,
                faults: Some(faults),
                ..PlannerConfig::default()
            },
        );
        // At a 60% per-attempt fault rate, some change must flake twice.
        assert!(!r.quarantined.is_empty(), "quarantine list stayed empty");
        assert_eq!(r.records.len(), 30);
        audit_green(&w, &r).unwrap();
        crate::audit::audit_rejections_justified(&w, &r).unwrap();
        let report = crate::audit::recovery_report(&r);
        assert!(report.contains("quarantined"), "report = {report}");
    }

    #[test]
    fn observed_runs_are_unperturbed_and_export_identical_json() {
        let w = workload(200.0, 100, 33);
        let history = workload(100.0, 3000, 92);
        let strategy = Strategy::build(StrategyKind::SubmitQueue, &w, Some(&history));
        let cfg = PlannerConfig {
            workers: 100,
            faults: Some(SimFaults::at_rate(0.1, 5)),
            ..PlannerConfig::default()
        };
        let mut o1 = Observer::new();
        let r1 = run_simulation_observed(&w, &strategy, &cfg, &mut o1);
        let mut o2 = Observer::new();
        let r2 = run_simulation_observed(&w, &strategy, &cfg, &mut o2);
        // Same seed ⇒ byte-identical exports (the layer's acceptance
        // criterion) and identical results.
        assert_eq!(o1.to_json(), o2.to_json());
        assert_eq!(r1.commit_log, r2.commit_log);
        // Observability must not perturb the simulation itself.
        let r0 = run_simulation(&w, &strategy, &cfg);
        assert_eq!(r0.commit_log, r1.commit_log);
        assert_eq!(r0.makespan, r1.makespan);
        assert_eq!(r0.builds_started, r1.builds_started);
        // Counters agree with the result's own accounting.
        let m = &o1.metrics;
        assert_eq!(m.counter("planner.commits") as usize, r1.committed());
        assert_eq!(m.counter("planner.rejects") as usize, r1.rejected());
        assert_eq!(m.counter("planner.builds_aborted"), r1.builds_aborted);
        assert_eq!(m.counter("planner.infra_retries"), r1.infra_retries);
        // A retry re-uses its span, so scheduled spans + retries =
        // total started builds.
        assert_eq!(
            m.counter("planner.builds_started") + m.counter("planner.infra_retries"),
            r1.builds_started
        );
        assert_eq!(
            o1.tracer.spans().len() as u64,
            m.counter("planner.builds_started")
        );
        // The run drains fully: every build span is closed.
        assert!(o1.tracer.spans().iter().all(|s| s.end.is_some()));
        assert!(m.counter("planner.builds_needed") > 0);
        assert!(m.histogram("planner.queue_depth").is_some());
        assert!(m.histogram("planner.p_needed_mass").is_some());
        assert!(m.gauge("planner.utilization").is_some());
        // Conflict-index counters: the pairwise relation is served from
        // cached bitsets (admitting a change misses once for the
        // newcomer, then every pending neighbour is a hit), and the
        // parallel-batch gauge is exactly 0 — wall time never enters the
        // export, which is what keeps the byte-identity assertion above
        // meaningful.
        assert!(m.counter("analyzer.pairs_checked") > 0);
        assert!(m.counter("analyzer.cache_misses") > 0);
        assert!(
            m.counter("analyzer.cache_hits") > m.counter("analyzer.cache_misses"),
            "pending-window re-queries must be served from cache ({} hits vs {} misses)",
            m.counter("analyzer.cache_hits"),
            m.counter("analyzer.cache_misses")
        );
        assert_eq!(m.gauge("analyzer.parallel_ms"), Some(0.0));
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let w = workload(100.0, 30, 34);
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let mut obs = Observer::disabled();
        let r = run_simulation_observed(&w, &strategy, &config(30), &mut obs);
        assert_eq!(r.records.len(), 30);
        assert_eq!(obs.metrics.counter("planner.builds_started"), 0);
        assert!(obs.tracer.spans().is_empty());
        assert!(obs.tracer.events().is_empty());
    }

    #[test]
    fn sharded_planner_stays_green_with_zero_wrongful_rejections() {
        use crate::shard::{ShardPlan, ShardReport, ShardSpec};
        let w = workload(300.0, 200, 40);
        let history = workload(100.0, 3000, 91);
        let plan = ShardPlan::round_robin(300, 4);
        for kind in [StrategyKind::Oracle, StrategyKind::SubmitQueue] {
            let strategy = Strategy::build(kind, &w, Some(&history));
            let cfg = PlannerConfig {
                shards: Some(ShardSpec::proportional(plan.clone(), &w, 200)),
                ..PlannerConfig::default()
            };
            let r = run_simulation(&w, &strategy, &cfg);
            assert_eq!(r.records.len(), 200, "{} must resolve all", kind.name());
            audit_green(&w, &r).unwrap_or_else(|e| {
                panic!("{} broke the merged trunk: {e}", kind.name());
            });
            crate::audit::audit_rejections_justified(&w, &r)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            // Per-lane attribution: every record in exactly one lane,
            // zero wrongful rejections in each.
            let report = ShardReport::from_result(&w, &r, &plan);
            assert_eq!(
                report.lanes.iter().map(|l| l.routed).sum::<usize>(),
                r.records.len()
            );
            assert_eq!(report.total_wrongful(), 0, "{}", kind.name());
        }
    }

    #[test]
    fn sharded_simulations_are_bit_for_bit_deterministic() {
        use crate::shard::{PlanningCost, ShardPlan, ShardSpec};
        let w = workload(400.0, 150, 41);
        let plan = ShardPlan::round_robin(300, 3);
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let cfg = PlannerConfig {
            shards: Some(ShardSpec::even(plan, 120)),
            planning_cost: Some(PlanningCost {
                base: SimDuration::from_secs(2),
                per_pending: SimDuration::from_secs(1),
            }),
            ..PlannerConfig::default()
        };
        let r1 = run_simulation(&w, &strategy, &cfg);
        let r2 = run_simulation(&w, &strategy, &cfg);
        assert_eq!(r1.commit_log, r2.commit_log);
        assert_eq!(r1.builds_started, r2.builds_started);
        assert_eq!(r1.builds_aborted, r2.builds_aborted);
        assert_eq!(r1.makespan, r2.makespan);
        for (a, b) in r1.records.iter().zip(&r2.records) {
            assert_eq!((a.id, a.resolved, a.outcome), (b.id, b.resolved, b.outcome));
        }
    }

    #[test]
    fn sharded_observed_runs_surface_per_lane_metrics() {
        use crate::shard::{ShardPlan, ShardSpec};
        let w = workload(300.0, 120, 42);
        let plan = ShardPlan::round_robin(300, 3);
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let cfg = PlannerConfig {
            shards: Some(ShardSpec::proportional(plan.clone(), &w, 120)),
            ..PlannerConfig::default()
        };
        let mut obs = Observer::new();
        let r = run_simulation_observed(&w, &strategy, &cfg, &mut obs);
        assert_eq!(r.records.len(), 120);
        audit_green(&w, &r).unwrap();
        // Every lane that planned a round recorded its own queue depth;
        // the routing guarantees the arbiter sees the multi-shard tail.
        let m = &obs.metrics;
        assert!(m.histogram("planner.shard.arbiter.queue_depth").is_some());
        assert!(m.histogram("planner.shard.s00.queue_depth").is_some());
        // Multi-part changes crossing shards produce arbiter conflicts.
        assert!(
            m.counter("planner.shard.cross_conflicts") > 0,
            "a contended multi-shard workload must show cross-shard conflicts"
        );
        // Observability still does not perturb the run.
        let r0 = run_simulation(&w, &strategy, &cfg);
        assert_eq!(r0.commit_log, r.commit_log);
        assert_eq!(r0.makespan, r.makespan);
    }

    #[test]
    fn planning_cost_saturates_one_window_but_not_sharded_lanes() {
        use crate::shard::{PlanningCost, ShardPlan, ShardSpec};
        // The tentpole claim in miniature: under the same planning-cost
        // model, one global window slows down as it grows, while sharded
        // lanes keep their windows (and ticks) small.
        let w = workload(900.0, 300, 43);
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let cost = PlanningCost {
            base: SimDuration::from_secs(5),
            per_pending: SimDuration::from_secs(10),
        };
        let single = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                workers: 240,
                planning_cost: Some(cost),
                ..PlannerConfig::default()
            },
        );
        let plan = ShardPlan::round_robin(300, 6);
        let sharded = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                shards: Some(ShardSpec::proportional(plan, &w, 240)),
                planning_cost: Some(cost),
                ..PlannerConfig::default()
            },
        );
        audit_green(&w, &single).unwrap();
        audit_green(&w, &sharded).unwrap();
        assert_eq!(sharded.records.len(), 300);
        let (p50_single, _, _) = single.turnaround_p50_p95_p99();
        let (p50_sharded, _, _) = sharded.turnaround_p50_p95_p99();
        assert!(
            p50_sharded < p50_single,
            "sharded lanes must beat the saturating global window \
             ({p50_sharded} vs {p50_single} min)"
        );
        // No throughput assertion here: this burst cell is
        // drain-dominated, where a single flexible pool always empties a
        // fixed backlog fast. The steady-state throughput claim — where
        // planning ticks, not worker drain, bound the rate — is
        // bench_shard's, over a long arrival window.
    }

    #[test]
    fn reorder_with_learned_predictor_is_green() {
        let w = workload(250.0, 120, 13);
        let history = workload(100.0, 3000, 95);
        let strategy = Strategy::build(StrategyKind::SubmitQueue, &w, Some(&history));
        let r = run_simulation(
            &w,
            &strategy,
            &PlannerConfig {
                workers: 100,
                reorder: true,
                preemption_guard: Some(0.9),
                ..PlannerConfig::default()
            },
        );
        audit_green(&w, &r).unwrap();
        assert_eq!(r.records.len(), 120);
    }
}
