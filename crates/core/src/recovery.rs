//! Infra-failure recovery: rebuild accounting, quarantine of
//! chronically flaky targets, and the audit log of every recovery
//! decision.
//!
//! The paper's Section 4 proof of the always-green invariant assumes a
//! red build implicates the change under test. Infra failures break the
//! implication, so recovery decisions must themselves be auditable:
//! every retry, rebuild, quarantine entry, and infra-rejection is
//! recorded as a [`RecoveryEvent`], and the quarantine list is surfaced
//! through [`crate::audit`] next to the greenness checks. Determinism is
//! preserved end to end: faults are seeded, backoff schedules are pure
//! functions, so two runs with equal seeds produce equal logs.

use sq_exec::{BuildStep, InfraFault, RetryPolicy};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Build-level (as opposed to step-level) infra-recovery policy.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Step-level retry policy handed to the build controller.
    pub retry: RetryPolicy,
    /// How many times an infra-red *build* is redone before the change
    /// is rejected with an explicit infrastructure reason.
    pub max_rebuilds: u32,
    /// Infra-fault observations on one target before it is quarantined.
    pub quarantine_threshold: u32,
}

impl RecoveryConfig {
    /// No recovery: infra failures surface immediately (the seed
    /// behaviour before the failure model existed).
    pub fn disabled() -> Self {
        RecoveryConfig {
            retry: RetryPolicy::none(),
            max_rebuilds: 0,
            quarantine_threshold: u32::MAX,
        }
    }

    /// Production-shaped defaults: 3 step attempts with exponential
    /// backoff, 3 whole-build redos, quarantine after 3 observed flakes.
    pub fn standard(seed: u64) -> Self {
        RecoveryConfig {
            retry: RetryPolicy::standard(3, seed),
            max_rebuilds: 3,
            quarantine_threshold: 3,
        }
    }
}

/// One recovery decision, recorded in the audit log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// Step-level infra faults were absorbed by in-place retries during
    /// one build of `subject`.
    StepRetries {
        /// The change (ticket or change id) whose build retried.
        subject: String,
        /// How many step attempts were retried.
        retries: u64,
    },
    /// A whole build of `subject` ended infra-red and was scheduled for
    /// rebuild `attempt` (1-based).
    Rebuild {
        /// The change being rebuilt.
        subject: String,
        /// Rebuild ordinal.
        attempt: u32,
        /// The step whose retries were exhausted.
        step: BuildStep,
        /// The final fault observed.
        fault: InfraFault,
    },
    /// A target crossed the flake threshold and entered quarantine.
    Quarantined {
        /// The chronically flaky target.
        target: String,
        /// Total infra faults observed on it so far.
        observations: u32,
    },
    /// The rebuild budget ran out: the change was rejected for
    /// infrastructure reasons (explicitly *not* blamed on the change).
    InfraRejected {
        /// The rejected change.
        subject: String,
        /// Builds attempted in total.
        attempts: u32,
    },
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryEvent::StepRetries { subject, retries } => {
                write!(f, "{subject}: absorbed {retries} step retr(y/ies)")
            }
            RecoveryEvent::Rebuild {
                subject,
                attempt,
                step,
                fault,
            } => write!(
                f,
                "{subject}: rebuild #{attempt} after step '{step}' hit {fault}"
            ),
            RecoveryEvent::Quarantined {
                target,
                observations,
            } => write!(f, "quarantined {target} after {observations} infra faults"),
            RecoveryEvent::InfraRejected { subject, attempts } => write!(
                f,
                "{subject}: rejected after {attempts} infra-red builds (infrastructure, \
                 not the change)"
            ),
        }
    }
}

/// Append-only log of recovery decisions.
#[derive(Debug, Clone, Default)]
pub struct RecoveryLog {
    events: Vec<RecoveryEvent>,
}

impl RecoveryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: RecoveryEvent) {
        self.events.push(event);
    }

    /// The events, in decision order.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Total step retries absorbed.
    pub fn step_retries(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                RecoveryEvent::StepRetries { retries, .. } => *retries,
                _ => 0,
            })
            .sum()
    }

    /// Whole-build rebuilds scheduled.
    pub fn rebuilds(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, RecoveryEvent::Rebuild { .. }))
            .count()
    }

    /// Changes rejected for infrastructure reasons.
    pub fn infra_rejections(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, RecoveryEvent::InfraRejected { .. }))
            .count()
    }
}

/// Flake accounting with a quarantine threshold.
///
/// Keyed generically: the service quarantines build targets, the
/// simulator quarantines changes (its builds have no per-target
/// granularity). `BTreeMap`/`BTreeSet` keep iteration order — and hence
/// logs and reports — deterministic.
#[derive(Debug, Clone)]
pub struct QuarantineList<K: Ord + Clone> {
    threshold: u32,
    counts: BTreeMap<K, u32>,
    quarantined: BTreeSet<K>,
}

impl<K: Ord + Clone> QuarantineList<K> {
    /// An empty list quarantining after `threshold` observations.
    /// Panics if the threshold is zero (everything would quarantine
    /// before its first flake).
    pub fn new(threshold: u32) -> Self {
        assert!(threshold > 0, "quarantine threshold must be positive");
        QuarantineList {
            threshold,
            counts: BTreeMap::new(),
            quarantined: BTreeSet::new(),
        }
    }

    /// Record one infra-fault observation on `key`. Returns the total
    /// observation count if the key *newly* crossed the threshold
    /// (callers log exactly one quarantine event per key).
    pub fn record_flake(&mut self, key: K) -> Option<u32> {
        let count = self.counts.entry(key.clone()).or_insert(0);
        *count += 1;
        if *count >= self.threshold && self.quarantined.insert(key) {
            Some(*count)
        } else {
            None
        }
    }

    /// Restore a quarantined key from durable state: set its observation
    /// count and mark it quarantined without re-announcing (recovery
    /// replays the original `Quarantined` event; it must not log a new
    /// one).
    pub fn restore(&mut self, key: K, observations: u32) {
        self.counts.insert(key.clone(), observations);
        self.quarantined.insert(key);
    }

    /// True iff `key` is quarantined.
    pub fn is_quarantined(&self, key: &K) -> bool {
        self.quarantined.contains(key)
    }

    /// Observation count for `key`.
    pub fn observations(&self, key: &K) -> u32 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// The quarantined keys, in order.
    pub fn quarantined(&self) -> impl Iterator<Item = &K> {
        self.quarantined.iter()
    }

    /// Number of quarantined keys.
    pub fn len(&self) -> usize {
        self.quarantined.len()
    }

    /// True iff nothing is quarantined.
    pub fn is_empty(&self) -> bool {
        self.quarantined.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_fires_exactly_once_at_threshold() {
        let mut q: QuarantineList<&str> = QuarantineList::new(3);
        assert_eq!(q.record_flake("//a:a"), None);
        assert_eq!(q.record_flake("//a:a"), None);
        assert!(!q.is_quarantined(&"//a:a"));
        assert_eq!(q.record_flake("//a:a"), Some(3));
        assert!(q.is_quarantined(&"//a:a"));
        // Further flakes count but do not re-announce.
        assert_eq!(q.record_flake("//a:a"), None);
        assert_eq!(q.observations(&"//a:a"), 4);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn restore_rebuilds_quarantine_without_reannouncing() {
        let mut q: QuarantineList<&str> = QuarantineList::new(3);
        q.restore("//flaky:t", 5);
        assert!(q.is_quarantined(&"//flaky:t"));
        assert_eq!(q.observations(&"//flaky:t"), 5);
        // Already quarantined: further flakes never re-announce.
        assert_eq!(q.record_flake("//flaky:t"), None);
        assert_eq!(q.observations(&"//flaky:t"), 6);
    }

    #[test]
    fn independent_keys_do_not_interfere() {
        let mut q: QuarantineList<u32> = QuarantineList::new(2);
        q.record_flake(1);
        q.record_flake(2);
        assert!(q.is_empty());
        q.record_flake(1);
        assert!(q.is_quarantined(&1));
        assert!(!q.is_quarantined(&2));
        assert_eq!(q.quarantined().copied().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn log_counts_by_event_kind() {
        let mut log = RecoveryLog::new();
        log.push(RecoveryEvent::StepRetries {
            subject: "T1".into(),
            retries: 4,
        });
        log.push(RecoveryEvent::StepRetries {
            subject: "T2".into(),
            retries: 1,
        });
        log.push(RecoveryEvent::Quarantined {
            target: "//flaky:t".into(),
            observations: 3,
        });
        log.push(RecoveryEvent::InfraRejected {
            subject: "T9".into(),
            attempts: 4,
        });
        assert_eq!(log.step_retries(), 5);
        assert_eq!(log.rebuilds(), 0);
        assert_eq!(log.infra_rejections(), 1);
        assert_eq!(log.events().len(), 4);
    }

    #[test]
    fn config_presets() {
        let off = RecoveryConfig::disabled();
        assert_eq!(off.max_rebuilds, 0);
        assert!(!off.retry.should_retry(1));
        let on = RecoveryConfig::standard(5);
        assert!(on.retry.should_retry(1));
        assert!(on.max_rebuilds > 0);
    }

    #[test]
    fn events_render_human_readably() {
        let e = RecoveryEvent::Quarantined {
            target: "//flaky:t".into(),
            observations: 3,
        };
        assert!(e.to_string().contains("//flaky:t"));
        let r = RecoveryEvent::InfraRejected {
            subject: "T4".into(),
            attempts: 4,
        };
        assert!(r.to_string().contains("infrastructure"));
    }
}
