//! Greenness audits.
//!
//! "A mainline is called green if all build steps can successfully
//! execute for every commit point in the history" (Section 1). The
//! simulator doesn't *assume* SubmitQueue achieves this — after every
//! run, the commit log is replayed against the ground truth:
//!
//! 1. every committed change must pass its build steps in isolation;
//! 2. no two committed changes that were *concurrently in flight* may
//!    really conflict (a change submitted after another committed was
//!    developed against a HEAD already containing it, so only
//!    overlapping windows can break a commit point).

use crate::planner::SimResult;
use sq_sim::SimTime;
use sq_workload::{ChangeId, Workload};
use std::collections::{HashMap, HashSet};

/// Verify the always-green invariant for a finished run.
///
/// Returns `Err` with a human-readable description of the first red
/// commit point found.
pub fn audit_green(workload: &Workload, result: &SimResult) -> Result<(), String> {
    let truth = workload.truth();
    let resolved_at: HashMap<ChangeId, SimTime> =
        result.records.iter().map(|r| (r.id, r.resolved)).collect();
    let spec = |id: ChangeId| &workload.changes[id.0 as usize];
    for (k, &c_id) in result.commit_log.iter().enumerate() {
        let c = spec(c_id);
        if !truth.succeeds_alone(c) {
            return Err(format!(
                "commit #{k} ({c_id}) fails its own build steps — red mainline"
            ));
        }
        for &d_id in &result.commit_log[..k] {
            let d = spec(d_id);
            let d_committed = resolved_at
                .get(&d_id)
                .copied()
                .ok_or_else(|| format!("{d_id} committed but has no record"))?;
            // Concurrency window: c was already submitted when d landed.
            if c.submit_time < d_committed && truth.real_conflict(c, d) {
                return Err(format!(
                    "commit #{k} ({c_id}) really conflicts with earlier commit {d_id} \
                     — composing them breaks the mainline"
                ));
            }
        }
    }
    Ok(())
}

/// Verify that every rejection in a finished run is justified by the
/// ground truth: the change either fails its own build steps in
/// isolation, or really conflicts with a change that committed while it
/// was in flight.
///
/// Infra faults are never a justification — a run that rejects a
/// genuinely-passing, unconflicted change fails this audit, which is
/// exactly the "wrongly rejected change" count the flake-rate sweeps
/// must hold at zero.
pub fn audit_rejections_justified(workload: &Workload, result: &SimResult) -> Result<(), String> {
    let truth = workload.truth();
    let committed: HashSet<ChangeId> = result.commit_log.iter().copied().collect();
    let resolved_at: HashMap<ChangeId, SimTime> =
        result.records.iter().map(|r| (r.id, r.resolved)).collect();
    for rec in &result.records {
        if committed.contains(&rec.id) {
            continue;
        }
        let c = &workload.changes[rec.id.0 as usize];
        let justified = !truth.succeeds_alone(c)
            || result.commit_log.iter().any(|&d_id| {
                let d = &workload.changes[d_id.0 as usize];
                let d_committed = resolved_at.get(&d_id).copied().unwrap_or(SimTime::ZERO);
                c.submit_time < d_committed && truth.real_conflict(c, d)
            });
        if !justified {
            return Err(format!(
                "{} passes alone and conflicts with nothing that landed in its window — \
                 it was wrongly rejected",
                rec.id
            ));
        }
    }
    Ok(())
}

/// Count the wrongful rejections in a finished run: changes that pass
/// alone and conflict with nothing that landed in their window, yet were
/// rejected anyway. [`audit_rejections_justified`] is the all-or-nothing
/// form; the scenario matrix reports (and gates on) this count.
pub fn count_wrongful_rejections(workload: &Workload, result: &SimResult) -> usize {
    wrongful_rejections(workload, result).len()
}

/// The wrongful rejections themselves, in record order — the per-shard
/// reports attribute each one to the lane that owned the change.
pub fn wrongful_rejections(workload: &Workload, result: &SimResult) -> Vec<ChangeId> {
    let truth = workload.truth();
    let committed: HashSet<ChangeId> = result.commit_log.iter().copied().collect();
    let resolved_at: HashMap<ChangeId, SimTime> =
        result.records.iter().map(|r| (r.id, r.resolved)).collect();
    result
        .records
        .iter()
        .filter(|rec| {
            if committed.contains(&rec.id) {
                return false;
            }
            let c = &workload.changes[rec.id.0 as usize];
            truth.succeeds_alone(c)
                && !result.commit_log.iter().any(|&d_id| {
                    let d = &workload.changes[d_id.0 as usize];
                    let d_committed = resolved_at.get(&d_id).copied().unwrap_or(SimTime::ZERO);
                    c.submit_time < d_committed && truth.real_conflict(c, d)
                })
        })
        .map(|rec| rec.id)
        .collect()
}

/// Surface a run's recovery picture next to the greenness audits: infra
/// retries, charged backoff, and the quarantine list of chronically
/// flaky changes.
pub fn recovery_report(result: &SimResult) -> String {
    if result.infra_retries == 0 && result.quarantined.is_empty() {
        return "no infra faults observed".into();
    }
    let quarantined: Vec<String> = result.quarantined.iter().map(|c| c.to_string()).collect();
    format!(
        "{} infra-red build attempt(s) retried, {:.1} min of backoff charged, \
         quarantined: [{}]",
        result.infra_retries,
        result.infra_backoff.as_mins_f64(),
        quarantined.join(", ")
    )
}

/// Count how many commit points would be red in a commit log (used by
/// the trunk-based baseline where breakage is expected).
pub fn count_red_commits(workload: &Workload, commit_log: &[ChangeId]) -> usize {
    let truth = workload.truth();
    let spec = |id: ChangeId| &workload.changes[id.0 as usize];
    let mut red = 0;
    for (k, &c_id) in commit_log.iter().enumerate() {
        let c = spec(c_id);
        let broken = !truth.succeeds_alone(c)
            || commit_log[..k]
                .iter()
                .any(|&d_id| truth.real_conflict(c, spec(d_id)));
        if broken {
            red += 1;
        }
    }
    red
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pending::{ChangeOutcome, ChangeRecord};
    use crate::strategy::StrategyKind;
    use sq_workload::{WorkloadBuilder, WorkloadParams};

    fn workload(n: usize, seed: u64) -> Workload {
        WorkloadBuilder::new(WorkloadParams::ios())
            .seed(seed)
            .n_changes(n)
            .build()
            .unwrap()
    }

    fn result_with(w: &Workload, log: Vec<ChangeId>) -> SimResult {
        let records = w
            .changes
            .iter()
            .map(|c| {
                ChangeRecord::new(
                    c.id,
                    c.submit_time,
                    SimTime::from_hours(1000), // everything resolved late
                    if log.contains(&c.id) {
                        ChangeOutcome::Committed
                    } else {
                        ChangeOutcome::Rejected
                    },
                    1,
                    0,
                )
            })
            .collect();
        SimResult {
            strategy: StrategyKind::Oracle,
            records,
            commit_log: log,
            makespan: SimTime::from_hours(1000),
            builds_started: 0,
            builds_aborted: 0,
            utilization: 0.0,
            infra_retries: 0,
            infra_backoff: sq_sim::SimDuration::ZERO,
            quarantined: Vec::new(),
            lean: None,
        }
    }

    #[test]
    fn empty_log_is_green() {
        let w = workload(10, 1);
        audit_green(&w, &result_with(&w, vec![])).unwrap();
    }

    #[test]
    fn intrinsically_broken_commit_is_red() {
        let w = workload(300, 2);
        let broken = w
            .changes
            .iter()
            .find(|c| !c.intrinsic_success)
            .expect("some change fails");
        let err = audit_green(&w, &result_with(&w, vec![broken.id])).unwrap_err();
        assert!(err.contains("fails its own build steps"));
    }

    #[test]
    fn conflicting_concurrent_commits_are_red() {
        let w = workload(3000, 3);
        let truth = w.truth();
        // Find a really-conflicting pair of individually-good changes.
        let mut found = None;
        'outer: for (i, a) in w.changes.iter().enumerate() {
            if !a.intrinsic_success {
                continue;
            }
            for b in &w.changes[i + 1..] {
                if b.intrinsic_success && truth.real_conflict(a, b) {
                    found = Some((a.id, b.id));
                    break 'outer;
                }
            }
        }
        let (a, b) = found.expect("workload contains a conflicting pair");
        // Committing both (with everything resolved after all arrivals,
        // so the windows overlap) must be flagged.
        let err = audit_green(&w, &result_with(&w, vec![a, b])).unwrap_err();
        assert!(err.contains("really conflicts"), "err = {err}");
    }

    #[test]
    fn committing_only_good_independent_changes_is_green() {
        let w = workload(500, 4);
        let truth = w.truth();
        // Greedily build a conflict-free prefix of good changes.
        let mut log: Vec<ChangeId> = Vec::new();
        for c in &w.changes {
            if !c.intrinsic_success {
                continue;
            }
            if log
                .iter()
                .all(|&d| !truth.real_conflict(c, &w.changes[d.0 as usize]))
            {
                log.push(c.id);
            }
            if log.len() >= 100 {
                break;
            }
        }
        audit_green(&w, &result_with(&w, log)).unwrap();
    }

    #[test]
    fn rejecting_a_good_unconflicted_change_fails_the_justification_audit() {
        let w = workload(50, 6);
        let good = w.changes.iter().filter(|c| c.intrinsic_success).count();
        assert!(good > 0, "workload has a passing change");
        // Nothing commits, so every intrinsically-good rejection is
        // unjustified (no conflicting landing can explain it).
        let err = audit_rejections_justified(&w, &result_with(&w, vec![])).unwrap_err();
        assert!(err.contains("wrongly rejected"), "err = {err}");
        // The counting form agrees with the all-or-nothing form.
        assert_eq!(
            count_wrongful_rejections(&w, &result_with(&w, vec![])),
            good
        );
    }

    #[test]
    fn rejecting_only_intrinsically_broken_changes_is_justified() {
        let w = workload(200, 7);
        let good: Vec<ChangeId> = w
            .changes
            .iter()
            .filter(|c| c.intrinsic_success)
            .map(|c| c.id)
            .collect();
        // Everything that passes alone commits; only broken changes are
        // rejected — all justified.
        audit_rejections_justified(&w, &result_with(&w, good)).unwrap();
    }

    #[test]
    fn recovery_report_surfaces_retries_and_quarantine() {
        let w = workload(10, 8);
        let mut r = result_with(&w, vec![]);
        assert_eq!(recovery_report(&r), "no infra faults observed");
        r.infra_retries = 3;
        r.infra_backoff = sq_sim::SimDuration::from_mins(2);
        r.quarantined = vec![ChangeId(5)];
        let report = recovery_report(&r);
        assert!(report.contains("3 infra-red"), "report = {report}");
        assert!(report.contains("C5"), "report = {report}");
    }

    #[test]
    fn count_red_commits_counts() {
        let w = workload(300, 5);
        let bad: Vec<ChangeId> = w
            .changes
            .iter()
            .filter(|c| !c.intrinsic_success)
            .take(3)
            .map(|c| c.id)
            .collect();
        assert!(count_red_commits(&w, &bad) >= 3);
        assert_eq!(count_red_commits(&w, &[]), 0);
    }
}
