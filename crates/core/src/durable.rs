//! Durable SubmitQueue: every externally visible state transition is
//! journaled to `sq-store` *before* it is acknowledged, so a process
//! death at any instant loses nothing that was acked and half-applies
//! nothing that was torn.
//!
//! The paper's SubmitQueue is a long-running service; its value is a
//! standing guarantee about mainline state, which a restart must not
//! void. This module wraps [`SubmitQueueService`] with:
//!
//! * [`ServiceEvent`] — the journal vocabulary: enqueue, speculation
//!   start/abort, build verdict, commit, reject, quarantine. One journal
//!   record carries one *batch* of events (a whole transition), so a
//!   torn append loses the transition atomically rather than leaving a
//!   half-recorded verdict.
//! * [`DurableState`] — the replayable mirror: the fold of all events,
//!   snapshotted between batches and reconstructed on open as
//!   `snapshot ⊕ journal suffix`.
//! * [`DurableSubmitQueue`] — the wrapper enforcing write-ahead order
//!   (journal, then apply, then ack) and recovering via
//!   [`SubmitQueueService::restore_from`].
//!
//! Crash consistency around the one external side effect — the VCS
//! commit — leans on idempotence rather than two-phase commit: if the
//! process dies after `commit_patch` but before the verdict batch is
//! journaled, recovery finds the change still pending and reprocesses
//! it; the rebase then absorbs the patch (it is already in HEAD), the
//! repository reports [`VcsError::EmptyCommit`](sq_vcs::VcsError), and
//! the service lands the ticket at the existing commit — converging to
//! byte-identical state with no double commit.

use crate::recovery::{RecoveryConfig, RecoveryEvent};
use crate::service::{StepAction, SubmitQueueService, TicketId, TicketState};
use parking_lot::Mutex;
use sq_obs::{JsonWriter, MetricsRegistry};
use sq_store::{
    CodecError, Decoder, DurableStore, DurableStoreConfig, Encoder, Recovery, Storage, StoreError,
    Wal,
};
use sq_vcs::{CommitId, FileOp, ObjectId, Patch, RepoPath, Repository};
use std::collections::{BTreeMap, VecDeque};

/// Outcome class of a speculation build, as journaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every affected step passed.
    Pass,
    /// A step failed: the change is at fault.
    Fail,
    /// Infrastructure failed: the change is not implicated.
    Infra,
}

impl Verdict {
    fn to_u8(self) -> u8 {
        match self {
            Verdict::Pass => 0,
            Verdict::Fail => 1,
            Verdict::Infra => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, CodecError> {
        match v {
            0 => Ok(Verdict::Pass),
            1 => Ok(Verdict::Fail),
            2 => Ok(Verdict::Infra),
            _ => Err(CodecError {
                what: "unknown verdict tag",
                offset: 0,
            }),
        }
    }
}

/// One journaled service event. The tags are the wire format — append
/// new variants with new tags, never renumber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceEvent {
    /// A change entered the queue (acked to the submitter only after
    /// this event is durable).
    Enqueue {
        /// Ticket id assigned to the change.
        ticket: u64,
        /// Submitting author.
        author: String,
        /// Change description.
        description: String,
        /// Mainline commit the patch was developed against.
        base: CommitId,
        /// The patch itself.
        patch: Patch,
    },
    /// The planner picked the change and started its speculation build.
    SpeculationStarted {
        /// The change being built.
        ticket: u64,
    },
    /// The speculation attempt ended without a terminal verdict (e.g.
    /// an infra-red build scheduled for rebuild); the change re-enters
    /// the queue.
    SpeculationAborted {
        /// The change whose attempt aborted.
        ticket: u64,
        /// Why (audit trail; not replayed into state).
        reason: String,
    },
    /// The build controller's verdict on the change.
    BuildVerdict {
        /// The change judged.
        ticket: u64,
        /// Pass / fail / infrastructure.
        verdict: Verdict,
        /// Failure detail (empty on pass).
        detail: String,
    },
    /// The change landed on mainline at `commit`.
    Committed {
        /// The landed change.
        ticket: u64,
        /// Its mainline commit.
        commit: CommitId,
    },
    /// The change was rejected.
    Rejected {
        /// The rejected change.
        ticket: u64,
        /// Human-readable reason.
        reason: String,
        /// True when infrastructure (not the change) was at fault.
        infra: bool,
    },
    /// A build target crossed the flake threshold and was quarantined.
    Quarantined {
        /// The chronically flaky target (canonical `//pkg:name` label).
        target: String,
        /// Infra faults observed on it when it crossed.
        observations: u32,
    },
}

/// Append a commit id to `enc` as a 32-byte length-prefixed blob.
/// Shared wire idiom between the journal events here and the
/// `sq-server` request protocol, so both layers refuse the same
/// malformed shapes.
pub fn encode_commit(enc: &mut Encoder, c: CommitId) {
    enc.put_bytes(c.0.as_bytes());
}

/// Inverse of [`encode_commit`]; refuses blobs that are not exactly 32
/// bytes.
pub fn decode_commit(dec: &mut Decoder<'_>) -> Result<CommitId, CodecError> {
    let raw = dec.bytes()?;
    let arr: [u8; 32] = raw.try_into().map_err(|_| CodecError {
        what: "commit id is not 32 bytes",
        offset: 0,
    })?;
    Ok(CommitId(ObjectId::from_raw(arr)))
}

/// Append a patch to `enc` as a tagged file-op list (also shared with
/// the `sq-server` wire protocol).
pub fn encode_patch(enc: &mut Encoder, patch: &Patch) {
    let ops: Vec<&FileOp> = patch.ops().collect();
    enc.put_u32(u32::try_from(ops.len()).expect("patch op count fits in u32"));
    for op in ops {
        match op {
            FileOp::Write { path, content } => {
                enc.put_u8(0);
                enc.put_str(path.as_str());
                enc.put_str(content);
            }
            FileOp::Delete { path } => {
                enc.put_u8(1);
                enc.put_str(path.as_str());
            }
        }
    }
}

/// Inverse of [`encode_patch`]; refuses unknown file-op tags and
/// invalid repo paths.
pub fn decode_patch(dec: &mut Decoder<'_>) -> Result<Patch, CodecError> {
    let bad_path = |_| CodecError {
        what: "invalid repo path in patch",
        offset: 0,
    };
    let n = dec.u32()?;
    let mut patch = Patch::new();
    for _ in 0..n {
        match dec.u8()? {
            0 => {
                let path = RepoPath::new(dec.str()?).map_err(bad_path)?;
                let content = dec.str()?.to_string();
                patch.push(FileOp::Write { path, content });
            }
            1 => {
                let path = RepoPath::new(dec.str()?).map_err(bad_path)?;
                patch.push(FileOp::Delete { path });
            }
            _ => {
                return Err(CodecError {
                    what: "unknown file-op tag",
                    offset: 0,
                })
            }
        }
    }
    Ok(patch)
}

impl ServiceEvent {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ServiceEvent::Enqueue {
                ticket,
                author,
                description,
                base,
                patch,
            } => {
                enc.put_u8(1);
                enc.put_u64(*ticket);
                enc.put_str(author);
                enc.put_str(description);
                encode_commit(enc, *base);
                encode_patch(enc, patch);
            }
            ServiceEvent::SpeculationStarted { ticket } => {
                enc.put_u8(2);
                enc.put_u64(*ticket);
            }
            ServiceEvent::SpeculationAborted { ticket, reason } => {
                enc.put_u8(3);
                enc.put_u64(*ticket);
                enc.put_str(reason);
            }
            ServiceEvent::BuildVerdict {
                ticket,
                verdict,
                detail,
            } => {
                enc.put_u8(4);
                enc.put_u64(*ticket);
                enc.put_u8(verdict.to_u8());
                enc.put_str(detail);
            }
            ServiceEvent::Committed { ticket, commit } => {
                enc.put_u8(5);
                enc.put_u64(*ticket);
                encode_commit(enc, *commit);
            }
            ServiceEvent::Rejected {
                ticket,
                reason,
                infra,
            } => {
                enc.put_u8(6);
                enc.put_u64(*ticket);
                enc.put_str(reason);
                enc.put_u8(u8::from(*infra));
            }
            ServiceEvent::Quarantined {
                target,
                observations,
            } => {
                enc.put_u8(7);
                enc.put_str(target);
                enc.put_u32(*observations);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.u8()? {
            1 => Ok(ServiceEvent::Enqueue {
                ticket: dec.u64()?,
                author: dec.str()?.to_string(),
                description: dec.str()?.to_string(),
                base: decode_commit(dec)?,
                patch: decode_patch(dec)?,
            }),
            2 => Ok(ServiceEvent::SpeculationStarted { ticket: dec.u64()? }),
            3 => Ok(ServiceEvent::SpeculationAborted {
                ticket: dec.u64()?,
                reason: dec.str()?.to_string(),
            }),
            4 => Ok(ServiceEvent::BuildVerdict {
                ticket: dec.u64()?,
                verdict: Verdict::from_u8(dec.u8()?)?,
                detail: dec.str()?.to_string(),
            }),
            5 => Ok(ServiceEvent::Committed {
                ticket: dec.u64()?,
                commit: decode_commit(dec)?,
            }),
            6 => Ok(ServiceEvent::Rejected {
                ticket: dec.u64()?,
                reason: dec.str()?.to_string(),
                infra: dec.u8()? != 0,
            }),
            7 => Ok(ServiceEvent::Quarantined {
                target: dec.str()?.to_string(),
                observations: dec.u32()?,
            }),
            _ => Err(CodecError {
                what: "unknown service-event tag",
                offset: 0,
            }),
        }
    }
}

/// Encode a batch of events as one journal-record payload (one state
/// transition = one record, so tearing is all-or-nothing).
pub fn encode_batch(events: &[ServiceEvent]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(u32::try_from(events.len()).expect("batch fits in u32"));
    for ev in events {
        ev.encode(&mut enc);
    }
    enc.finish()
}

/// Decode one journal-record payload back into its event batch.
pub fn decode_batch(payload: &[u8]) -> Result<Vec<ServiceEvent>, CodecError> {
    let mut dec = Decoder::new(payload);
    let n = dec.u32()?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(ServiceEvent::decode(&mut dec)?);
    }
    if !dec.is_empty() {
        return Err(CodecError {
            what: "trailing bytes after event batch",
            offset: 0,
        });
    }
    Ok(out)
}

/// A change as it sits in the durable queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedChange {
    /// Ticket id.
    pub ticket: u64,
    /// Submitting author.
    pub author: String,
    /// Change description.
    pub description: String,
    /// Base commit the patch was developed against.
    pub base: CommitId,
    /// The patch.
    pub patch: Patch,
}

/// The replayable mirror of [`SubmitQueueService`] state: the fold of
/// every [`ServiceEvent`] since the beginning of time. This is what
/// snapshots serialize and what recovery rebuilds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DurableState {
    /// Next ticket id to assign.
    pub next_ticket: u64,
    /// Pending changes in processing order.
    pub queue: VecDeque<QueuedChange>,
    /// Terminal and pending ticket states, by ticket id.
    pub states: BTreeMap<u64, TicketState>,
    /// Mainline head as of the last journaled commit (None before any).
    pub head: Option<CommitId>,
    /// Changes landed.
    pub landed: u64,
    /// Changes rejected (all reasons).
    pub rejected: u64,
    /// Changes rejected for infrastructure reasons (subset of
    /// `rejected`).
    pub infra_rejected: u64,
    /// Quarantined targets (canonical label → observations when
    /// quarantined).
    pub quarantined: BTreeMap<String, u32>,
}

impl DurableState {
    /// Fresh state: the fold over zero events.
    pub fn new() -> Self {
        DurableState {
            next_ticket: 1,
            ..DurableState::default()
        }
    }

    /// Fold one event into the state. Must stay deterministic: recovery
    /// replays exactly this function over the journal.
    pub fn apply(&mut self, event: &ServiceEvent) {
        match event {
            ServiceEvent::Enqueue {
                ticket,
                author,
                description,
                base,
                patch,
            } => {
                self.next_ticket = self.next_ticket.max(ticket + 1);
                self.states.insert(*ticket, TicketState::Queued);
                self.queue.push_back(QueuedChange {
                    ticket: *ticket,
                    author: author.clone(),
                    description: description.clone(),
                    base: *base,
                    patch: patch.clone(),
                });
            }
            // Audit-trail events: no durable-state effect. (An aborted
            // attempt leaves the change exactly where it was — the
            // mirror never removed it.)
            ServiceEvent::SpeculationStarted { .. }
            | ServiceEvent::SpeculationAborted { .. }
            | ServiceEvent::BuildVerdict { .. } => {}
            ServiceEvent::Committed { ticket, commit } => {
                self.queue.retain(|q| q.ticket != *ticket);
                self.states.insert(*ticket, TicketState::Landed(*commit));
                self.landed += 1;
                self.head = Some(*commit);
            }
            ServiceEvent::Rejected {
                ticket,
                reason,
                infra,
            } => {
                self.queue.retain(|q| q.ticket != *ticket);
                self.states
                    .insert(*ticket, TicketState::Rejected(reason.clone()));
                self.rejected += 1;
                if *infra {
                    self.infra_rejected += 1;
                }
            }
            ServiceEvent::Quarantined {
                target,
                observations,
            } => {
                self.quarantined.insert(target.clone(), *observations);
            }
        }
    }

    /// Serialize for a snapshot payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u64(self.next_ticket);
        enc.put_u64(self.landed);
        enc.put_u64(self.rejected);
        enc.put_u64(self.infra_rejected);
        match self.head {
            Some(c) => {
                enc.put_u8(1);
                encode_commit(&mut enc, c);
            }
            None => enc.put_u8(0),
        }
        enc.put_u32(u32::try_from(self.queue.len()).expect("queue fits in u32"));
        for q in &self.queue {
            enc.put_u64(q.ticket);
            enc.put_str(&q.author);
            enc.put_str(&q.description);
            encode_commit(&mut enc, q.base);
            encode_patch(&mut enc, &q.patch);
        }
        enc.put_u32(u32::try_from(self.states.len()).expect("states fit in u32"));
        for (ticket, state) in &self.states {
            enc.put_u64(*ticket);
            match state {
                TicketState::Queued => enc.put_u8(0),
                TicketState::Landed(c) => {
                    enc.put_u8(1);
                    encode_commit(&mut enc, *c);
                }
                TicketState::Rejected(reason) => {
                    enc.put_u8(2);
                    enc.put_str(reason);
                }
            }
        }
        enc.put_u32(u32::try_from(self.quarantined.len()).expect("quarantine fits in u32"));
        for (target, observations) in &self.quarantined {
            enc.put_str(target);
            enc.put_u32(*observations);
        }
        enc.finish()
    }

    /// Deserialize a snapshot payload.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(payload);
        let mut state = DurableState {
            next_ticket: dec.u64()?,
            landed: dec.u64()?,
            rejected: dec.u64()?,
            infra_rejected: dec.u64()?,
            ..DurableState::default()
        };
        if dec.u8()? == 1 {
            state.head = Some(decode_commit(&mut dec)?);
        }
        for _ in 0..dec.u32()? {
            state.queue.push_back(QueuedChange {
                ticket: dec.u64()?,
                author: dec.str()?.to_string(),
                description: dec.str()?.to_string(),
                base: decode_commit(&mut dec)?,
                patch: decode_patch(&mut dec)?,
            });
        }
        for _ in 0..dec.u32()? {
            let ticket = dec.u64()?;
            let ts = match dec.u8()? {
                0 => TicketState::Queued,
                1 => TicketState::Landed(decode_commit(&mut dec)?),
                2 => TicketState::Rejected(dec.str()?.to_string()),
                _ => {
                    return Err(CodecError {
                        what: "unknown ticket-state tag",
                        offset: 0,
                    })
                }
            };
            state.states.insert(ticket, ts);
        }
        for _ in 0..dec.u32()? {
            let target = dec.str()?.to_string();
            let observations = dec.u32()?;
            state.quarantined.insert(target, observations);
        }
        if !dec.is_empty() {
            return Err(CodecError {
                what: "trailing bytes after durable state",
                offset: 0,
            });
        }
        Ok(state)
    }

    /// Deterministic sorted-key JSON export, for byte-exact comparison
    /// of recovered state against an uncrashed run.
    pub fn export_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("head");
        match self.head {
            Some(c) => w.value_str(&c.0.to_hex()),
            None => w.value_null(),
        }
        w.field_u64("infra_rejected", self.infra_rejected);
        w.field_u64("landed", self.landed);
        w.field_u64("next_ticket", self.next_ticket);
        w.key("queue");
        w.begin_array();
        for q in &self.queue {
            w.begin_object();
            w.field_str("author", &q.author);
            w.field_str("base", &q.base.0.to_hex());
            w.field_str("description", &q.description);
            w.key("ops");
            w.begin_array();
            for op in q.patch.ops() {
                w.begin_object();
                match op {
                    FileOp::Write { path, content } => {
                        w.field_str("content", content);
                        w.field_str("kind", "write");
                        w.field_str("path", path.as_str());
                    }
                    FileOp::Delete { path } => {
                        w.field_str("kind", "delete");
                        w.field_str("path", path.as_str());
                    }
                }
                w.end_object();
            }
            w.end_array();
            w.field_u64("ticket", q.ticket);
            w.end_object();
        }
        w.end_array();
        w.key("quarantined");
        w.begin_object();
        for (target, observations) in &self.quarantined {
            w.field_u64(target, u64::from(*observations));
        }
        w.end_object();
        w.field_u64("rejected", self.rejected);
        w.key("states");
        w.begin_object();
        for (ticket, state) in &self.states {
            w.key(&ticket.to_string());
            w.begin_object();
            match state {
                TicketState::Queued => w.field_str("state", "queued"),
                TicketState::Landed(c) => {
                    w.field_str("commit", &c.0.to_hex());
                    w.field_str("state", "landed");
                }
                TicketState::Rejected(reason) => {
                    w.field_str("reason", reason);
                    w.field_str("state", "rejected");
                }
            }
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

fn corrupt_snapshot(e: CodecError) -> StoreError {
    StoreError::CorruptSnapshot {
        detail: format!("undecodable durable state: {e}"),
    }
}

fn corrupt_record(e: CodecError) -> StoreError {
    StoreError::CorruptJournal {
        offset: 0,
        detail: format!("undecodable event batch: {e}"),
    }
}

pub(crate) struct StoreCtx<W: Wal> {
    pub(crate) store: W,
    pub(crate) state: DurableState,
    /// How much of the inner service's recovery log has already been
    /// mapped to journal events.
    log_cursor: usize,
}

impl<W: Wal> StoreCtx<W> {
    /// Journal a batch (write-ahead), then fold it into the mirror.
    fn journal(&mut self, batch: &[ServiceEvent]) -> Result<(), StoreError> {
        self.store.append(&encode_batch(batch))?;
        for ev in batch {
            self.state.apply(ev);
        }
        Ok(())
    }

    fn maybe_snapshot(&mut self) -> Result<(), StoreError> {
        if self.store.should_snapshot() {
            self.store.write_snapshot(&self.state.encode())?;
        }
        Ok(())
    }
}

/// [`SubmitQueueService`] with its state journaled through any
/// [`Wal`] — the single-node [`DurableStore`] or the replicating
/// [`Leader`](sq_store::Leader): submissions are acked only once
/// durable per the WAL's ack discipline, and [`DurableSubmitQueue::open`]
/// (or [`failover::promote_from_follower`](crate::failover)) reconstructs
/// the exact acknowledged state after a crash.
///
/// Every mutating call returns `Result`: a [`StoreError`] means the
/// backing medium failed (or, under fault injection, the simulated
/// process died) and the handle must be abandoned — reopen to recover.
/// A [`StoreError::Fenced`] additionally means a newer leader exists
/// and this node must never serve again under its current epoch.
pub struct DurableSubmitQueue<W: Wal> {
    service: SubmitQueueService,
    pub(crate) ctx: Mutex<StoreCtx<W>>,
}

impl<S: Storage> DurableSubmitQueue<DurableStore<S>> {
    /// Open the durable service: recover `snapshot ⊕ journal suffix`
    /// from `storage`, then restore the in-memory service to exactly
    /// that state over `repo` (the VCS is the system of record for
    /// commits and survives independently of this store).
    pub fn open(
        repo: Repository,
        threads: usize,
        recovery: RecoveryConfig,
        storage: S,
        config: DurableStoreConfig,
    ) -> Result<Self, StoreError> {
        let (store, recovered) = DurableStore::open(storage, config)?;
        Self::from_recovered(repo, threads, recovery, store, &recovered)
    }
}

impl<W: Wal> DurableSubmitQueue<W> {
    /// Rebuild the mirror from a recovery (`snapshot ⊕ journal suffix`)
    /// and restore the in-memory service to exactly that state — the
    /// shared tail of every open path (single-node, leader, promotion).
    pub(crate) fn from_recovered(
        repo: Repository,
        threads: usize,
        recovery: RecoveryConfig,
        store: W,
        recovered: &Recovery,
    ) -> Result<Self, StoreError> {
        let mut state = match &recovered.snapshot {
            Some(payload) => DurableState::decode(payload).map_err(corrupt_snapshot)?,
            None => DurableState::new(),
        };
        for payload in &recovered.events {
            for ev in decode_batch(payload).map_err(corrupt_record)? {
                state.apply(&ev);
            }
        }
        let service = SubmitQueueService::with_recovery(repo, threads, recovery);
        service.restore_from(&state);
        Ok(DurableSubmitQueue {
            service,
            ctx: Mutex::new(StoreCtx {
                store,
                state,
                log_cursor: 0,
            }),
        })
    }

    /// Submit a change. The returned ticket is the durable ack: the
    /// enqueue event is journaled and synced before this returns.
    pub fn submit(
        &self,
        author: impl Into<String>,
        description: impl Into<String>,
        base: CommitId,
        patch: Patch,
    ) -> Result<TicketId, StoreError> {
        let (author, description) = (author.into(), description.into());
        let mut ctx = self.ctx.lock();
        let ticket = ctx.state.next_ticket;
        ctx.journal(&[ServiceEvent::Enqueue {
            ticket,
            author: author.clone(),
            description: description.clone(),
            base,
            patch: patch.clone(),
        }])?;
        let acked = self.service.submit(author, description, base, patch);
        assert_eq!(acked.0, ticket, "service and mirror ticket ids in lockstep");
        ctx.maybe_snapshot()?;
        Ok(acked)
    }

    /// Process one queued change end to end, journaling the speculation
    /// start before the build and the terminal verdict after it.
    /// Returns the ticket handled, or `None` on an empty queue.
    pub fn process_next(&self, action: &StepAction) -> Result<Option<TicketId>, StoreError> {
        let mut ctx = self.ctx.lock();
        let Some(ticket) = ctx.state.queue.front().map(|q| q.ticket) else {
            return Ok(None);
        };
        ctx.journal(&[ServiceEvent::SpeculationStarted { ticket }])?;
        let processed = self.service.process_next(action);
        assert_eq!(
            processed,
            Some(TicketId(ticket)),
            "service and mirror queue fronts in lockstep"
        );

        // Map the service's recovery decisions (made during this build)
        // into journal events, then the terminal outcome.
        let mut batch = Vec::new();
        let mut infra = false;
        let log = self.service.recovery_log();
        for ev in &log[ctx.log_cursor..] {
            match ev {
                RecoveryEvent::Rebuild { attempt, fault, .. } => {
                    batch.push(ServiceEvent::SpeculationAborted {
                        ticket,
                        reason: format!("infra-red build; rebuild #{attempt} after {fault}"),
                    });
                }
                RecoveryEvent::Quarantined {
                    target,
                    observations,
                } => batch.push(ServiceEvent::Quarantined {
                    target: target.clone(),
                    observations: *observations,
                }),
                RecoveryEvent::InfraRejected { .. } => infra = true,
                RecoveryEvent::StepRetries { .. } => {}
            }
        }
        ctx.log_cursor = log.len();
        match self.service.status(TicketId(ticket)) {
            Some(TicketState::Landed(commit)) => {
                batch.push(ServiceEvent::BuildVerdict {
                    ticket,
                    verdict: Verdict::Pass,
                    detail: String::new(),
                });
                batch.push(ServiceEvent::Committed { ticket, commit });
            }
            Some(TicketState::Rejected(reason)) => {
                batch.push(ServiceEvent::BuildVerdict {
                    ticket,
                    verdict: if infra { Verdict::Infra } else { Verdict::Fail },
                    detail: reason.clone(),
                });
                batch.push(ServiceEvent::Rejected {
                    ticket,
                    reason,
                    infra,
                });
            }
            // Still queued: an infra-red rebuild re-queued the change;
            // the abort event above is the whole story.
            Some(TicketState::Queued) | None => {}
        }
        ctx.journal(&batch)?;
        ctx.maybe_snapshot()?;
        Ok(Some(TicketId(ticket)))
    }

    /// Drain the queue. Returns how many process steps ran.
    pub fn run_until_idle(&self, action: &StepAction) -> Result<usize, StoreError> {
        let mut processed = 0;
        while self.process_next(action)?.is_some() {
            processed += 1;
        }
        Ok(processed)
    }

    /// The state of a change.
    pub fn status(&self, ticket: TicketId) -> Option<TicketState> {
        self.service.status(ticket)
    }

    /// Number of changes waiting in the speculation queue (acked but
    /// not yet landed or rejected). The serving layer uses this as its
    /// admission-control signal: past a configured bound it answers
    /// `Busy` instead of journaling another enqueue.
    pub fn queue_depth(&self) -> usize {
        self.ctx.lock().state.queue.len()
    }

    /// Per-shard view of the speculation queue: queued submissions
    /// grouped by the top-level directory their patch touches — the
    /// serving layer's approximation of the planner's part → shard
    /// routing. A submission whose ops span several top-level
    /// directories has a cross-shard footprint and groups under
    /// `"(cross)"`; an empty patch groups under `"(none)"`; a file at
    /// the repository root counts as its own directory. Keys are sorted,
    /// so the export is deterministic.
    pub fn queue_depth_by_dir(&self) -> Vec<(String, usize)> {
        let ctx = self.ctx.lock();
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for q in &ctx.state.queue {
            let mut dirs: std::collections::BTreeSet<&str> = Default::default();
            for op in q.patch.ops() {
                let path = op.path();
                dirs.insert(path.components().next().unwrap_or(path.as_str()));
            }
            let key = match dirs.len() {
                0 => "(none)".to_string(),
                1 => dirs.into_iter().next().unwrap().to_string(),
                _ => "(cross)".to_string(),
            };
            *counts.entry(key).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Assert that every ticket state in the durable mirror matches the
    /// live service — the lockstep invariant failover re-checks before
    /// a promoted replica serves. (Head equality is deliberately NOT
    /// asserted: after a crash between the VCS commit and the verdict
    /// journal, the repository is legitimately one commit ahead of the
    /// mirror until recovery reprocesses the pending change.)
    pub fn assert_mirror_lockstep(&self) {
        let ctx = self.ctx.lock();
        for (ticket, state) in &ctx.state.states {
            assert_eq!(
                self.service.status(TicketId(*ticket)).as_ref(),
                Some(state),
                "mirror and service disagree on ticket {ticket}"
            );
        }
    }

    /// Current mainline HEAD.
    pub fn head(&self) -> CommitId {
        self.service.head()
    }

    /// The wrapped service (read-only access to stats, audit log,
    /// history verification).
    pub fn service(&self) -> &SubmitQueueService {
        &self.service
    }

    /// A clone of the underlying repository. The VCS is external state:
    /// a crash-recovery harness extracts it from a dead handle the way
    /// a real deployment's repository survives a service restart.
    pub fn repository(&self) -> Repository {
        self.service.repository()
    }

    /// Deterministic sorted-key JSON export of the durable mirror, for
    /// byte-exact state comparison across crash/recovery boundaries.
    pub fn export_state_json(&self) -> String {
        self.ctx.lock().state.export_json()
    }

    /// Storage-layer counters (appends, fsyncs, snapshots, replay).
    pub fn store_stats(&self) -> sq_store::StoreStats {
        *self.ctx.lock().store.stats()
    }

    /// Record storage counters and recovery gauges into a metrics
    /// registry (under `store.*`). `StoreStats` carries cumulative
    /// lifetime totals, so counters are reconciled via
    /// [`MetricsRegistry::record_total`] and the point-in-time values
    /// (last snapshot size, recovery replay cost) are gauges — the
    /// export is idempotent under the periodic re-export a serving
    /// process performs.
    pub fn record_into(&self, metrics: &mut MetricsRegistry) {
        let st = self.store_stats();
        metrics.record_total("store.journal.appends", st.appends);
        metrics.record_total("store.journal.appended_bytes", st.appended_bytes);
        metrics.record_total("store.journal.fsyncs", st.fsyncs);
        metrics.record_total("store.snapshot.writes", st.snapshots);
        metrics.record_total("store.recovery.replayed_records", st.replayed_records);
        metrics.record_total(
            "store.recovery.truncated_tail_bytes",
            st.truncated_tail_bytes,
        );
        metrics.set_gauge("store.snapshot.bytes", st.last_snapshot_bytes as f64);
        metrics.set_gauge("store.recovery.replay_micros", st.replay_micros as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_exec::StepOutcome;
    use sq_store::{CrashKind, CrashPlan, MemStorage};
    use std::sync::{Arc, Mutex as StdMutex};

    type Shared = Arc<StdMutex<MemStorage>>;

    fn shared(plan: CrashPlan) -> Shared {
        Arc::new(StdMutex::new(MemStorage::with_crashes(plan)))
    }

    fn always_pass() -> Box<StepAction> {
        Box::new(|_step, _tree| StepOutcome::Success)
    }

    fn demo_repo() -> Repository {
        Repository::init([
            ("lib/BUILD", "library(name = \"lib\", srcs = [\"l.rs\"])"),
            ("lib/l.rs", "pub fn l() {}"),
        ])
        .unwrap()
    }

    fn open(repo: Repository, storage: &Shared) -> DurableSubmitQueue<DurableStore<Shared>> {
        DurableSubmitQueue::open(
            repo,
            2,
            RecoveryConfig::disabled(),
            storage.clone(),
            DurableStoreConfig::default(),
        )
        .unwrap()
    }

    fn lib_patch(v: u32) -> Patch {
        Patch::write(
            RepoPath::new("lib/l.rs").unwrap(),
            format!("pub fn l() {{ /* v{v} */ }}"),
        )
    }

    #[test]
    fn event_batches_round_trip() {
        let events = vec![
            ServiceEvent::Enqueue {
                ticket: 1,
                author: "alice".into(),
                description: "desc with \"quotes\"".into(),
                base: CommitId(ObjectId::from_raw([7; 32])),
                patch: Patch::from_ops([
                    FileOp::Write {
                        path: RepoPath::new("a/b.rs").unwrap(),
                        content: "content\nlines".into(),
                    },
                    FileOp::Delete {
                        path: RepoPath::new("c/d.rs").unwrap(),
                    },
                ]),
            },
            ServiceEvent::SpeculationStarted { ticket: 1 },
            ServiceEvent::SpeculationAborted {
                ticket: 1,
                reason: "why".into(),
            },
            ServiceEvent::BuildVerdict {
                ticket: 1,
                verdict: Verdict::Infra,
                detail: "timeout".into(),
            },
            ServiceEvent::Committed {
                ticket: 1,
                commit: CommitId(ObjectId::from_raw([9; 32])),
            },
            ServiceEvent::Rejected {
                ticket: 2,
                reason: "red".into(),
                infra: false,
            },
            ServiceEvent::Quarantined {
                target: "//lib:lib".into(),
                observations: 3,
            },
        ];
        assert_eq!(decode_batch(&encode_batch(&events)).unwrap(), events);
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap(), vec![]);
    }

    #[test]
    fn durable_state_round_trips_through_snapshot_encoding() {
        let mut state = DurableState::new();
        state.apply(&ServiceEvent::Enqueue {
            ticket: 1,
            author: "alice".into(),
            description: "one".into(),
            base: CommitId(ObjectId::from_raw([1; 32])),
            patch: lib_patch(1),
        });
        state.apply(&ServiceEvent::Committed {
            ticket: 1,
            commit: CommitId(ObjectId::from_raw([2; 32])),
        });
        state.apply(&ServiceEvent::Enqueue {
            ticket: 2,
            author: "bob".into(),
            description: "two".into(),
            base: CommitId(ObjectId::from_raw([2; 32])),
            patch: lib_patch(2),
        });
        state.apply(&ServiceEvent::Quarantined {
            target: "//lib:lib".into(),
            observations: 4,
        });
        let decoded = DurableState::decode(&state.encode()).unwrap();
        assert_eq!(decoded, state);
        assert_eq!(decoded.export_json(), state.export_json());
    }

    #[test]
    fn lands_and_survives_clean_reopen() {
        let storage = shared(CrashPlan::none());
        let dq = open(demo_repo(), &storage);
        let t = dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        dq.run_until_idle(&always_pass()).unwrap();
        assert!(matches!(dq.status(t), Some(TicketState::Landed(_))));
        let exported = dq.export_state_json();
        let repo = dq.repository();
        drop(dq);
        let dq2 = open(repo, &storage);
        assert_eq!(dq2.export_state_json(), exported);
        assert!(matches!(dq2.status(t), Some(TicketState::Landed(_))));
    }

    #[test]
    fn queued_submission_survives_reopen_and_lands() {
        let storage = shared(CrashPlan::none());
        let dq = open(demo_repo(), &storage);
        let t = dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        // Simulated death before processing; the enqueue was acked.
        let repo = dq.repository();
        drop(dq);
        let dq2 = open(repo, &storage);
        assert_eq!(dq2.status(t), Some(TicketState::Queued));
        dq2.run_until_idle(&always_pass()).unwrap();
        match dq2.status(t) {
            Some(TicketState::Landed(c)) => assert_eq!(dq2.head(), c),
            other => panic!("expected landed, got {other:?}"),
        }
    }

    // Mutating-op ordinals on a fresh store, first submission:
    //   0 = journal magic append, 1 = Enqueue append,
    //   2 = SpeculationStarted append, 3 = verdict-batch append.

    #[test]
    fn crash_between_commit_and_journal_does_not_double_commit() {
        // The build commits to the repo, then the verdict append (op 3)
        // tears: the journal says "still pending" while the VCS has the
        // commit. Recovery must converge without a second commit.
        let storage = shared(CrashPlan::at_op(3, CrashKind::Torn));
        let dq = open(demo_repo(), &storage);
        let t = dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        let err = dq.process_next(&always_pass()).unwrap_err();
        assert!(matches!(err, StoreError::Crashed { .. }));
        let repo = dq.repository();
        let commits_before = repo.log(repo.head()).unwrap().len();
        drop(dq);
        storage.lock().unwrap().revive();
        let dq2 = open(repo, &storage);
        assert_eq!(dq2.status(t), Some(TicketState::Queued));
        dq2.run_until_idle(&always_pass()).unwrap();
        match dq2.status(t) {
            // EmptyCommit path: landed at the existing commit.
            Some(TicketState::Landed(c)) => assert_eq!(c, dq2.head()),
            other => panic!("expected landed, got {other:?}"),
        }
        let repo2 = dq2.repository();
        assert_eq!(
            repo2.log(repo2.head()).unwrap().len(),
            commits_before,
            "recovery must not create a second commit"
        );
    }

    #[test]
    fn after_write_crash_on_verdict_preserves_the_landing() {
        // The verdict batch reaches the medium but the ack is lost:
        // recovery must see the change as landed, not reprocess it.
        let storage = shared(CrashPlan::at_op(3, CrashKind::AfterWrite));
        let dq = open(demo_repo(), &storage);
        let t = dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        assert!(dq.process_next(&always_pass()).is_err());
        let repo = dq.repository();
        drop(dq);
        storage.lock().unwrap().revive();
        let dq2 = open(repo, &storage);
        assert!(matches!(dq2.status(t), Some(TicketState::Landed(_))));
        // Nothing left to do.
        assert!(dq2.process_next(&always_pass()).unwrap().is_none());
    }

    #[test]
    fn torn_enqueue_is_not_acked_and_not_recovered() {
        let storage = shared(CrashPlan::at_op(1, CrashKind::Torn));
        let dq = open(demo_repo(), &storage);
        let err = dq
            .submit("alice", "v1", dq.head(), lib_patch(1))
            .unwrap_err();
        assert!(matches!(err, StoreError::Crashed { .. }));
        let repo = dq.repository();
        drop(dq);
        storage.lock().unwrap().revive();
        let dq2 = open(repo, &storage);
        // The un-acked enqueue vanished with the torn tail; a resubmit
        // deterministically reuses the ticket id.
        assert!(dq2.process_next(&always_pass()).unwrap().is_none());
        let t = dq2.submit("alice", "v1", dq2.head(), lib_patch(1)).unwrap();
        assert_eq!(t, TicketId(1));
    }

    #[test]
    fn after_write_crash_on_enqueue_preserves_the_submission() {
        let storage = shared(CrashPlan::at_op(1, CrashKind::AfterWrite));
        let dq = open(demo_repo(), &storage);
        assert!(dq.submit("alice", "v1", dq.head(), lib_patch(1)).is_err());
        let repo = dq.repository();
        drop(dq);
        storage.lock().unwrap().revive();
        let dq2 = open(repo, &storage);
        // Journaled-but-unacked: the submission IS durable.
        assert_eq!(dq2.status(TicketId(1)), Some(TicketState::Queued));
        dq2.run_until_idle(&always_pass()).unwrap();
        assert!(matches!(
            dq2.status(TicketId(1)),
            Some(TicketState::Landed(_))
        ));
    }

    #[test]
    fn snapshot_cadence_compacts_and_recovery_matches() {
        let storage = shared(CrashPlan::none());
        let dq = DurableSubmitQueue::open(
            demo_repo(),
            2,
            RecoveryConfig::disabled(),
            storage.clone(),
            DurableStoreConfig::with_snapshot_every(3),
        )
        .unwrap();
        for v in 0..4 {
            dq.submit("alice", format!("v{v}"), dq.head(), lib_patch(v))
                .unwrap();
            dq.run_until_idle(&always_pass()).unwrap();
        }
        assert!(dq.store_stats().snapshots >= 1);
        let exported = dq.export_state_json();
        let repo = dq.repository();
        drop(dq);
        let dq2 = open(repo, &storage);
        assert_eq!(dq2.export_state_json(), exported);
    }

    #[test]
    fn metrics_recording_exposes_store_counters() {
        let storage = shared(CrashPlan::none());
        let dq = open(demo_repo(), &storage);
        dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        dq.run_until_idle(&always_pass()).unwrap();
        let mut metrics = MetricsRegistry::new();
        dq.record_into(&mut metrics);
        assert!(metrics.counter("store.journal.appends") >= 2);
        assert!(metrics.counter("store.journal.fsyncs") >= 2);
        assert!(metrics.gauge("store.recovery.replay_micros").is_some());
    }

    #[test]
    fn store_export_is_idempotent_across_repeated_exports() {
        // Regression for the cumulative-total-into-counter bug class:
        // exporting the same StoreStats snapshot twice must report the
        // same values as exporting it once.
        let storage = shared(CrashPlan::none());
        let dq = open(demo_repo(), &storage);
        dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        dq.run_until_idle(&always_pass()).unwrap();
        sq_obs::assert_idempotent_export(|m| dq.record_into(m));
    }
}
