//! The incremental conflict index: memoized per-change affected bitsets
//! plus a parallel pairwise conflict matrix.
//!
//! The planner re-examines the pending window on every epoch; without an
//! index that means recomputing each change's affected set — and every
//! pairwise intersection — from scratch each round. The index caches one
//! [`BitSet`] per change, keyed by `(change id, trunk hash)`:
//!
//! * a **hit** returns the cached bitset untouched;
//! * the entry is invalidated only when the **trunk advances** (an entry
//!   computed against an older trunk is stale by definition — affected
//!   sets are relative to mainline) or when the change itself is
//!   **rebased** ([`ConflictIndex::invalidate`]) or resolved
//!   ([`ConflictIndex::forget`]).
//!
//! Pairwise decisions are then word-wise ANDs ([`ConflictIndex::pair_conflict`]),
//! and whole-window matrices can be computed serially or in parallel
//! across the vendored `crossbeam` scoped threads. **Determinism:** the
//! matrix is partitioned by *row* (change-id order), each worker fills
//! word-disjoint rows of the output, and workers are joined in partition
//! order — so the resulting [`ConflictMatrix`] is byte-identical to the
//! serial one regardless of thread count or interleaving. The only
//! nondeterministic quantity is wall time, which is accumulated in
//! [`IndexStats::parallel_nanos`] and **never** fed back into any
//! decision; in simulation runs the parallel batch path is not exercised
//! at all, so `analyzer.parallel_ms` exports as a constant 0 and
//! same-seed runs stay byte-identical (asserted by
//! `planner::tests::observed_runs_are_unperturbed_and_export_identical_json`).

use sq_build::BitSet;
use sq_obs::MetricsRegistry;
use sq_workload::ChangeId;
use std::collections::HashMap;

/// Identifies the mainline snapshot an affected bitset was computed
/// against. Any advance invalidates every cached entry (lazily).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrunkHash(pub u64);

/// Counters the index accumulates; exported as `analyzer.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Bitset lookups served from cache.
    pub cache_hits: u64,
    /// Bitset lookups that had to (re)compute: first sight, trunk
    /// advance, or rebase.
    pub cache_misses: u64,
    /// Pairwise conflict decisions made.
    pub pairs_checked: u64,
    /// Wall time spent inside parallel matrix batches. Never influences
    /// any decision; deterministically 0 when no batch ran.
    pub parallel_nanos: u64,
}

impl IndexStats {
    /// Export as `analyzer.*` counters plus the `analyzer.parallel_ms`
    /// gauge. Safe to call with a same-seed-deterministic registry: all
    /// exported values are pure functions of the queries made, except
    /// `parallel_ms`, which is 0 unless a parallel batch actually ran.
    /// Counters reconcile via
    /// [`record_total`](MetricsRegistry::record_total): the fields are
    /// cumulative lifetime totals, so re-exporting the same snapshot
    /// periodically must not double-count.
    pub fn record_into(&self, metrics: &mut MetricsRegistry) {
        metrics.record_total("analyzer.cache_hits", self.cache_hits);
        metrics.record_total("analyzer.cache_misses", self.cache_misses);
        metrics.record_total("analyzer.pairs_checked", self.pairs_checked);
        metrics.set_gauge("analyzer.parallel_ms", self.parallel_nanos as f64 / 1e6);
    }
}

#[derive(Debug, Clone)]
struct Entry {
    trunk: TrunkHash,
    bits: BitSet,
}

/// Memoized per-change affected bitsets keyed by `(change, trunk)`.
#[derive(Debug, Clone)]
pub struct ConflictIndex {
    trunk: TrunkHash,
    entries: HashMap<ChangeId, Entry>,
    stats: IndexStats,
}

impl ConflictIndex {
    /// An empty index against `trunk`.
    pub fn new(trunk: TrunkHash) -> Self {
        ConflictIndex {
            trunk,
            entries: HashMap::new(),
            stats: IndexStats::default(),
        }
    }

    /// The trunk entries are currently valid against.
    pub fn trunk(&self) -> TrunkHash {
        self.trunk
    }

    /// Advance the trunk. Entries computed against the old trunk stay in
    /// the map but are *stale*: the next [`ConflictIndex::ensure_with`]
    /// for that change recomputes (lazy invalidation — no O(n) sweep on
    /// every commit).
    pub fn advance_trunk(&mut self, trunk: TrunkHash) {
        self.trunk = trunk;
    }

    /// Invalidate one change's entry (it was rebased: same id, new
    /// content — the cached bitset no longer describes it).
    pub fn invalidate(&mut self, id: ChangeId) {
        self.entries.remove(&id);
    }

    /// Drop a resolved change's entry for good.
    pub fn forget(&mut self, id: ChangeId) {
        self.entries.remove(&id);
    }

    /// The change's affected bitset, recomputing via `compute` only on a
    /// miss (first sight, stale trunk, or post-rebase).
    pub fn ensure_with(&mut self, id: ChangeId, compute: impl FnOnce() -> BitSet) -> &BitSet {
        let fresh = self.entries.get(&id).is_some_and(|e| e.trunk == self.trunk);
        if fresh {
            self.stats.cache_hits += 1;
        } else {
            self.stats.cache_misses += 1;
            self.entries.insert(
                id,
                Entry {
                    trunk: self.trunk,
                    bits: compute(),
                },
            );
        }
        &self.entries[&id].bits
    }

    /// The cached bitset, if present and computed against the current
    /// trunk.
    pub fn bits(&self, id: ChangeId) -> Option<&BitSet> {
        self.entries
            .get(&id)
            .filter(|e| e.trunk == self.trunk)
            .map(|e| &e.bits)
    }

    /// Pairwise decision from the cached bitsets: word-wise AND. Both
    /// entries must be fresh (ensure first); a missing entry is treated
    /// as conflicting — conservative, never parallel-commit something the
    /// index cannot see.
    pub fn pair_conflict(&mut self, a: ChangeId, b: ChangeId) -> bool {
        self.stats.pairs_checked += 1;
        match (self.bits(a), self.bits(b)) {
            (Some(ba), Some(bb)) => ba.intersects(bb),
            _ => true,
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The full pairwise matrix over `ids`, serially. Every id must have
    /// been [`ConflictIndex::ensure_with`]'d against the current trunk.
    pub fn matrix_serial(&mut self, ids: &[ChangeId]) -> ConflictMatrix {
        let n = ids.len();
        let bits: Vec<&BitSet> = ids
            .iter()
            .map(|&id| self.bits(id).expect("matrix over ensured entries"))
            .collect();
        let mut m = ConflictMatrix::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if bits[i].intersects(bits[j]) {
                    m.set(i, j);
                }
            }
        }
        self.stats.pairs_checked += (n * n.saturating_sub(1) / 2) as u64;
        m
    }

    /// The same matrix, with rows partitioned across `threads` scoped
    /// worker threads. Each worker fills a contiguous, word-disjoint
    /// block of rows and workers are joined in partition order, so the
    /// result is byte-identical to [`ConflictIndex::matrix_serial`]
    /// whatever the interleaving. Wall time lands in
    /// [`IndexStats::parallel_nanos`] only.
    pub fn matrix_parallel(&mut self, ids: &[ChangeId], threads: usize) -> ConflictMatrix {
        let n = ids.len();
        let threads = threads.clamp(1, n.max(1));
        let bits: Vec<&BitSet> = ids
            .iter()
            .map(|&id| self.bits(id).expect("matrix over ensured entries"))
            .collect();
        let start = std::time::Instant::now();
        let mut m = ConflictMatrix::new(n);
        let wpr = m.words_per_row;
        let chunk_rows = n.div_ceil(threads);
        let bits = &bits;
        let row_blocks: Vec<Vec<u64>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = (t * chunk_rows).min(n);
                    let hi = ((t + 1) * chunk_rows).min(n);
                    scope.spawn(move |_| {
                        let mut block = vec![0u64; hi.saturating_sub(lo) * wpr];
                        for i in lo..hi {
                            for j in (i + 1)..n {
                                if bits[i].intersects(bits[j]) {
                                    block[(i - lo) * wpr + j / 64] |= 1u64 << (j % 64);
                                }
                            }
                        }
                        block
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("matrix worker panicked"))
                .collect()
        })
        .expect("matrix scope panicked");
        // Merge in partition (= row, = change-id) order: deterministic.
        for (t, block) in row_blocks.into_iter().enumerate() {
            if block.is_empty() {
                continue;
            }
            let lo = t * chunk_rows;
            m.words[lo * wpr..lo * wpr + block.len()].copy_from_slice(&block);
        }
        self.stats.pairs_checked += (n * n.saturating_sub(1) / 2) as u64;
        self.stats.parallel_nanos += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        m
    }
}

/// A symmetric pairwise conflict matrix over a window of n changes,
/// stored as the strict upper triangle in row-major, word-padded rows
/// (so parallel row writers touch disjoint words).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictMatrix {
    n: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl ConflictMatrix {
    /// An all-independent matrix over `n` changes.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        ConflictMatrix {
            n,
            words_per_row,
            words: vec![0; n * words_per_row],
        }
    }

    /// Window size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the window is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mark the pair `(i, j)` with `i < j` as conflicting.
    pub fn set(&mut self, i: usize, j: usize) {
        debug_assert!(i < j && j < self.n);
        self.words[i * self.words_per_row + j / 64] |= 1u64 << (j % 64);
    }

    /// Whether changes `i` and `j` conflict (symmetric; `i == j` is
    /// false by convention).
    pub fn get(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.words[i * self.words_per_row + j / 64] & (1u64 << (j % 64)) != 0
    }

    /// Number of conflicting pairs.
    pub fn conflict_count(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Canonical byte serialization: the window size followed by the
    /// packed rows, little-endian. Two matrices over the same window are
    /// equal iff their bytes are equal — this is what the benchmark's
    /// cross-mode determinism gate compares.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.words.len() * 8);
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<ChangeId> {
        (0..n).map(ChangeId).collect()
    }

    /// Change k's bitset: parts {k, k+1} — consecutive ids conflict.
    fn chain_bits(id: ChangeId) -> BitSet {
        [id.0 as u32, id.0 as u32 + 1].into_iter().collect()
    }

    fn ensured_index(n: u64) -> ConflictIndex {
        let mut ix = ConflictIndex::new(TrunkHash(1));
        for id in ids(n) {
            ix.ensure_with(id, || chain_bits(id));
        }
        ix
    }

    #[test]
    fn hits_and_misses_follow_the_invalidation_rule() {
        let mut ix = ConflictIndex::new(TrunkHash(1));
        let a = ChangeId(7);
        ix.ensure_with(a, || chain_bits(a));
        ix.ensure_with(a, || panic!("second lookup must hit"));
        assert_eq!((ix.stats().cache_hits, ix.stats().cache_misses), (1, 1));

        // Trunk advance: stale, recompute.
        ix.advance_trunk(TrunkHash(2));
        assert!(ix.bits(a).is_none(), "stale entry is invisible");
        ix.ensure_with(a, || chain_bits(a));
        assert_eq!((ix.stats().cache_hits, ix.stats().cache_misses), (1, 2));

        // Rebase: explicit invalidation, recompute.
        ix.invalidate(a);
        ix.ensure_with(a, || chain_bits(a));
        assert_eq!((ix.stats().cache_hits, ix.stats().cache_misses), (1, 3));

        // Resolution: forgotten for good.
        ix.forget(a);
        assert!(ix.bits(a).is_none());
    }

    #[test]
    fn pair_conflict_is_bitset_intersection_and_conservative_on_misses() {
        let mut ix = ensured_index(4);
        assert!(ix.pair_conflict(ChangeId(0), ChangeId(1)), "share part 1");
        assert!(!ix.pair_conflict(ChangeId(0), ChangeId(2)), "disjoint");
        // Unknown change: conservative conflict.
        assert!(ix.pair_conflict(ChangeId(0), ChangeId(99)));
        assert_eq!(ix.stats().pairs_checked, 3);
    }

    #[test]
    fn parallel_matrix_is_byte_identical_to_serial_for_any_thread_count() {
        let n = 33; // not a multiple of any chunk size
        let serial = ensured_index(n).matrix_serial(&ids(n));
        for threads in [1, 2, 3, 8, 64] {
            let par = ensured_index(n).matrix_parallel(&ids(n), threads);
            assert_eq!(par.to_bytes(), serial.to_bytes(), "threads = {threads}");
        }
        // The chain structure: exactly n-1 conflicting pairs.
        assert_eq!(serial.conflict_count(), n - 1);
        assert!(serial.get(0, 1) && serial.get(1, 0), "symmetric accessor");
        assert!(!serial.get(0, 2) && !serial.get(0, 0));
        // Serial batches leave parallel wall time untouched.
        let mut ix = ensured_index(n);
        ix.matrix_serial(&ids(n));
        assert_eq!(ix.stats().parallel_nanos, 0);
        assert_eq!(
            ix.stats().pairs_checked,
            n * (n - 1) / 2,
            "whole window counted"
        );
    }

    #[test]
    fn empty_and_single_windows_are_fine() {
        let mut ix = ensured_index(1);
        let m0 = ix.matrix_parallel(&[], 8);
        assert!(m0.is_empty());
        assert_eq!(m0.to_bytes(), ConflictMatrix::new(0).to_bytes());
        let m1 = ix.matrix_parallel(&ids(1), 8);
        assert_eq!(m1.len(), 1);
        assert_eq!(m1.conflict_count(), 0);
    }

    #[test]
    fn stats_export_under_the_analyzer_namespace() {
        let mut ix = ensured_index(3);
        ix.pair_conflict(ChangeId(0), ChangeId(1));
        let mut metrics = MetricsRegistry::new();
        ix.stats().record_into(&mut metrics);
        assert_eq!(metrics.counter("analyzer.cache_misses"), 3);
        assert_eq!(metrics.counter("analyzer.pairs_checked"), 1);
        assert_eq!(metrics.gauge("analyzer.parallel_ms"), Some(0.0));
        // Regression for the cumulative-total-into-counter bug class:
        // a second export of the same snapshot must change nothing.
        ix.stats().record_into(&mut metrics);
        assert_eq!(metrics.counter("analyzer.cache_misses"), 3);
        assert_eq!(metrics.counter("analyzer.pairs_checked"), 1);
        let stats = ix.stats();
        sq_obs::assert_idempotent_export(|m| stats.record_into(m));
    }
}
