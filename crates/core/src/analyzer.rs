//! The conflict analyzer and the conflict graph (paper Section 5).
//!
//! The analyzer answers "do changes Cᵢ and Cⱼ conflict?"; the graph
//! accumulates those answers over the pending set so the speculation
//! engine can (1) trim the speculation space and (2) find independent
//! changes that commit in parallel.
//!
//! Two analyzer backends:
//! * [`StatisticalAnalyzer`] — the simulation backend: conflicts are the
//!   workload's part-overlap relation. With the analyzer *disabled* it
//!   reports every pair as conflicting, which reproduces the Section 4
//!   "assume all pending changes conflict" regime that Figure 13
//!   ablates against.
//! * [`RealAnalyzer`] — the full Section 5.2 pipeline over a materialized
//!   repository: textual merge check, fast-path name intersection, and
//!   the union-graph algorithm, with per-pair memoization.

use sq_build::conflict::{changes_conflict, ConflictVerdict};
use sq_vcs::{ObjectStore, Patch, Tree};
use sq_workload::{ChangeId, ChangeSpec};
use std::collections::{BTreeSet, HashMap};

/// A backend that decides whether two changes conflict.
pub trait ConflictAnalyzer {
    /// True iff the two changes must be serialized (cannot commit in
    /// parallel, and speculation about one affects the other).
    fn conflicts(&mut self, a: &ChangeSpec, b: &ChangeSpec) -> bool;
}

/// The statistical backend used by the discrete-event simulations.
#[derive(Debug, Clone)]
pub struct StatisticalAnalyzer {
    enabled: bool,
}

impl StatisticalAnalyzer {
    /// An analyzer that detects independence via part overlap.
    pub fn new() -> Self {
        StatisticalAnalyzer { enabled: true }
    }

    /// The ablation of Figure 13: analyzer off ⇒ every pair conflicts.
    pub fn disabled() -> Self {
        StatisticalAnalyzer { enabled: false }
    }
}

impl Default for StatisticalAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl ConflictAnalyzer for StatisticalAnalyzer {
    fn conflicts(&mut self, a: &ChangeSpec, b: &ChangeSpec) -> bool {
        if !self.enabled {
            return true;
        }
        a.potentially_conflicts(b)
    }
}

/// The full build-system-backed analyzer over concrete patches.
pub struct RealAnalyzer {
    base_tree: Tree,
    store: ObjectStore,
    patches: HashMap<ChangeId, Patch>,
    cache: HashMap<(ChangeId, ChangeId), bool>,
}

impl RealAnalyzer {
    /// Create over a base snapshot; patches are registered per change.
    pub fn new(base_tree: Tree, store: ObjectStore) -> Self {
        RealAnalyzer {
            base_tree,
            store,
            patches: HashMap::new(),
            cache: HashMap::new(),
        }
    }

    /// Register the concrete patch of a change.
    pub fn register(&mut self, id: ChangeId, patch: Patch) {
        self.patches.insert(id, patch);
    }

    /// Drop a change's patch and cached verdicts (it resolved).
    pub fn forget(&mut self, id: ChangeId) {
        self.patches.remove(&id);
        self.cache.retain(|(a, b), _| *a != id && *b != id);
    }

    /// Verdict with full detail (textual vs. target conflict).
    pub fn verdict(&mut self, a: ChangeId, b: ChangeId) -> Option<ConflictVerdict> {
        let pa = self.patches.get(&a)?.clone();
        let pb = self.patches.get(&b)?.clone();
        Some(
            changes_conflict(&self.base_tree, &mut self.store, &pa, &pb)
                .unwrap_or(ConflictVerdict::TextualConflict),
        )
    }
}

impl ConflictAnalyzer for RealAnalyzer {
    fn conflicts(&mut self, a: &ChangeSpec, b: &ChangeSpec) -> bool {
        let key = if a.id.0 <= b.id.0 {
            (a.id, b.id)
        } else {
            (b.id, a.id)
        };
        if let Some(&v) = self.cache.get(&key) {
            return v;
        }
        // Unregistered patches are treated as conflicting (conservative:
        // never parallel-commit something we cannot analyze).
        let v = self
            .verdict(key.0, key.1)
            .is_none_or(|verdict| verdict.is_conflict());
        self.cache.insert(key, v);
        v
    }
}

/// The conflict graph over the current pending set.
///
/// Nodes are pending changes; an edge means "must serialize". The graph
/// is maintained incrementally: one analyzer query per (new change ×
/// pending change) on admission, removal on resolution.
#[derive(Debug, Clone, Default)]
pub struct ConflictGraph {
    adj: HashMap<ChangeId, BTreeSet<ChangeId>>,
}

impl ConflictGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending changes tracked.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True iff no changes are tracked.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// True iff the change is tracked.
    pub fn contains(&self, id: ChangeId) -> bool {
        self.adj.contains_key(&id)
    }

    /// Admit a change, querying `analyzer` against every tracked change.
    pub fn admit<A: ConflictAnalyzer>(
        &mut self,
        change: &ChangeSpec,
        pending: &[&ChangeSpec],
        analyzer: &mut A,
    ) {
        let mut edges = BTreeSet::new();
        for other in pending {
            if other.id == change.id || !self.adj.contains_key(&other.id) {
                continue;
            }
            if analyzer.conflicts(change, other) {
                edges.insert(other.id);
            }
        }
        for e in &edges {
            self.adj
                .get_mut(e)
                .expect("edge endpoint tracked")
                .insert(change.id);
        }
        self.adj.insert(change.id, edges);
    }

    /// Remove a resolved change.
    pub fn remove(&mut self, id: ChangeId) {
        if let Some(edges) = self.adj.remove(&id) {
            for e in edges {
                if let Some(set) = self.adj.get_mut(&e) {
                    set.remove(&id);
                }
            }
        }
    }

    /// All conflicting neighbours of `id`.
    pub fn neighbors(&self, id: ChangeId) -> impl Iterator<Item = ChangeId> + '_ {
        self.adj.get(&id).into_iter().flatten().copied()
    }

    /// `D_i`: the conflicting neighbours submitted *before* `id`
    /// (submission order = id order). This is the set the speculation
    /// engine's outcome patterns range over.
    pub fn earlier_conflicts(&self, id: ChangeId) -> Vec<ChangeId> {
        self.adj
            .get(&id)
            .map(|set| set.iter().copied().filter(|e| *e < id).collect())
            .unwrap_or_default()
    }

    /// True iff the two tracked changes are independent (no edge).
    pub fn independent(&self, a: ChangeId, b: ChangeId) -> bool {
        self.adj.get(&a).is_some_and(|set| !set.contains(&b))
    }

    /// Total edges (each counted once).
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(|s| s.len()).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_workload::{WorkloadBuilder, WorkloadParams};

    fn workload(n: usize) -> sq_workload::Workload {
        WorkloadBuilder::new(WorkloadParams::ios())
            .seed(9)
            .n_changes(n)
            .build()
            .unwrap()
    }

    #[test]
    fn statistical_analyzer_tracks_part_overlap() {
        let w = workload(100);
        let mut on = StatisticalAnalyzer::new();
        let mut off = StatisticalAnalyzer::disabled();
        let mut agreement = 0;
        for pair in w.changes.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert_eq!(on.conflicts(a, b), a.potentially_conflicts(b));
            assert!(
                off.conflicts(a, b),
                "disabled analyzer conflicts everything"
            );
            if on.conflicts(a, b) {
                agreement += 1;
            }
        }
        // Sanity: not everything overlaps.
        assert!(agreement < 99);
    }

    #[test]
    fn graph_admission_builds_edges_both_ways() {
        let w = workload(50);
        let mut analyzer = StatisticalAnalyzer::disabled(); // full clique
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&sq_workload::ChangeSpec> = Vec::new();
        for c in &w.changes[..5] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 10); // K5
        let d = g.earlier_conflicts(w.changes[4].id);
        assert_eq!(d.len(), 4);
        // Symmetry: the first change sees the last as a (later) neighbour.
        assert!(g.neighbors(w.changes[0].id).any(|n| n == w.changes[4].id));
    }

    #[test]
    fn graph_removal_cleans_both_endpoints() {
        let w = workload(10);
        let mut analyzer = StatisticalAnalyzer::disabled();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&sq_workload::ChangeSpec> = Vec::new();
        for c in &w.changes[..3] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        g.remove(w.changes[1].id);
        assert_eq!(g.len(), 2);
        assert!(!g.contains(w.changes[1].id));
        assert!(g.neighbors(w.changes[0].id).all(|n| n != w.changes[1].id));
        assert_eq!(g.earlier_conflicts(w.changes[2].id), vec![w.changes[0].id]);
    }

    #[test]
    fn independence_reflects_analyzer() {
        let w = workload(200);
        let mut analyzer = StatisticalAnalyzer::new();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&sq_workload::ChangeSpec> = Vec::new();
        for c in &w.changes[..20] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        for i in 0..20 {
            for j in (i + 1)..20 {
                let (a, b) = (&w.changes[i], &w.changes[j]);
                assert_eq!(
                    g.independent(a.id, b.id),
                    !a.potentially_conflicts(b),
                    "pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn real_analyzer_full_stack() {
        use sq_workload::repo_model::MaterializedRepo;
        let mut params = WorkloadParams::ios();
        params.n_parts = 10;
        let m = MaterializedRepo::generate(&params).unwrap();
        let w = WorkloadBuilder::new(params)
            .seed(3)
            .n_changes(30)
            .build()
            .unwrap();
        let tree = m.repo.head_tree().unwrap();
        let mut analyzer = RealAnalyzer::new(tree, m.repo.store().clone());
        for c in &w.changes {
            analyzer.register(c.id, m.patch_for(c));
        }
        // Cross-check against the statistical relation on a sample: part
        // overlap must imply a real-analyzer conflict (same package ⇒
        // same targets), and the analyzer result must be symmetric.
        for i in 0..10 {
            for j in (i + 1)..10 {
                let (a, b) = (&w.changes[i], &w.changes[j]);
                let v1 = analyzer.conflicts(a, b);
                let v2 = analyzer.conflicts(b, a);
                assert_eq!(v1, v2);
                if a.potentially_conflicts(b) {
                    assert!(v1, "same-part changes must conflict ({i}, {j})");
                }
            }
        }
        // Forgetting drops the cache and patch.
        analyzer.forget(w.changes[0].id);
        assert!(analyzer.verdict(w.changes[0].id, w.changes[1].id).is_none());
    }
}
