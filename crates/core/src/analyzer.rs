//! The conflict analyzer and the conflict graph (paper Section 5).
//!
//! The analyzer answers "do changes Cᵢ and Cⱼ conflict?"; the graph
//! accumulates those answers over the pending set so the speculation
//! engine can (1) trim the speculation space and (2) find independent
//! changes that commit in parallel.
//!
//! Three analyzer backends:
//! * [`StatisticalAnalyzer`] — the reference simulation backend:
//!   conflicts are the workload's part-overlap relation, recomputed per
//!   query. With the analyzer *disabled* it reports every pair as
//!   conflicting, which reproduces the Section 4 "assume all pending
//!   changes conflict" regime that Figure 13 ablates against.
//! * [`IndexedAnalyzer`] — the same relation served through the
//!   incremental [`ConflictIndex`]: each change's part set is interned
//!   into a bitset once and every pairwise query is a word-wise AND.
//!   Decision-for-decision identical to [`StatisticalAnalyzer`]; this is
//!   what the planner runs.
//! * [`RealAnalyzer`] — the full Section 5.2 pipeline over a materialized
//!   repository: textual merge check, fast-path name intersection, and
//!   the union-graph algorithm. The base snapshot is analyzed **once**
//!   per trunk and each change's side analysis, interned affected set,
//!   and touched-path bitset are cached until the trunk advances or the
//!   change is rebased — the pairwise hot path never re-materializes a
//!   target set.

use crate::index::{ConflictIndex, IndexStats, TrunkHash};
use sq_build::conflict::{changes_conflict, union_graph_conflict, ConflictVerdict};
use sq_build::{AffectedSet, BitSet, InternedAffected, Interner, SnapshotAnalysis, TargetName};
use sq_vcs::{ObjectStore, Patch, RepoPath, Tree};
use sq_workload::{ChangeId, ChangeSpec};
use std::collections::{BTreeSet, HashMap};

/// A backend that decides whether two changes conflict.
pub trait ConflictAnalyzer {
    /// True iff the two changes must be serialized (cannot commit in
    /// parallel, and speculation about one affects the other).
    fn conflicts(&mut self, a: &ChangeSpec, b: &ChangeSpec) -> bool;
}

/// The statistical backend used by the discrete-event simulations.
#[derive(Debug, Clone)]
pub struct StatisticalAnalyzer {
    enabled: bool,
}

impl StatisticalAnalyzer {
    /// An analyzer that detects independence via part overlap.
    pub fn new() -> Self {
        StatisticalAnalyzer { enabled: true }
    }

    /// The ablation of Figure 13: analyzer off ⇒ every pair conflicts.
    pub fn disabled() -> Self {
        StatisticalAnalyzer { enabled: false }
    }
}

impl Default for StatisticalAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl ConflictAnalyzer for StatisticalAnalyzer {
    fn conflicts(&mut self, a: &ChangeSpec, b: &ChangeSpec) -> bool {
        if !self.enabled {
            return true;
        }
        a.potentially_conflicts(b)
    }
}

/// The part-overlap relation served through the incremental
/// [`ConflictIndex`]: bitset intersection instead of the quadratic part
/// scan, with per-change memoization.
///
/// Decision-for-decision identical to [`StatisticalAnalyzer`] — a part
/// bitset intersects iff the part lists overlap — so swapping it into the
/// planner changes no simulated trajectory. Part ids are already dense
/// (`PartId(u32)`), so no interner is needed, and a part set does not
/// depend on the mainline snapshot, so the trunk key is a constant: only
/// [`IndexedAnalyzer::forget`] (resolution) ever invalidates an entry.
#[derive(Debug, Clone)]
pub struct IndexedAnalyzer {
    enabled: bool,
    index: ConflictIndex,
}

impl IndexedAnalyzer {
    /// An index-backed analyzer detecting independence via part overlap.
    pub fn new() -> Self {
        IndexedAnalyzer {
            enabled: true,
            index: ConflictIndex::new(TrunkHash(0)),
        }
    }

    /// The Figure 13 ablation: analyzer off ⇒ every pair conflicts (the
    /// index is never consulted).
    pub fn disabled() -> Self {
        IndexedAnalyzer {
            enabled: false,
            index: ConflictIndex::new(TrunkHash(0)),
        }
    }

    /// Drop a resolved change's cached bitset.
    pub fn forget(&mut self, id: ChangeId) {
        self.index.forget(id);
    }

    /// The underlying index (for stats export).
    pub fn index(&self) -> &ConflictIndex {
        &self.index
    }

    fn ensure(&mut self, spec: &ChangeSpec) {
        self.index
            .ensure_with(spec.id, || spec.parts.iter().map(|p| p.0).collect());
    }
}

impl Default for IndexedAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl ConflictAnalyzer for IndexedAnalyzer {
    fn conflicts(&mut self, a: &ChangeSpec, b: &ChangeSpec) -> bool {
        if !self.enabled {
            return true;
        }
        // Empty part sets cannot overlap anything: decide before touching
        // the index (the statistical analog of the fast-path empty-set
        // short-circuit in `sq-build`).
        if a.parts.is_empty() || b.parts.is_empty() {
            return false;
        }
        self.ensure(a);
        self.ensure(b);
        self.index.pair_conflict(a.id, b.id)
    }
}

/// Everything cached about one registered change, valid for the current
/// base snapshot until the change is rebased or the trunk advances.
struct RealEntry {
    /// The analyzed side snapshot (base ⊕ change).
    analysis: SnapshotAnalysis,
    /// δ(H⊕C) with names interned to bitset ids.
    affected: InternedAffected,
    /// The patch's *op* paths, interned: two changes can only conflict
    /// textually if these bitsets intersect (`merge_patches` fails only
    /// on a shared op path).
    op_paths: BitSet,
    /// §5.2 fast-path eligibility of this side alone: same graph
    /// structure as base and no BUILD file touched.
    keeps_graph: bool,
}

/// The full build-system-backed analyzer over concrete patches.
///
/// Incremental: the base snapshot is parsed and hashed once per trunk
/// ([`RealAnalyzer::advance_base`] starts a new trunk), each change's
/// [`RealEntry`] is computed once on first query and invalidated only by
/// re-[`RealAnalyzer::register`] (rebase) or [`RealAnalyzer::forget`]
/// (resolution). Pairwise queries then tier exactly as
/// [`changes_conflict`] does, over cached analyses:
///
/// * overlapping op-path bitsets → the full tiered check (textual merge
///   semantics are only reachable here);
/// * both sides keep the graph → interned fast path (state disagreement
///   as a word-wise AND + state probe);
/// * otherwise → the union-graph walk over the cached analyses.
pub struct RealAnalyzer {
    base_tree: Tree,
    store: ObjectStore,
    /// `None` = not yet analyzed; `Some(None)` = base itself is broken
    /// (every pair is conservatively conflicting).
    base: Option<Option<SnapshotAnalysis>>,
    names: Interner<TargetName>,
    paths: Interner<RepoPath>,
    patches: HashMap<ChangeId, Patch>,
    /// `Some(None)` = the change's snapshot failed to apply or analyze
    /// (conservatively conflicting, like the pre-index error path).
    entries: HashMap<ChangeId, Option<RealEntry>>,
    cache: HashMap<(ChangeId, ChangeId), bool>,
    stats: IndexStats,
}

impl RealAnalyzer {
    /// Create over a base snapshot; patches are registered per change.
    pub fn new(base_tree: Tree, store: ObjectStore) -> Self {
        RealAnalyzer {
            base_tree,
            store,
            base: None,
            names: Interner::new(),
            paths: Interner::new(),
            patches: HashMap::new(),
            entries: HashMap::new(),
            cache: HashMap::new(),
            stats: IndexStats::default(),
        }
    }

    /// Register the concrete patch of a change. Re-registering an id is a
    /// rebase: the cached entry and every verdict involving it are
    /// invalidated.
    pub fn register(&mut self, id: ChangeId, patch: Patch) {
        self.patches.insert(id, patch);
        self.entries.remove(&id);
        self.cache.retain(|(a, b), _| *a != id && *b != id);
    }

    /// Advance to a new base snapshot (the trunk moved): every cached
    /// entry and verdict is relative to the old trunk and is dropped.
    /// Registered patches survive — they recompute lazily against the
    /// new base.
    pub fn advance_base(&mut self, base_tree: Tree, store: ObjectStore) {
        self.base_tree = base_tree;
        self.store = store;
        self.base = None;
        self.entries.clear();
        self.cache.clear();
    }

    /// Drop a change's patch and cached verdicts (it resolved).
    pub fn forget(&mut self, id: ChangeId) {
        self.patches.remove(&id);
        self.entries.remove(&id);
        self.cache.retain(|(a, b), _| *a != id && *b != id);
    }

    /// Cache-hit/miss and pairs-checked counters.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn ensure_base(&mut self) {
        if self.base.is_none() {
            self.base = Some(SnapshotAnalysis::analyze(&self.base_tree, &self.store).ok());
        }
    }

    fn ensure_entry(&mut self, id: ChangeId) {
        if self.entries.contains_key(&id) {
            self.stats.cache_hits += 1;
            return;
        }
        self.stats.cache_misses += 1;
        let base = self.base.as_ref().and_then(|b| b.as_ref());
        let entry = compute_entry(
            &self.base_tree,
            &mut self.store,
            base,
            self.patches.get(&id),
            &mut self.names,
            &mut self.paths,
        );
        self.entries.insert(id, entry);
    }

    /// Verdict with full detail (textual vs. target conflict), from the
    /// cached analyses. `None` iff either patch is unregistered.
    pub fn verdict(&mut self, a: ChangeId, b: ChangeId) -> Option<ConflictVerdict> {
        if !self.patches.contains_key(&a) || !self.patches.contains_key(&b) {
            return None;
        }
        self.ensure_base();
        self.ensure_entry(a);
        self.ensure_entry(b);
        let (Some(Some(ea)), Some(Some(eb))) = (self.entries.get(&a), self.entries.get(&b)) else {
            // A side snapshot failed to apply or analyze — the same
            // condition the tiered check reports as an error, treated
            // conservatively.
            return Some(ConflictVerdict::TextualConflict);
        };
        if self.base.as_ref().is_none_or(|b| b.is_none()) {
            return Some(ConflictVerdict::TextualConflict);
        }
        if ea.op_paths.intersects(&eb.op_paths) {
            // Only here can a textual conflict exist; fall back to the
            // full tiered check (rare: same-file concurrent edits).
            let pa = self.patches.get(&a).expect("checked above").clone();
            let pb = self.patches.get(&b).expect("checked above").clone();
            return Some(
                changes_conflict(&self.base_tree, &mut self.store, &pa, &pb)
                    .unwrap_or(ConflictVerdict::TextualConflict),
            );
        }
        let conflict = if ea.keeps_graph && eb.keeps_graph {
            ea.affected.shared_disagreement(&eb.affected)
        } else {
            let base = self
                .base
                .as_ref()
                .and_then(|b| b.as_ref())
                .expect("checked above");
            union_graph_conflict(base, &ea.analysis, &eb.analysis)
        };
        Some(if conflict {
            ConflictVerdict::TargetConflict
        } else {
            ConflictVerdict::Independent
        })
    }
}

/// Build one change's cached entry; `None` on any failure (conservative).
fn compute_entry(
    base_tree: &Tree,
    store: &mut ObjectStore,
    base: Option<&SnapshotAnalysis>,
    patch: Option<&Patch>,
    names: &mut Interner<TargetName>,
    paths: &mut Interner<RepoPath>,
) -> Option<RealEntry> {
    let patch = patch?;
    let base = base?;
    let tree = patch.apply(base_tree, store).ok()?;
    let analysis = SnapshotAnalysis::analyze(&tree, store).ok()?;
    let affected_set = AffectedSet::between(base, &analysis);
    let affected = InternedAffected::from_affected(&affected_set, names);
    let changed = base.tree.changed_paths(&analysis.tree);
    let keeps_graph =
        base.same_graph_structure(&analysis) && changed.iter().all(|p| p.file_name() != "BUILD");
    let mut op_paths = BitSet::new();
    for p in patch.paths() {
        op_paths.insert(paths.intern(p));
    }
    Some(RealEntry {
        analysis,
        affected,
        op_paths,
        keeps_graph,
    })
}

impl ConflictAnalyzer for RealAnalyzer {
    fn conflicts(&mut self, a: &ChangeSpec, b: &ChangeSpec) -> bool {
        let key = if a.id.0 <= b.id.0 {
            (a.id, b.id)
        } else {
            (b.id, a.id)
        };
        if let Some(&v) = self.cache.get(&key) {
            return v;
        }
        self.stats.pairs_checked += 1;
        // Unregistered patches are treated as conflicting (conservative:
        // never parallel-commit something we cannot analyze).
        let v = self
            .verdict(key.0, key.1)
            .is_none_or(|verdict| verdict.is_conflict());
        self.cache.insert(key, v);
        v
    }
}

/// The conflict graph over the current pending set.
///
/// Nodes are pending changes; an edge means "must serialize". The graph
/// is maintained incrementally: one analyzer query per (new change ×
/// pending change) on admission, removal on resolution.
#[derive(Debug, Clone, Default)]
pub struct ConflictGraph {
    adj: HashMap<ChangeId, BTreeSet<ChangeId>>,
}

impl ConflictGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending changes tracked.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True iff no changes are tracked.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// True iff the change is tracked.
    pub fn contains(&self, id: ChangeId) -> bool {
        self.adj.contains_key(&id)
    }

    /// Admit a change, querying `analyzer` against every tracked change.
    pub fn admit<A: ConflictAnalyzer>(
        &mut self,
        change: &ChangeSpec,
        pending: &[&ChangeSpec],
        analyzer: &mut A,
    ) {
        let mut edges = BTreeSet::new();
        for other in pending {
            if other.id == change.id || !self.adj.contains_key(&other.id) {
                continue;
            }
            if analyzer.conflicts(change, other) {
                edges.insert(other.id);
            }
        }
        for e in &edges {
            self.adj
                .get_mut(e)
                .expect("edge endpoint tracked")
                .insert(change.id);
        }
        self.adj.insert(change.id, edges);
    }

    /// Remove a resolved change.
    pub fn remove(&mut self, id: ChangeId) {
        if let Some(edges) = self.adj.remove(&id) {
            for e in edges {
                if let Some(set) = self.adj.get_mut(&e) {
                    set.remove(&id);
                }
            }
        }
    }

    /// All conflicting neighbours of `id`.
    pub fn neighbors(&self, id: ChangeId) -> impl Iterator<Item = ChangeId> + '_ {
        self.adj.get(&id).into_iter().flatten().copied()
    }

    /// `D_i`: the conflicting neighbours submitted *before* `id`
    /// (submission order = id order). This is the set the speculation
    /// engine's outcome patterns range over.
    pub fn earlier_conflicts(&self, id: ChangeId) -> Vec<ChangeId> {
        self.adj
            .get(&id)
            .map(|set| set.iter().copied().filter(|e| *e < id).collect())
            .unwrap_or_default()
    }

    /// True iff the two tracked changes are independent (no edge).
    pub fn independent(&self, a: ChangeId, b: ChangeId) -> bool {
        self.adj.get(&a).is_some_and(|set| !set.contains(&b))
    }

    /// Total edges (each counted once).
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(|s| s.len()).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_workload::{WorkloadBuilder, WorkloadParams};

    fn workload(n: usize) -> sq_workload::Workload {
        WorkloadBuilder::new(WorkloadParams::ios())
            .seed(9)
            .n_changes(n)
            .build()
            .unwrap()
    }

    #[test]
    fn statistical_analyzer_tracks_part_overlap() {
        let w = workload(100);
        let mut on = StatisticalAnalyzer::new();
        let mut off = StatisticalAnalyzer::disabled();
        let mut agreement = 0;
        for pair in w.changes.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert_eq!(on.conflicts(a, b), a.potentially_conflicts(b));
            assert!(
                off.conflicts(a, b),
                "disabled analyzer conflicts everything"
            );
            if on.conflicts(a, b) {
                agreement += 1;
            }
        }
        // Sanity: not everything overlaps.
        assert!(agreement < 99);
    }

    #[test]
    fn graph_admission_builds_edges_both_ways() {
        let w = workload(50);
        let mut analyzer = StatisticalAnalyzer::disabled(); // full clique
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&sq_workload::ChangeSpec> = Vec::new();
        for c in &w.changes[..5] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 10); // K5
        let d = g.earlier_conflicts(w.changes[4].id);
        assert_eq!(d.len(), 4);
        // Symmetry: the first change sees the last as a (later) neighbour.
        assert!(g.neighbors(w.changes[0].id).any(|n| n == w.changes[4].id));
    }

    #[test]
    fn graph_removal_cleans_both_endpoints() {
        let w = workload(10);
        let mut analyzer = StatisticalAnalyzer::disabled();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&sq_workload::ChangeSpec> = Vec::new();
        for c in &w.changes[..3] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        g.remove(w.changes[1].id);
        assert_eq!(g.len(), 2);
        assert!(!g.contains(w.changes[1].id));
        assert!(g.neighbors(w.changes[0].id).all(|n| n != w.changes[1].id));
        assert_eq!(g.earlier_conflicts(w.changes[2].id), vec![w.changes[0].id]);
    }

    #[test]
    fn independence_reflects_analyzer() {
        let w = workload(200);
        let mut analyzer = StatisticalAnalyzer::new();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&sq_workload::ChangeSpec> = Vec::new();
        for c in &w.changes[..20] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        for i in 0..20 {
            for j in (i + 1)..20 {
                let (a, b) = (&w.changes[i], &w.changes[j]);
                assert_eq!(
                    g.independent(a.id, b.id),
                    !a.potentially_conflicts(b),
                    "pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn real_analyzer_full_stack() {
        use sq_workload::repo_model::MaterializedRepo;
        let mut params = WorkloadParams::ios();
        params.n_parts = 10;
        let m = MaterializedRepo::generate(&params).unwrap();
        let w = WorkloadBuilder::new(params)
            .seed(3)
            .n_changes(30)
            .build()
            .unwrap();
        let tree = m.repo.head_tree().unwrap();
        let mut analyzer = RealAnalyzer::new(tree, m.repo.store().clone());
        for c in &w.changes {
            analyzer.register(c.id, m.patch_for(c));
        }
        // Cross-check against the statistical relation on a sample: part
        // overlap must imply a real-analyzer conflict (same package ⇒
        // same targets), and the analyzer result must be symmetric.
        for i in 0..10 {
            for j in (i + 1)..10 {
                let (a, b) = (&w.changes[i], &w.changes[j]);
                let v1 = analyzer.conflicts(a, b);
                let v2 = analyzer.conflicts(b, a);
                assert_eq!(v1, v2);
                if a.potentially_conflicts(b) {
                    assert!(v1, "same-part changes must conflict ({i}, {j})");
                }
            }
        }
        // Forgetting drops the cache and patch.
        analyzer.forget(w.changes[0].id);
        assert!(analyzer.verdict(w.changes[0].id, w.changes[1].id).is_none());
    }

    #[test]
    fn indexed_analyzer_is_decision_identical_to_statistical() {
        let w = workload(300);
        let mut stat = StatisticalAnalyzer::new();
        let mut indexed = IndexedAnalyzer::new();
        let mut off = IndexedAnalyzer::disabled();
        let n = 40;
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (&w.changes[i], &w.changes[j]);
                assert_eq!(
                    indexed.conflicts(a, b),
                    stat.conflicts(a, b),
                    "pair ({i}, {j})"
                );
                assert!(off.conflicts(a, b), "disabled conflicts everything");
            }
        }
        let s = indexed.index().stats();
        // Each change's bitset is computed at most once...
        assert!(s.cache_misses <= n as u64);
        // ...and every later query over the window is served from cache.
        assert!(s.cache_hits > s.cache_misses);
        assert!(s.pairs_checked <= (n * (n - 1) / 2) as u64);
        assert_eq!(s.parallel_nanos, 0);
        // The ablation never touches the index at all.
        assert_eq!(off.index().stats().pairs_checked, 0);
        assert_eq!(off.index().stats().cache_misses, 0);
        // Forgetting a resolved change invalidates its entry only.
        indexed.forget(w.changes[0].id);
        assert!(indexed.index().bits(w.changes[1].id).is_some());
        assert!(indexed.index().bits(w.changes[0].id).is_none());
    }

    #[test]
    fn real_analyzer_matches_the_uncached_tiered_check() {
        use sq_build::conflict::changes_conflict;
        use sq_workload::repo_model::MaterializedRepo;
        let mut params = WorkloadParams::ios();
        params.n_parts = 8;
        let m = MaterializedRepo::generate(&params).unwrap();
        let w = WorkloadBuilder::new(params)
            .seed(11)
            .n_changes(16)
            .build()
            .unwrap();
        let tree = m.repo.head_tree().unwrap();
        let mut analyzer = RealAnalyzer::new(tree.clone(), m.repo.store().clone());
        for c in &w.changes {
            analyzer.register(c.id, m.patch_for(c));
        }
        // The cached, tiered decision must agree verdict-for-verdict with
        // a from-scratch `changes_conflict` on every pair.
        let mut fresh_store = m.repo.store().clone();
        for i in 0..w.changes.len() {
            for j in (i + 1)..w.changes.len() {
                let (a, b) = (&w.changes[i], &w.changes[j]);
                let uncached =
                    changes_conflict(&tree, &mut fresh_store, &m.patch_for(a), &m.patch_for(b))
                        .map(|v| v.is_conflict())
                        .unwrap_or(true);
                assert_eq!(
                    analyzer.conflicts(a, b),
                    uncached,
                    "pair ({i}, {j}) diverged from the uncached pipeline"
                );
            }
        }
        // The base was analyzed once; every change entry computed once.
        let s = *analyzer.stats();
        assert!(s.cache_misses <= w.changes.len() as u64);
        assert!(s.cache_hits > 0);
        // A trunk advance drops everything; queries still work (and
        // recompute) against the new base.
        analyzer.advance_base(tree, m.repo.store().clone());
        let before = analyzer.stats().cache_misses;
        assert!(analyzer.verdict(w.changes[0].id, w.changes[1].id).is_some());
        assert!(analyzer.stats().cache_misses > before, "entries recomputed");
        // Re-registering (a rebase) invalidates the pair verdicts of that
        // change but keeps the others' entries usable.
        analyzer.register(w.changes[0].id, m.patch_for(&w.changes[0]));
        assert!(analyzer.verdict(w.changes[0].id, w.changes[1].id).is_some());
    }
}
