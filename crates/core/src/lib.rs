//! # sq-core — SubmitQueue
//!
//! The paper's primary contribution: a change-management system that
//! keeps a monorepo mainline *always green* at scale by totally ordering
//! changes (not just patches), while hitting turnaround-time SLAs through
//! probabilistic speculation and conflict analysis.
//!
//! Architecture (paper Figure 4):
//!
//! ```text
//!   land(change) ──► queue ──► PLANNER ENGINE ──► BUILD CONTROLLER ──► workers
//!                                 │    ▲
//!                   SPECULATION ◄─┘    └─► commit / abort
//!                     ENGINE ◄── CONFLICT ANALYZER (conflict graph)
//! ```
//!
//! * [`pending`] — pending-change state machine and commit/abort records.
//! * [`predict`] — `P_succ` / `P_conf` estimators: the trained logistic
//!   models (Section 7.2), plus oracle / static / optimistic estimators
//!   used by the baselines.
//! * [`analyzer`] — the conflict graph over pending changes (Section 5),
//!   backed either by the statistical part-overlap model (simulation) or
//!   by the real build-system analyzer from `sq-build`.
//! * [`index`] — the incremental conflict index: per-change affected
//!   bitsets memoized by (change, trunk), invalidated only on trunk
//!   advance or rebase, with a deterministic parallel pairwise matrix.
//! * [`speculation`] — the speculation engine (Section 4): build values
//!   `V = B · P_needed` per Equations 1–5, and greedy best-first
//!   selection of the most valuable builds in O(n) frontier space
//!   (Section 7.1).
//! * [`strategy`] — SubmitQueue plus every baseline evaluated in
//!   Section 8: Speculate-all, Optimistic (Zuul), Single-Queue (Bors),
//!   and the Oracle used for normalization — plus the lean variants.
//! * [`lean`] — the Uber 2025 follow-up optimizations: probability-
//!   gated speculation skipping, risk prioritization, and bypass lanes
//!   (`LeanConfig`, `BypassPolicy`, `LeanReport`).
//! * [`planner`] — the planner engine driving a discrete-event
//!   simulation: schedules/aborts builds, commits changes, measures
//!   turnaround and throughput.
//! * [`trunk`] — the *pre*-SubmitQueue world of Figure 14: trunk-based
//!   development with post-submit detection and manual reverts.
//! * [`batching`] — the Section 10 batch-and-bisect extension (batching
//!   independent changes to save hardware).
//! * [`audit`] — ground-truth greenness audits (the "always green"
//!   invariant is checked, not assumed).
//! * [`scenario`] — the adversarial scenario-matrix runner: replays
//!   named `sq-workload` manifests through every strategy and audits
//!   each run.
//! * [`shard`] — sharded multi-lane planning: part → shard routing
//!   plans, per-lane worker splits, the planning-cost model that makes
//!   one global window saturate, and per-shard reports/audits over the
//!   merged trunk.
//! * [`service`] — an embeddable `SubmitQueueService` that runs the full
//!   stack (real conflict analyzer, real executor) over a materialized
//!   repository.
//! * [`durable`] — the crash-consistent service: every state transition
//!   is journaled through `sq-store` before it is acknowledged, and
//!   `DurableSubmitQueue::open` reconstructs the exact acked state from
//!   snapshot + journal-suffix replay.
//! * [`failover`] — replicated operation on top of `durable`: leaders
//!   that ship every journal record to followers, fenced follower
//!   promotion with zero acked-work loss, candidate selection, and
//!   capped-backoff reconnect scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod audit;
pub mod batching;
pub mod durable;
pub mod failover;
pub mod index;
pub mod lean;
pub mod pending;
pub mod planner;
pub mod predict;
pub mod recovery;
pub mod scenario;
pub mod service;
pub mod shard;
pub mod speculation;
pub mod strategy;
pub mod trunk;

pub use analyzer::{ConflictAnalyzer, ConflictGraph, IndexedAnalyzer, RealAnalyzer};
pub use durable::{DurableState, DurableSubmitQueue, ServiceEvent};
pub use failover::{
    best_promotion_candidate, open_leader, promote_from_follower, PromotionCandidate,
    PromotionReport, ReconnectScheduler, ReconnectTick,
};
pub use index::{ConflictIndex, ConflictMatrix, IndexStats, TrunkHash};
pub use lean::{BypassPolicy, LeanConfig, LeanReport, SKIP_MISS_BUDGET};
pub use pending::{ChangeOutcome, ChangeRecord};
pub use planner::{run_simulation, PlannerConfig, SimResult};
pub use predict::{LearnedPredictor, OraclePredictor, Predictor};
pub use recovery::{QuarantineList, RecoveryConfig, RecoveryEvent, RecoveryLog};
pub use scenario::{run_scenario, ScenarioRun, StrategyOutcome};
pub use service::{HistoryViolation, SubmitQueueService, TicketId, TicketState};
pub use shard::{LaneStats, PlanningCost, ShardPlan, ShardReport, ShardSpec};
pub use speculation::{BuildKey, SpeculationEngine};
pub use strategy::StrategyKind;
