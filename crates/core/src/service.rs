//! An embeddable SubmitQueue service over a real repository.
//!
//! The simulations measure *scheduling policy*; this module wires the
//! full concrete stack together the way the paper's production system
//! does (Section 7.1's API service + core service, minus the RPC):
//! patches land against a live `sq-vcs` repository, the Section 5
//! conflict analyzer decides independence, the `sq-exec` executor runs
//! real build steps with artifact caching, and a change commits only if
//! every step passes — so the mainline is green at every commit point,
//! by construction, and `verify_history` re-checks it from scratch.

use crate::recovery::{QuarantineList, RecoveryConfig, RecoveryEvent, RecoveryLog};
use parking_lot::Mutex;
use sq_build::affected::SnapshotAnalysis;
use sq_build::{AffectedSet, TargetName};
use sq_exec::{ArtifactCache, BuildController, BuildStep, RealExecutor, StepOutcome};
use sq_vcs::merge::merge_patches;
use sq_vcs::{CommitId, CommitMeta, Patch, Repository, Tree, VcsError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Ticket identifying a submitted change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TicketId(pub u64);

impl fmt::Display for TicketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// State of a submitted change (what the paper's web UI shows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TicketState {
    /// Enqueued, not yet processed.
    Queued,
    /// Landed at this mainline commit.
    Landed(CommitId),
    /// Rejected with a reason.
    Rejected(String),
}

/// A step action: decides the outcome of one build step given the
/// snapshot it runs against. Runs on executor worker threads.
pub type StepAction = dyn Fn(&BuildStep, &Tree) -> StepOutcome + Send + Sync;

struct Submission {
    ticket: TicketId,
    author: String,
    description: String,
    /// The mainline commit the patch was developed against.
    base: CommitId,
    patch: Patch,
}

struct Inner {
    repo: Repository,
    queue: VecDeque<Submission>,
    states: HashMap<TicketId, TicketState>,
    next_ticket: u64,
    landed: u64,
    rejected: u64,
    /// Infra-red whole-build attempts, per ticket.
    rebuilds: HashMap<TicketId, u32>,
    /// Per-target flake accounting.
    quarantine: QuarantineList<TargetName>,
    /// Every recovery decision, in order.
    log: RecoveryLog,
    /// Changes rejected for infrastructure (not change) reasons.
    infra_rejected: u64,
}

/// The service.
pub struct SubmitQueueService {
    inner: Mutex<Inner>,
    /// Incremental builds for landing changes (persistent artifact cache
    /// + duration history — the paper's Section 6 controller).
    controller: BuildController,
    /// From-scratch builds for `verify_history` (no cache reuse: the
    /// audit must not trust prior artifacts).
    executor: RealExecutor,
    /// Infra-failure recovery policy (step retries, rebuild bound,
    /// quarantine threshold).
    recovery: RecoveryConfig,
}

/// A red commit found by [`SubmitQueueService::verify_history`]: which
/// commit broke the audit, at which step, and why.
#[derive(Debug, Clone)]
pub struct HistoryViolation {
    /// Position of the commit in mainline order (0 = root commit).
    pub commit_index: usize,
    /// The red commit.
    pub commit: CommitId,
    /// The failing step, when a build step failed (as opposed to the
    /// snapshot being unreadable or unanalyzable).
    pub step: Option<BuildStep>,
    /// Human-readable reason.
    pub reason: String,
    /// True when the failure was infrastructure — the audit could not
    /// complete — rather than the commit being genuinely red.
    pub infra: bool,
}

impl fmt::Display for HistoryViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let blame = if self.infra {
            "unverifiable (infrastructure)"
        } else {
            "red"
        };
        write!(
            f,
            "commit {} (#{} in mainline) is {blame}",
            self.commit, self.commit_index
        )?;
        if let Some(step) = &self.step {
            write!(f, ": step '{step}'")?;
        }
        write!(f, ": {}", self.reason)
    }
}

impl std::error::Error for HistoryViolation {}

/// Service statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Changes landed.
    pub landed: u64,
    /// Changes rejected.
    pub rejected: u64,
    /// Changes still queued.
    pub queued: usize,
    /// Artifact-cache hit/miss counters.
    pub cache_hits: u64,
    /// Artifact-cache misses.
    pub cache_misses: u64,
    /// Step-level infra retries absorbed without failing a build.
    pub step_retries: u64,
    /// Whole-build rebuilds caused by infra-red builds.
    pub infra_rebuilds: u64,
    /// Changes rejected for infrastructure (not change) reasons.
    pub infra_rejected: u64,
    /// Targets currently quarantined as chronically flaky.
    pub quarantined: usize,
}

impl SubmitQueueService {
    /// Wrap a repository; `threads` sizes the build executor. Infra
    /// failures are not retried (the change sees them directly); use
    /// [`SubmitQueueService::with_recovery`] for the failure-aware
    /// service.
    pub fn new(repo: Repository, threads: usize) -> Self {
        Self::with_recovery(repo, threads, RecoveryConfig::disabled())
    }

    /// Wrap a repository with an infra-failure recovery policy: steps
    /// retry under `recovery.retry`, infra-red builds are redone up to
    /// `recovery.max_rebuilds` times before the change is rejected with
    /// an explicit infrastructure reason, and chronically flaky targets
    /// are quarantined (advisorily — they keep gating, so the always-
    /// green invariant is never weakened; the list is surfaced for
    /// operators via [`SubmitQueueService::quarantined_targets`]).
    pub fn with_recovery(repo: Repository, threads: usize, recovery: RecoveryConfig) -> Self {
        SubmitQueueService {
            inner: Mutex::new(Inner {
                repo,
                queue: VecDeque::new(),
                states: HashMap::new(),
                next_ticket: 1,
                landed: 0,
                rejected: 0,
                rebuilds: HashMap::new(),
                quarantine: QuarantineList::new(recovery.quarantine_threshold),
                log: RecoveryLog::new(),
                infra_rejected: 0,
            }),
            controller: BuildController::with_retry_policy(threads, recovery.retry),
            executor: RealExecutor::new(threads),
            recovery,
        }
    }

    /// The current mainline HEAD.
    pub fn head(&self) -> CommitId {
        self.inner.lock().repo.head()
    }

    /// A clone of the underlying repository. The VCS is the system of
    /// record for commits: a durability layer (or a crash-recovery
    /// harness) extracts it from a dead service instance the way a real
    /// deployment's repository survives a service restart.
    pub fn repository(&self) -> Repository {
        self.inner.lock().repo.clone()
    }

    /// Reset the queue, ticket states, counters, and quarantine list to
    /// a recovered [`DurableState`](crate::durable::DurableState) — the
    /// restore half of crash recovery. Must run before any submissions;
    /// the repository is *not* touched (commits live in the VCS, which
    /// recovers independently).
    pub(crate) fn restore_from(&self, state: &crate::durable::DurableState) {
        let mut inner = self.inner.lock();
        debug_assert!(inner.queue.is_empty() && inner.states.is_empty());
        inner.next_ticket = state.next_ticket.max(1);
        inner.landed = state.landed;
        inner.rejected = state.rejected;
        inner.infra_rejected = state.infra_rejected;
        inner.states = state
            .states
            .iter()
            .map(|(t, s)| (TicketId(*t), s.clone()))
            .collect();
        inner.queue = state
            .queue
            .iter()
            .map(|q| Submission {
                ticket: TicketId(q.ticket),
                author: q.author.clone(),
                description: q.description.clone(),
                base: q.base,
                patch: q.patch.clone(),
            })
            .collect();
        for (target, observations) in &state.quarantined {
            // Quarantined events journal canonical `//pkg:name` labels,
            // which always re-resolve; a malformed label would mean a
            // corrupt journal, which decoding already rejected.
            if let Ok(name) = TargetName::resolve(target, "") {
                inner.quarantine.restore(name, *observations);
            }
        }
    }

    /// Submit a change: a patch made against `base` (usually the HEAD the
    /// developer branched from — step 5 of the Figure 3 life cycle).
    pub fn submit(
        &self,
        author: impl Into<String>,
        description: impl Into<String>,
        base: CommitId,
        patch: Patch,
    ) -> TicketId {
        let mut inner = self.inner.lock();
        let ticket = TicketId(inner.next_ticket);
        inner.next_ticket += 1;
        inner.states.insert(ticket, TicketState::Queued);
        inner.queue.push_back(Submission {
            ticket,
            author: author.into(),
            description: description.into(),
            base,
            patch,
        });
        ticket
    }

    /// The state of a change (the service's second API call).
    pub fn status(&self, ticket: TicketId) -> Option<TicketState> {
        self.inner.lock().states.get(&ticket).cloned()
    }

    /// Process one queued change end to end. Returns the ticket handled,
    /// or `None` if the queue was empty.
    ///
    /// Pipeline: rebase (three-way merge onto the current HEAD) →
    /// affected-target analysis → real builds of every affected target →
    /// commit on success.
    pub fn process_next(&self, action: &StepAction) -> Option<TicketId> {
        // Take the submission under the lock, then build outside it so
        // parallel status queries stay responsive.
        let (submission, base_tree, head, head_tree, store) = {
            let mut inner = self.inner.lock();
            let submission = inner.queue.pop_front()?;
            let base_tree = match inner.repo.tree_at(submission.base) {
                Ok(t) => t,
                Err(e) => {
                    let ticket = submission.ticket;
                    self.reject_locked(&mut inner, ticket, format!("bad base: {e}"));
                    return Some(ticket);
                }
            };
            let head = inner.repo.head();
            let head_tree = inner.repo.head_tree().expect("mainline readable");
            let store = inner.repo.store().clone();
            (submission, base_tree, head, head_tree, store)
        };
        let ticket = submission.ticket;

        // 1. Rebase: merge the patch with what landed since its base.
        let rebased = match self.rebase(&submission, &base_tree, &head_tree, store.clone()) {
            Ok(p) => p,
            Err(e) => {
                let mut inner = self.inner.lock();
                self.reject_locked(&mut inner, ticket, format!("merge conflict: {e}"));
                return Some(ticket);
            }
        };

        // 2. Analyze: affected targets of the rebased patch on HEAD.
        let mut store = store;
        let base_analysis = match SnapshotAnalysis::analyze(&head_tree, &store) {
            Ok(a) => a,
            Err(e) => {
                let mut inner = self.inner.lock();
                self.reject_locked(&mut inner, ticket, format!("HEAD unanalyzable: {e}"));
                return Some(ticket);
            }
        };
        let new_tree = match rebased.apply(&head_tree, &mut store) {
            Ok(t) => t,
            Err(e) => {
                let mut inner = self.inner.lock();
                self.reject_locked(&mut inner, ticket, format!("patch failed to apply: {e}"));
                return Some(ticket);
            }
        };
        let new_analysis = match SnapshotAnalysis::analyze(&new_tree, &store) {
            Ok(a) => a,
            Err(e) => {
                let mut inner = self.inner.lock();
                self.reject_locked(&mut inner, ticket, format!("build graph broken: {e}"));
                return Some(ticket);
            }
        };
        let delta = AffectedSet::between(&base_analysis, &new_analysis);

        // 3. Build every affected target for real (incremental via the
        // controller's artifact cache + duration history).
        let tree_for_action = new_tree.clone();
        let report = self.controller.execute_affected(
            &new_analysis.graph,
            &new_analysis.hashes,
            &delta,
            |step| action(step, &tree_for_action),
        );
        {
            let mut inner = self.inner.lock();
            // Flake accounting: every infra event — recovered or not —
            // counts toward the per-target quarantine threshold.
            for (step, _fault) in &report.exec.infra_events {
                if let Some(observations) = inner.quarantine.record_flake(step.target.clone()) {
                    inner.log.push(RecoveryEvent::Quarantined {
                        target: step.target.to_string(),
                        observations,
                    });
                }
            }
            if report.exec.infra_retries > 0 {
                inner.log.push(RecoveryEvent::StepRetries {
                    subject: ticket.to_string(),
                    retries: report.exec.infra_retries,
                });
            }
            if let Some((step, fault)) = report.exec.infra_failure {
                // Infra-red: the build says nothing about the change.
                // Rebuild up to the policy bound instead of rejecting;
                // successful steps are already cached, so the rebuild
                // only redoes what the fault interrupted.
                let attempts = inner.rebuilds.entry(ticket).or_insert(0);
                *attempts += 1;
                let attempt = *attempts;
                if attempt <= self.recovery.max_rebuilds {
                    inner.log.push(RecoveryEvent::Rebuild {
                        subject: ticket.to_string(),
                        attempt,
                        step,
                        fault,
                    });
                    inner.queue.push_front(submission);
                } else {
                    inner.log.push(RecoveryEvent::InfraRejected {
                        subject: ticket.to_string(),
                        attempts: attempt,
                    });
                    inner.infra_rejected += 1;
                    self.reject_locked(
                        &mut inner,
                        ticket,
                        format!(
                            "infrastructure failure (change not at fault): step '{step}' \
                             hit {fault} after {attempt} build(s)"
                        ),
                    );
                }
                return Some(ticket);
            }
            if let Some((step, reason)) = report.exec.failure {
                self.reject_locked(
                    &mut inner,
                    ticket,
                    format!("build step '{step}' failed: {reason}"),
                );
                return Some(ticket);
            }
            // 4. Commit — but only if HEAD did not move underneath us
            // (single-threaded processing here; the check keeps the
            // invariant explicit).
            if inner.repo.head() != head {
                // Retry by re-queueing at the front with the same base.
                inner.queue.push_front(submission);
                return Some(ticket);
            }
            let meta = CommitMeta::new(
                submission.author.clone(),
                format!("[{}] {}", ticket, submission.description),
                0,
            );
            match inner
                .repo
                .commit_patch(sq_vcs::repo::MAINLINE, &rebased, meta)
            {
                Ok(commit) => {
                    inner.states.insert(ticket, TicketState::Landed(commit));
                    inner.landed += 1;
                }
                Err(VcsError::EmptyCommit) => {
                    // The rebase absorbed the patch entirely (someone
                    // landed the same edit): treat as landed at HEAD.
                    let head = inner.repo.head();
                    inner.states.insert(ticket, TicketState::Landed(head));
                    inner.landed += 1;
                }
                Err(e) => {
                    self.reject_locked(&mut inner, ticket, format!("commit failed: {e}"));
                }
            }
        }
        Some(ticket)
    }

    /// Drain the queue.
    pub fn run_until_idle(&self, action: &StepAction) -> usize {
        let mut processed = 0;
        while self.process_next(action).is_some() {
            processed += 1;
        }
        processed
    }

    fn rebase(
        &self,
        submission: &Submission,
        base_tree: &Tree,
        head_tree: &Tree,
        store: sq_vcs::ObjectStore,
    ) -> Result<Patch, VcsError> {
        // Mainline drift since the base = a synthetic patch transforming
        // base_tree into head_tree; merge the developer patch with it.
        let mut drift = Patch::new();
        for path in base_tree.changed_paths(head_tree) {
            match head_tree.get(path) {
                Some(blob) => {
                    let content = store
                        .get_text(&blob)
                        .ok_or_else(|| VcsError::MissingObject(blob.to_hex()))?;
                    drift.push(sq_vcs::FileOp::Write {
                        path: path.clone(),
                        content,
                    });
                }
                None => drift.push(sq_vcs::FileOp::Delete { path: path.clone() }),
            }
        }
        let merged = merge_patches(base_tree, &store, &drift, &submission.patch)?;
        // The drift part is already in HEAD; restrict to paths the
        // developer touched (their ops after merging with the drift).
        let mut rebased = Patch::new();
        let dev_paths: HashSet<&sq_vcs::RepoPath> = submission.patch.paths().collect();
        for op in merged.ops() {
            if dev_paths.contains(op.path()) {
                rebased.push(op.clone());
            }
        }
        Ok(rebased)
    }

    fn reject_locked(&self, inner: &mut Inner, ticket: TicketId, reason: String) {
        inner.states.insert(ticket, TicketState::Rejected(reason));
        inner.rejected += 1;
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        let cs = self.controller.cache_stats();
        let inner = self.inner.lock();
        ServiceStats {
            landed: inner.landed,
            rejected: inner.rejected,
            queued: inner.queue.len(),
            cache_hits: cs.hits,
            cache_misses: cs.misses,
            step_retries: inner.log.step_retries(),
            infra_rebuilds: inner.log.rebuilds() as u64,
            infra_rejected: inner.infra_rejected,
            quarantined: inner.quarantine.len(),
        }
    }

    /// The recovery audit log: every step-retry, rebuild, quarantine,
    /// and infra-rejection decision, in order.
    pub fn recovery_log(&self) -> Vec<RecoveryEvent> {
        self.inner.lock().log.events().to_vec()
    }

    /// Targets quarantined as chronically flaky. Advisory: quarantined
    /// targets still gate landings (skipping them could let a genuinely
    /// red change slip onto mainline); the list tells operators where
    /// the flaky infrastructure is.
    pub fn quarantined_targets(&self) -> Vec<TargetName> {
        self.inner
            .lock()
            .quarantine
            .quarantined()
            .cloned()
            .collect()
    }

    /// Read a file at the current HEAD (inspection helper for examples).
    pub fn read_head_file(&self, path: &str) -> Option<String> {
        let inner = self.inner.lock();
        let p = sq_vcs::RepoPath::new(path).ok()?;
        inner.repo.read_file(inner.repo.head(), &p).ok()
    }

    /// Replay the whole mainline history, rebuilding every commit point
    /// from scratch — the literal "always green" check. The audit runs
    /// under the service's step-retry policy, so infra flakes in the
    /// action are absorbed rather than misreported as red commits; a
    /// fault that survives the retries is reported as *unverifiable*,
    /// not red.
    ///
    /// Returns the number of commit points verified, or the exact
    /// commit (id, mainline position, failing step) that broke the
    /// audit.
    pub fn verify_history(&self, action: &StepAction) -> Result<usize, Box<HistoryViolation>> {
        let inner = self.inner.lock();
        let head = inner.repo.head();
        let infra_err = |index: usize, commit: CommitId, reason: String| {
            Box::new(HistoryViolation {
                commit_index: index,
                commit,
                step: None,
                reason,
                infra: true,
            })
        };
        let log = inner
            .repo
            .log(head)
            .map_err(|e| infra_err(0, head, e.to_string()))?;
        let mut verified = 0;
        for (index, id) in log.iter().rev().enumerate() {
            let tree = inner
                .repo
                .tree_at(*id)
                .map_err(|e| infra_err(index, *id, e.to_string()))?;
            let analysis = SnapshotAnalysis::analyze(&tree, inner.repo.store())
                .map_err(|e| infra_err(index, *id, e.to_string()))?;
            let targets: HashSet<sq_build::TargetName> = analysis.graph.names().cloned().collect();
            let cache = Mutex::new(ArtifactCache::new());
            let report = self.executor.execute_with_recovery(
                &analysis.graph,
                &targets,
                &analysis.hashes,
                &cache,
                &self.recovery.retry,
                |step| action(step, &tree),
            );
            if let Some((step, reason)) = report.failure {
                return Err(Box::new(HistoryViolation {
                    commit_index: index,
                    commit: *id,
                    step: Some(step),
                    reason: format!("failed: {reason}"),
                    infra: false,
                }));
            }
            if let Some((step, fault)) = report.infra_failure {
                return Err(Box::new(HistoryViolation {
                    commit_index: index,
                    commit: *id,
                    step: Some(step),
                    reason: format!("infra fault survived retries: {fault}"),
                    infra: true,
                }));
            }
            verified += 1;
        }
        Ok(verified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_vcs::RepoPath;

    fn always_pass() -> Box<StepAction> {
        Box::new(|_step, _tree| StepOutcome::Success)
    }

    /// Fail any step whose target's sources contain the string "BUG".
    fn fail_on_bug() -> Box<StepAction> {
        Box::new(|step, tree| {
            // The step's package directory is the target's package.
            let pkg = step.target.package().to_string();
            for path in tree.paths_under(&pkg) {
                let _ = path; // content access requires the store; the
                              // service tests instead encode bugs in paths
            }
            if step.target.short_name().contains("bug") {
                StepOutcome::Failure("intentional bug".into())
            } else {
                StepOutcome::Success
            }
        })
    }

    fn demo_repo() -> Repository {
        Repository::init([
            ("lib/BUILD", "library(name = \"lib\", srcs = [\"l.rs\"])"),
            ("lib/l.rs", "pub fn l() {}"),
            (
                "app/BUILD",
                "binary(name = \"app\", srcs = [\"m.rs\"], deps = [\"//lib:lib\"])",
            ),
            ("app/m.rs", "fn main() {}"),
        ])
        .unwrap()
    }

    #[test]
    fn land_a_clean_change() {
        let service = SubmitQueueService::new(demo_repo(), 2);
        let base = service.head();
        let t = service.submit(
            "alice",
            "improve lib",
            base,
            Patch::write(
                RepoPath::new("lib/l.rs").unwrap(),
                "pub fn l() { /* v2 */ }",
            ),
        );
        assert_eq!(service.status(t), Some(TicketState::Queued));
        let action = always_pass();
        service.run_until_idle(&action);
        match service.status(t) {
            Some(TicketState::Landed(commit)) => assert_eq!(service.head(), commit),
            other => panic!("expected landed, got {other:?}"),
        }
        assert_eq!(
            service.read_head_file("lib/l.rs").unwrap(),
            "pub fn l() { /* v2 */ }"
        );
        let stats = service.stats();
        assert_eq!((stats.landed, stats.rejected, stats.queued), (1, 0, 0));
    }

    #[test]
    fn failing_build_step_rejects_and_mainline_unchanged() {
        let mut repo = demo_repo();
        // Add a target whose name triggers the failure action.
        repo.commit_patch(
            sq_vcs::repo::MAINLINE,
            &Patch::from_ops([
                sq_vcs::FileOp::Write {
                    path: RepoPath::new("buggy/BUILD").unwrap(),
                    content: "library(name = \"bugzone\", srcs = [\"b.rs\"])".into(),
                },
                sq_vcs::FileOp::Write {
                    path: RepoPath::new("buggy/b.rs").unwrap(),
                    content: "ok".into(),
                },
            ]),
            CommitMeta::new("setup", "add buggy pkg", 0),
        )
        .unwrap();
        let service = SubmitQueueService::new(repo, 2);
        let head_before = service.head();
        let t = service.submit(
            "bob",
            "touch the buggy package",
            head_before,
            Patch::write(RepoPath::new("buggy/b.rs").unwrap(), "edited"),
        );
        let action = fail_on_bug();
        service.run_until_idle(&action);
        match service.status(t) {
            Some(TicketState::Rejected(reason)) => {
                assert!(reason.contains("intentional bug"), "reason = {reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // The faulty patch never landed: master stays green.
        assert_eq!(service.head(), head_before);
    }

    #[test]
    fn stale_base_gets_rebased() {
        let service = SubmitQueueService::new(demo_repo(), 2);
        let old_base = service.head();
        let action = always_pass();
        // First change lands, moving HEAD.
        service.submit(
            "alice",
            "edit app",
            old_base,
            Patch::write(RepoPath::new("app/m.rs").unwrap(), "fn main() { /* a */ }"),
        );
        service.run_until_idle(&action);
        let mid = service.head();
        assert_ne!(mid, old_base);
        // Second change was developed against the *old* base but touches
        // a different file: the rebase integrates it.
        let t2 = service.submit(
            "bob",
            "edit lib from a stale branch",
            old_base,
            Patch::write(RepoPath::new("lib/l.rs").unwrap(), "pub fn l() { /* b */ }"),
        );
        service.run_until_idle(&action);
        assert!(matches!(service.status(t2), Some(TicketState::Landed(_))));
        // Both edits are present at HEAD.
        assert_eq!(
            service.read_head_file("app/m.rs").unwrap(),
            "fn main() { /* a */ }"
        );
        assert_eq!(
            service.read_head_file("lib/l.rs").unwrap(),
            "pub fn l() { /* b */ }"
        );
    }

    #[test]
    fn textual_conflict_on_rebase_rejects() {
        let service = SubmitQueueService::new(demo_repo(), 2);
        let base = service.head();
        let action = always_pass();
        service.submit(
            "alice",
            "first writer",
            base,
            Patch::write(RepoPath::new("lib/l.rs").unwrap(), "alice version"),
        );
        service.run_until_idle(&action);
        let t2 = service.submit(
            "bob",
            "second writer, same file, stale base",
            base,
            Patch::write(RepoPath::new("lib/l.rs").unwrap(), "bob version"),
        );
        service.run_until_idle(&action);
        match service.status(t2) {
            Some(TicketState::Rejected(reason)) => {
                assert!(reason.contains("merge conflict"), "reason = {reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(service.read_head_file("lib/l.rs").unwrap(), "alice version");
    }

    #[test]
    fn artifact_cache_accumulates_across_changes() {
        let service = SubmitQueueService::new(demo_repo(), 2);
        let action = always_pass();
        for i in 0..3 {
            let base = service.head();
            service.submit(
                "alice",
                format!("lib v{i}"),
                base,
                Patch::write(
                    RepoPath::new("lib/l.rs").unwrap(),
                    format!("pub fn l() {{ /* v{i} */ }}"),
                ),
            );
            service.run_until_idle(&action);
        }
        let stats = service.stats();
        assert_eq!(stats.landed, 3);
        assert!(stats.cache_misses > 0);
    }

    #[test]
    fn verify_history_confirms_green_mainline() {
        let service = SubmitQueueService::new(demo_repo(), 2);
        let action = always_pass();
        for i in 0..3 {
            let base = service.head();
            service.submit(
                "alice",
                format!("v{i}"),
                base,
                Patch::write(
                    RepoPath::new("app/m.rs").unwrap(),
                    format!("fn main() {{ /* {i} */ }}"),
                ),
            );
            service.run_until_idle(&action);
        }
        let verified = service.verify_history(&action).unwrap();
        assert_eq!(verified, 4); // root + 3 commits
    }

    #[test]
    fn verify_history_pinpoints_the_bad_commit() {
        // Plant a bad commit directly on mainline (bypassing the queue,
        // as if the gate had been circumvented), then audit.
        let mut repo = demo_repo();
        let planted = repo
            .commit_patch(
                sq_vcs::repo::MAINLINE,
                &Patch::from_ops([
                    sq_vcs::FileOp::Write {
                        path: RepoPath::new("buggy/BUILD").unwrap(),
                        content: "library(name = \"bugzone\", srcs = [\"b.rs\"])".into(),
                    },
                    sq_vcs::FileOp::Write {
                        path: RepoPath::new("buggy/b.rs").unwrap(),
                        content: "broken".into(),
                    },
                ]),
                CommitMeta::new("rogue", "sneak a red target in", 0),
            )
            .unwrap();
        let service = SubmitQueueService::new(repo, 2);
        // A good change lands on top of the planted commit.
        let base = service.head();
        service.submit(
            "alice",
            "innocent lib edit",
            base,
            Patch::write(
                RepoPath::new("lib/l.rs").unwrap(),
                "pub fn l() { /* ok */ }",
            ),
        );
        // Landing succeeds: the gate only rebuilds *affected* targets,
        // and the lib edit does not touch the planted red target.
        service.run_until_idle(&always_pass());
        // The from-scratch audit rebuilds everything and catches it.
        let violation = service.verify_history(&fail_on_bug()).unwrap_err();
        assert_eq!(violation.commit, planted);
        assert_eq!(violation.commit_index, 1); // root is #0
        assert!(!violation.infra);
        let step = violation.step.as_ref().expect("failing step reported");
        assert!(step.target.to_string().contains("bugzone"));
        assert!(violation.reason.contains("intentional bug"));
        let shown = violation.to_string();
        assert!(shown.contains(&planted.to_string()), "display: {shown}");
        assert!(shown.contains("bugzone"), "display: {shown}");
    }

    #[test]
    fn infra_red_build_is_rebuilt_not_rejected() {
        use sq_exec::{InfraFault, InfraFaultKind, RetryPolicy};
        use std::sync::atomic::{AtomicU32, Ordering};
        let config = RecoveryConfig {
            retry: RetryPolicy::none(), // no step retries: force whole-build redos
            max_rebuilds: 2,
            quarantine_threshold: u32::MAX,
        };
        let service = SubmitQueueService::with_recovery(demo_repo(), 2, config);
        let base = service.head();
        let t = service.submit(
            "alice",
            "lands despite a crashed worker",
            base,
            Patch::write(RepoPath::new("lib/l.rs").unwrap(), "pub fn l() { /* r */ }"),
        );
        // The very first step call crashes; every later call succeeds.
        let calls = AtomicU32::new(0);
        let action: Box<StepAction> = Box::new(move |_step, _tree| {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                StepOutcome::InfraFailure(InfraFault {
                    kind: InfraFaultKind::WorkerCrash,
                    attempt: 1,
                })
            } else {
                StepOutcome::Success
            }
        });
        service.run_until_idle(&action);
        assert!(matches!(service.status(t), Some(TicketState::Landed(_))));
        let stats = service.stats();
        assert_eq!((stats.landed, stats.rejected), (1, 0));
        assert_eq!(stats.infra_rebuilds, 1);
        let log = service.recovery_log();
        assert!(log
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Rebuild { attempt: 1, .. })));
    }

    #[test]
    fn exhausted_rebuilds_reject_with_infrastructure_reason() {
        use sq_exec::{InfraFault, InfraFaultKind, RetryPolicy};
        let config = RecoveryConfig {
            retry: RetryPolicy::none(),
            max_rebuilds: 1,
            quarantine_threshold: u32::MAX,
        };
        let service = SubmitQueueService::with_recovery(demo_repo(), 2, config);
        let head_before = service.head();
        let t = service.submit(
            "bob",
            "doomed by the cluster",
            head_before,
            Patch::write(RepoPath::new("app/m.rs").unwrap(), "fn main() { /* x */ }"),
        );
        let action: Box<StepAction> = Box::new(|_step, _tree| {
            StepOutcome::InfraFailure(InfraFault {
                kind: InfraFaultKind::Timeout,
                attempt: 1,
            })
        });
        service.run_until_idle(&action);
        match service.status(t) {
            Some(TicketState::Rejected(reason)) => {
                assert!(reason.contains("infrastructure"), "reason = {reason}");
                assert!(reason.contains("change not at fault"), "reason = {reason}");
            }
            other => panic!("expected infra rejection, got {other:?}"),
        }
        assert_eq!(service.head(), head_before);
        let stats = service.stats();
        assert_eq!(stats.infra_rejected, 1);
        assert_eq!(stats.infra_rebuilds, 1); // one redo, then gave up
        assert_eq!(
            service
                .recovery_log()
                .iter()
                .filter(|e| matches!(e, RecoveryEvent::InfraRejected { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn chronic_flakes_quarantine_the_target_but_changes_still_land() {
        use sq_exec::{InfraFault, InfraFaultKind, RetryPolicy};
        use std::collections::HashMap as StdHashMap;
        let config = RecoveryConfig {
            retry: RetryPolicy::standard(3, 11),
            max_rebuilds: 2,
            quarantine_threshold: 2,
        };
        let service = SubmitQueueService::with_recovery(demo_repo(), 2, config);
        // The lib compile flakes on every odd-numbered call (so: once
        // per landing, since each flake is retried to success); retries
        // absorb each flake and every change still lands.
        let seen: Mutex<StdHashMap<BuildStep, u32>> = Mutex::new(StdHashMap::new());
        let action: Box<StepAction> = Box::new(move |step, _tree| {
            let is_lib_compile = step.target.to_string().contains("//lib")
                && step.kind == sq_exec::StepKind::Compile;
            let mut seen = seen.lock();
            let n = seen.entry(step.clone()).or_insert(0);
            *n += 1;
            if is_lib_compile && *n % 2 == 1 {
                StepOutcome::InfraFailure(InfraFault {
                    kind: InfraFaultKind::TransientTooling,
                    attempt: 1,
                })
            } else {
                StepOutcome::Success
            }
        });
        for i in 0..2 {
            let base = service.head();
            service.submit(
                "alice",
                format!("lib v{i}"),
                base,
                Patch::write(
                    RepoPath::new("lib/l.rs").unwrap(),
                    format!("pub fn l() {{ /* q{i} */ }}"),
                ),
            );
            service.run_until_idle(&action);
        }
        let stats = service.stats();
        assert_eq!((stats.landed, stats.rejected), (2, 0));
        assert_eq!(stats.step_retries, 2);
        // Two observed flakes on //lib:lib crossed the threshold.
        let quarantined = service.quarantined_targets();
        assert_eq!(quarantined.len(), 1);
        assert!(quarantined[0].to_string().contains("//lib"));
        assert!(service.recovery_log().iter().any(|e| matches!(
            e,
            RecoveryEvent::Quarantined {
                observations: 2,
                ..
            }
        )));
        // Quarantine is advisory: the audit still verifies everything.
        assert!(service.verify_history(&always_pass()).is_ok());
    }
}
