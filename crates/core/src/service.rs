//! An embeddable SubmitQueue service over a real repository.
//!
//! The simulations measure *scheduling policy*; this module wires the
//! full concrete stack together the way the paper's production system
//! does (Section 7.1's API service + core service, minus the RPC):
//! patches land against a live `sq-vcs` repository, the Section 5
//! conflict analyzer decides independence, the `sq-exec` executor runs
//! real build steps with artifact caching, and a change commits only if
//! every step passes — so the mainline is green at every commit point,
//! by construction, and `verify_history` re-checks it from scratch.

use parking_lot::Mutex;
use sq_build::affected::SnapshotAnalysis;
use sq_build::AffectedSet;
use sq_exec::{ArtifactCache, BuildController, BuildStep, RealExecutor, StepOutcome};
use sq_vcs::merge::merge_patches;
use sq_vcs::{CommitId, CommitMeta, Patch, Repository, Tree, VcsError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Ticket identifying a submitted change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TicketId(pub u64);

impl fmt::Display for TicketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// State of a submitted change (what the paper's web UI shows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TicketState {
    /// Enqueued, not yet processed.
    Queued,
    /// Landed at this mainline commit.
    Landed(CommitId),
    /// Rejected with a reason.
    Rejected(String),
}

/// A step action: decides the outcome of one build step given the
/// snapshot it runs against. Runs on executor worker threads.
pub type StepAction = dyn Fn(&BuildStep, &Tree) -> StepOutcome + Send + Sync;

struct Submission {
    ticket: TicketId,
    author: String,
    description: String,
    /// The mainline commit the patch was developed against.
    base: CommitId,
    patch: Patch,
}

struct Inner {
    repo: Repository,
    queue: VecDeque<Submission>,
    states: HashMap<TicketId, TicketState>,
    next_ticket: u64,
    landed: u64,
    rejected: u64,
}

/// The service.
pub struct SubmitQueueService {
    inner: Mutex<Inner>,
    /// Incremental builds for landing changes (persistent artifact cache
    /// + duration history — the paper's Section 6 controller).
    controller: BuildController,
    /// From-scratch builds for `verify_history` (no cache reuse: the
    /// audit must not trust prior artifacts).
    executor: RealExecutor,
}

/// Service statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Changes landed.
    pub landed: u64,
    /// Changes rejected.
    pub rejected: u64,
    /// Changes still queued.
    pub queued: usize,
    /// Artifact-cache hit/miss counters.
    pub cache_hits: u64,
    /// Artifact-cache misses.
    pub cache_misses: u64,
}

impl SubmitQueueService {
    /// Wrap a repository; `threads` sizes the build executor.
    pub fn new(repo: Repository, threads: usize) -> Self {
        SubmitQueueService {
            inner: Mutex::new(Inner {
                repo,
                queue: VecDeque::new(),
                states: HashMap::new(),
                next_ticket: 1,
                landed: 0,
                rejected: 0,
            }),
            controller: BuildController::new(threads),
            executor: RealExecutor::new(threads),
        }
    }

    /// The current mainline HEAD.
    pub fn head(&self) -> CommitId {
        self.inner.lock().repo.head()
    }

    /// Submit a change: a patch made against `base` (usually the HEAD the
    /// developer branched from — step 5 of the Figure 3 life cycle).
    pub fn submit(
        &self,
        author: impl Into<String>,
        description: impl Into<String>,
        base: CommitId,
        patch: Patch,
    ) -> TicketId {
        let mut inner = self.inner.lock();
        let ticket = TicketId(inner.next_ticket);
        inner.next_ticket += 1;
        inner.states.insert(ticket, TicketState::Queued);
        inner.queue.push_back(Submission {
            ticket,
            author: author.into(),
            description: description.into(),
            base,
            patch,
        });
        ticket
    }

    /// The state of a change (the service's second API call).
    pub fn status(&self, ticket: TicketId) -> Option<TicketState> {
        self.inner.lock().states.get(&ticket).cloned()
    }

    /// Process one queued change end to end. Returns the ticket handled,
    /// or `None` if the queue was empty.
    ///
    /// Pipeline: rebase (three-way merge onto the current HEAD) →
    /// affected-target analysis → real builds of every affected target →
    /// commit on success.
    pub fn process_next(&self, action: &StepAction) -> Option<TicketId> {
        // Take the submission under the lock, then build outside it so
        // parallel status queries stay responsive.
        let (submission, base_tree, head, head_tree, store) = {
            let mut inner = self.inner.lock();
            let submission = inner.queue.pop_front()?;
            let base_tree = match inner.repo.tree_at(submission.base) {
                Ok(t) => t,
                Err(e) => {
                    let ticket = submission.ticket;
                    self.reject_locked(&mut inner, ticket, format!("bad base: {e}"));
                    return Some(ticket);
                }
            };
            let head = inner.repo.head();
            let head_tree = inner.repo.head_tree().expect("mainline readable");
            let store = inner.repo.store().clone();
            (submission, base_tree, head, head_tree, store)
        };
        let ticket = submission.ticket;

        // 1. Rebase: merge the patch with what landed since its base.
        let rebased = match self.rebase(&submission, &base_tree, &head_tree, store.clone()) {
            Ok(p) => p,
            Err(e) => {
                let mut inner = self.inner.lock();
                self.reject_locked(&mut inner, ticket, format!("merge conflict: {e}"));
                return Some(ticket);
            }
        };

        // 2. Analyze: affected targets of the rebased patch on HEAD.
        let mut store = store;
        let base_analysis = match SnapshotAnalysis::analyze(&head_tree, &store) {
            Ok(a) => a,
            Err(e) => {
                let mut inner = self.inner.lock();
                self.reject_locked(&mut inner, ticket, format!("HEAD unanalyzable: {e}"));
                return Some(ticket);
            }
        };
        let new_tree = match rebased.apply(&head_tree, &mut store) {
            Ok(t) => t,
            Err(e) => {
                let mut inner = self.inner.lock();
                self.reject_locked(&mut inner, ticket, format!("patch failed to apply: {e}"));
                return Some(ticket);
            }
        };
        let new_analysis = match SnapshotAnalysis::analyze(&new_tree, &store) {
            Ok(a) => a,
            Err(e) => {
                let mut inner = self.inner.lock();
                self.reject_locked(&mut inner, ticket, format!("build graph broken: {e}"));
                return Some(ticket);
            }
        };
        let delta = AffectedSet::between(&base_analysis, &new_analysis);

        // 3. Build every affected target for real (incremental via the
        // controller's artifact cache + duration history).
        let tree_for_action = new_tree.clone();
        let report = self.controller.execute_affected(
            &new_analysis.graph,
            &new_analysis.hashes,
            &delta,
            |step| action(step, &tree_for_action),
        );
        {
            let mut inner = self.inner.lock();
            if let Some((step, reason)) = report.exec.failure {
                self.reject_locked(
                    &mut inner,
                    ticket,
                    format!("build step '{step}' failed: {reason}"),
                );
                return Some(ticket);
            }
            // 4. Commit — but only if HEAD did not move underneath us
            // (single-threaded processing here; the check keeps the
            // invariant explicit).
            if inner.repo.head() != head {
                // Retry by re-queueing at the front with the same base.
                inner.queue.push_front(submission);
                return Some(ticket);
            }
            let meta = CommitMeta::new(
                submission.author.clone(),
                format!("[{}] {}", ticket, submission.description),
                0,
            );
            match inner
                .repo
                .commit_patch(sq_vcs::repo::MAINLINE, &rebased, meta)
            {
                Ok(commit) => {
                    inner.states.insert(ticket, TicketState::Landed(commit));
                    inner.landed += 1;
                }
                Err(VcsError::EmptyCommit) => {
                    // The rebase absorbed the patch entirely (someone
                    // landed the same edit): treat as landed at HEAD.
                    let head = inner.repo.head();
                    inner.states.insert(ticket, TicketState::Landed(head));
                    inner.landed += 1;
                }
                Err(e) => {
                    self.reject_locked(&mut inner, ticket, format!("commit failed: {e}"));
                }
            }
        }
        Some(ticket)
    }

    /// Drain the queue.
    pub fn run_until_idle(&self, action: &StepAction) -> usize {
        let mut processed = 0;
        while self.process_next(action).is_some() {
            processed += 1;
        }
        processed
    }

    fn rebase(
        &self,
        submission: &Submission,
        base_tree: &Tree,
        head_tree: &Tree,
        store: sq_vcs::ObjectStore,
    ) -> Result<Patch, VcsError> {
        // Mainline drift since the base = a synthetic patch transforming
        // base_tree into head_tree; merge the developer patch with it.
        let mut drift = Patch::new();
        for path in base_tree.changed_paths(head_tree) {
            match head_tree.get(path) {
                Some(blob) => {
                    let content = store
                        .get_text(&blob)
                        .ok_or_else(|| VcsError::MissingObject(blob.to_hex()))?;
                    drift.push(sq_vcs::FileOp::Write {
                        path: path.clone(),
                        content,
                    });
                }
                None => drift.push(sq_vcs::FileOp::Delete { path: path.clone() }),
            }
        }
        let merged = merge_patches(base_tree, &store, &drift, &submission.patch)?;
        // The drift part is already in HEAD; restrict to paths the
        // developer touched (their ops after merging with the drift).
        let mut rebased = Patch::new();
        let dev_paths: HashSet<&sq_vcs::RepoPath> = submission.patch.paths().collect();
        for op in merged.ops() {
            if dev_paths.contains(op.path()) {
                rebased.push(op.clone());
            }
        }
        Ok(rebased)
    }

    fn reject_locked(&self, inner: &mut Inner, ticket: TicketId, reason: String) {
        inner.states.insert(ticket, TicketState::Rejected(reason));
        inner.rejected += 1;
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        let cs = self.controller.cache_stats();
        let inner = self.inner.lock();
        ServiceStats {
            landed: inner.landed,
            rejected: inner.rejected,
            queued: inner.queue.len(),
            cache_hits: cs.hits,
            cache_misses: cs.misses,
        }
    }

    /// Read a file at the current HEAD (inspection helper for examples).
    pub fn read_head_file(&self, path: &str) -> Option<String> {
        let inner = self.inner.lock();
        let p = sq_vcs::RepoPath::new(path).ok()?;
        inner.repo.read_file(inner.repo.head(), &p).ok()
    }

    /// Replay the whole mainline history, rebuilding every commit point
    /// from scratch — the literal "always green" check.
    ///
    /// Returns the number of commit points verified.
    pub fn verify_history(&self, action: &StepAction) -> Result<usize, String> {
        let inner = self.inner.lock();
        let log = inner
            .repo
            .log(inner.repo.head())
            .map_err(|e| e.to_string())?;
        let mut verified = 0;
        for id in log.iter().rev() {
            let tree = inner.repo.tree_at(*id).map_err(|e| e.to_string())?;
            let analysis =
                SnapshotAnalysis::analyze(&tree, inner.repo.store()).map_err(|e| e.to_string())?;
            let targets: HashSet<sq_build::TargetName> = analysis.graph.names().cloned().collect();
            let cache = Mutex::new(ArtifactCache::new());
            let report = self.executor.execute(
                &analysis.graph,
                &targets,
                &analysis.hashes,
                &cache,
                |step| action(step, &tree),
            );
            if let Some((step, reason)) = report.failure {
                return Err(format!(
                    "commit {id} is red: step '{step}' failed: {reason}"
                ));
            }
            verified += 1;
        }
        Ok(verified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_vcs::RepoPath;

    fn always_pass() -> Box<StepAction> {
        Box::new(|_step, _tree| StepOutcome::Success)
    }

    /// Fail any step whose target's sources contain the string "BUG".
    fn fail_on_bug() -> Box<StepAction> {
        Box::new(|step, tree| {
            // The step's package directory is the target's package.
            let pkg = step.target.package().to_string();
            for path in tree.paths_under(&pkg) {
                let _ = path; // content access requires the store; the
                              // service tests instead encode bugs in paths
            }
            if step.target.short_name().contains("bug") {
                StepOutcome::Failure("intentional bug".into())
            } else {
                StepOutcome::Success
            }
        })
    }

    fn demo_repo() -> Repository {
        Repository::init([
            ("lib/BUILD", "library(name = \"lib\", srcs = [\"l.rs\"])"),
            ("lib/l.rs", "pub fn l() {}"),
            (
                "app/BUILD",
                "binary(name = \"app\", srcs = [\"m.rs\"], deps = [\"//lib:lib\"])",
            ),
            ("app/m.rs", "fn main() {}"),
        ])
        .unwrap()
    }

    #[test]
    fn land_a_clean_change() {
        let service = SubmitQueueService::new(demo_repo(), 2);
        let base = service.head();
        let t = service.submit(
            "alice",
            "improve lib",
            base,
            Patch::write(
                RepoPath::new("lib/l.rs").unwrap(),
                "pub fn l() { /* v2 */ }",
            ),
        );
        assert_eq!(service.status(t), Some(TicketState::Queued));
        let action = always_pass();
        service.run_until_idle(&action);
        match service.status(t) {
            Some(TicketState::Landed(commit)) => assert_eq!(service.head(), commit),
            other => panic!("expected landed, got {other:?}"),
        }
        assert_eq!(
            service.read_head_file("lib/l.rs").unwrap(),
            "pub fn l() { /* v2 */ }"
        );
        let stats = service.stats();
        assert_eq!((stats.landed, stats.rejected, stats.queued), (1, 0, 0));
    }

    #[test]
    fn failing_build_step_rejects_and_mainline_unchanged() {
        let mut repo = demo_repo();
        // Add a target whose name triggers the failure action.
        repo.commit_patch(
            sq_vcs::repo::MAINLINE,
            &Patch::from_ops([
                sq_vcs::FileOp::Write {
                    path: RepoPath::new("buggy/BUILD").unwrap(),
                    content: "library(name = \"bugzone\", srcs = [\"b.rs\"])".into(),
                },
                sq_vcs::FileOp::Write {
                    path: RepoPath::new("buggy/b.rs").unwrap(),
                    content: "ok".into(),
                },
            ]),
            CommitMeta::new("setup", "add buggy pkg", 0),
        )
        .unwrap();
        let service = SubmitQueueService::new(repo, 2);
        let head_before = service.head();
        let t = service.submit(
            "bob",
            "touch the buggy package",
            head_before,
            Patch::write(RepoPath::new("buggy/b.rs").unwrap(), "edited"),
        );
        let action = fail_on_bug();
        service.run_until_idle(&action);
        match service.status(t) {
            Some(TicketState::Rejected(reason)) => {
                assert!(reason.contains("intentional bug"), "reason = {reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // The faulty patch never landed: master stays green.
        assert_eq!(service.head(), head_before);
    }

    #[test]
    fn stale_base_gets_rebased() {
        let service = SubmitQueueService::new(demo_repo(), 2);
        let old_base = service.head();
        let action = always_pass();
        // First change lands, moving HEAD.
        service.submit(
            "alice",
            "edit app",
            old_base,
            Patch::write(RepoPath::new("app/m.rs").unwrap(), "fn main() { /* a */ }"),
        );
        service.run_until_idle(&action);
        let mid = service.head();
        assert_ne!(mid, old_base);
        // Second change was developed against the *old* base but touches
        // a different file: the rebase integrates it.
        let t2 = service.submit(
            "bob",
            "edit lib from a stale branch",
            old_base,
            Patch::write(RepoPath::new("lib/l.rs").unwrap(), "pub fn l() { /* b */ }"),
        );
        service.run_until_idle(&action);
        assert!(matches!(service.status(t2), Some(TicketState::Landed(_))));
        // Both edits are present at HEAD.
        assert_eq!(
            service.read_head_file("app/m.rs").unwrap(),
            "fn main() { /* a */ }"
        );
        assert_eq!(
            service.read_head_file("lib/l.rs").unwrap(),
            "pub fn l() { /* b */ }"
        );
    }

    #[test]
    fn textual_conflict_on_rebase_rejects() {
        let service = SubmitQueueService::new(demo_repo(), 2);
        let base = service.head();
        let action = always_pass();
        service.submit(
            "alice",
            "first writer",
            base,
            Patch::write(RepoPath::new("lib/l.rs").unwrap(), "alice version"),
        );
        service.run_until_idle(&action);
        let t2 = service.submit(
            "bob",
            "second writer, same file, stale base",
            base,
            Patch::write(RepoPath::new("lib/l.rs").unwrap(), "bob version"),
        );
        service.run_until_idle(&action);
        match service.status(t2) {
            Some(TicketState::Rejected(reason)) => {
                assert!(reason.contains("merge conflict"), "reason = {reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(service.read_head_file("lib/l.rs").unwrap(), "alice version");
    }

    #[test]
    fn artifact_cache_accumulates_across_changes() {
        let service = SubmitQueueService::new(demo_repo(), 2);
        let action = always_pass();
        for i in 0..3 {
            let base = service.head();
            service.submit(
                "alice",
                format!("lib v{i}"),
                base,
                Patch::write(
                    RepoPath::new("lib/l.rs").unwrap(),
                    format!("pub fn l() {{ /* v{i} */ }}"),
                ),
            );
            service.run_until_idle(&action);
        }
        let stats = service.stats();
        assert_eq!(stats.landed, 3);
        assert!(stats.cache_misses > 0);
    }

    #[test]
    fn verify_history_confirms_green_mainline() {
        let service = SubmitQueueService::new(demo_repo(), 2);
        let action = always_pass();
        for i in 0..3 {
            let base = service.head();
            service.submit(
                "alice",
                format!("v{i}"),
                base,
                Patch::write(
                    RepoPath::new("app/m.rs").unwrap(),
                    format!("fn main() {{ /* {i} */ }}"),
                ),
            );
            service.run_until_idle(&action);
        }
        let verified = service.verify_history(&action).unwrap();
        assert_eq!(verified, 4); // root + 3 commits
    }
}
