//! Scheduling strategies: SubmitQueue and the Section 8 baselines.
//!
//! All strategies answer the same question each planning round: *which
//! builds should occupy the workers right now?* They differ exactly as
//! the paper describes:
//!
//! * **SubmitQueue** — probabilistic speculation with the learned models.
//! * **Oracle** — perfect prediction; emits only the n realized-path
//!   builds. All Section 8 numbers are normalized against it.
//! * **Speculate-all** — 50/50 odds on everything, which floods the
//!   workers with the whole speculation graph breadth-first.
//! * **Optimistic** (Zuul) — one build per change assuming every earlier
//!   pending change succeeds.
//! * **Single-Queue** (Bors) — conflicting changes build strictly one at
//!   a time; independent changes proceed in parallel.

use crate::analyzer::ConflictGraph;
use crate::predict::{
    LearnedPredictor, OptimisticPredictor, OraclePredictor, Predictor, SpeculationCounters,
    UniformPredictor,
};
use crate::speculation::{BuildKey, PlannedBuild, SpeculationEngine};
use sq_workload::{ChangeId, ChangeSpec, Workload};
use std::collections::HashMap;

/// Which scheduling policy a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// The paper's system.
    SubmitQueue,
    /// Perfect-foresight normalization baseline.
    Oracle,
    /// Speculate on every outcome with 50/50 odds.
    SpeculateAll,
    /// Zuul-style optimistic pipelines.
    Optimistic,
    /// Bors-style serial queue (with independent-change parallelism).
    SingleQueue,
}

impl StrategyKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::SubmitQueue => "SubmitQueue",
            StrategyKind::Oracle => "Oracle",
            StrategyKind::SpeculateAll => "Speculate-all",
            StrategyKind::Optimistic => "Optimistic",
            StrategyKind::SingleQueue => "Single-Queue",
        }
    }

    /// Number of strategies. The single source of truth for matrix
    /// sizing: [`StrategyKind::all`] returns exactly this many entries,
    /// so scenario/benchmark matrices sized or checked against `COUNT`
    /// cannot silently drop a newly added strategy.
    pub const COUNT: usize = 5;

    /// All strategies, in the paper's reporting order.
    pub fn all() -> [StrategyKind; Self::COUNT] {
        [
            StrategyKind::SubmitQueue,
            StrategyKind::Oracle,
            StrategyKind::SpeculateAll,
            StrategyKind::Optimistic,
            StrategyKind::SingleQueue,
        ]
    }
}

/// A strategy instance (policy + any trained models).
///
/// A `Strategy` is bound to one workload: the Oracle carries that
/// workload's ground truth, and SubmitQueue memoizes pair-conflict
/// probabilities by change id. Build a fresh instance per workload
/// (different replay *rates* of the same trace share change identities
/// and may share an instance).
pub enum Strategy {
    /// SubmitQueue with its trained predictor (conflict probabilities
    /// memoized across planning rounds).
    SubmitQueue(MemoizedLearned),
    /// The oracle for a specific workload.
    Oracle(OraclePredictor),
    /// Speculate-all.
    SpeculateAll,
    /// Optimistic.
    Optimistic,
    /// Single-queue.
    SingleQueue,
}

impl Strategy {
    /// Instantiate a strategy for `workload`. SubmitQueue trains its
    /// models on `history` (a disjoint workload from the same
    /// generative process, like the paper's historical changes).
    pub fn build(kind: StrategyKind, workload: &Workload, history: Option<&Workload>) -> Strategy {
        match kind {
            StrategyKind::SubmitQueue => {
                let history = history.expect("SubmitQueue needs training history");
                let (predictor, _) = LearnedPredictor::train(history, 0xFEED);
                Strategy::SubmitQueue(MemoizedLearned::new(predictor))
            }
            StrategyKind::Oracle => Strategy::Oracle(OraclePredictor::new(workload)),
            StrategyKind::SpeculateAll => Strategy::SpeculateAll,
            StrategyKind::Optimistic => Strategy::Optimistic,
            StrategyKind::SingleQueue => Strategy::SingleQueue,
        }
    }

    /// Reuse an already-trained predictor (the benchmark grid trains one
    /// model and shares it across cells).
    pub fn submit_queue_with(predictor: LearnedPredictor) -> Strategy {
        Strategy::SubmitQueue(MemoizedLearned::new(predictor))
    }

    /// The kind of this instance.
    pub fn kind(&self) -> StrategyKind {
        match self {
            Strategy::SubmitQueue(_) => StrategyKind::SubmitQueue,
            Strategy::Oracle(_) => StrategyKind::Oracle,
            Strategy::SpeculateAll => StrategyKind::SpeculateAll,
            Strategy::Optimistic => StrategyKind::Optimistic,
            Strategy::SingleQueue => StrategyKind::SingleQueue,
        }
    }

    /// The desired builds for the current pending set, best first, at
    /// most `budget` entries.
    ///
    /// `pending` is sorted by id; `graph` covers exactly the pending set;
    /// `counters` holds dynamic speculation counts.
    pub fn desired_builds(
        &self,
        workload: &Workload,
        pending: &[&ChangeSpec],
        graph: &ConflictGraph,
        counters: &HashMap<ChangeId, SpeculationCounters>,
        fixed: &HashMap<ChangeId, Vec<ChangeId>>,
        budget: usize,
    ) -> Vec<PlannedBuild> {
        match self {
            Strategy::SubmitQueue(p) => SpeculationEngine::select_builds(
                workload, pending, graph, p, counters, fixed, budget,
            ),
            Strategy::Oracle(p) => SpeculationEngine::select_builds(
                workload, pending, graph, p, counters, fixed, budget,
            ),
            Strategy::SpeculateAll => SpeculationEngine::select_builds(
                workload,
                pending,
                graph,
                &UniformPredictor,
                counters,
                fixed,
                budget,
            ),
            Strategy::Optimistic => {
                // One build per change: assume every earlier conflicting
                // pending change commits (the single most-optimistic path;
                // the OptimisticPredictor would produce the same keys
                // through the engine, listed here directly for clarity).
                let _ = OptimisticPredictor; // policy equivalence documented above
                pending
                    .iter()
                    .take(budget)
                    .map(|c| PlannedBuild {
                        key: BuildKey {
                            subject: c.id,
                            assumed: graph.earlier_conflicts(c.id),
                        },
                        value: 1.0,
                    })
                    .collect()
            }
            Strategy::SingleQueue => {
                // Only changes whose earlier conflicts are all resolved
                // may build; they build against the exact committed
                // prefix (empty pattern here; the planner unions in the
                // fixed committed prefix).
                pending
                    .iter()
                    .filter(|c| graph.earlier_conflicts(c.id).is_empty())
                    .take(budget)
                    .map(|c| PlannedBuild {
                        key: BuildKey {
                            subject: c.id,
                            assumed: Vec::new(),
                        },
                        value: 1.0,
                    })
                    .collect()
            }
        }
    }
}

/// Owning `P_conf` memoization around the learned models: pair-conflict
/// probabilities are pure functions of the two changes, and the planner
/// replans on every event, so caching eliminates the dominant prediction
/// cost (an O(pending²) model evaluation per round without the
/// analyzer). Bound to one workload's change-id space.
pub struct MemoizedLearned {
    inner: LearnedPredictor,
    conflict_cache: std::cell::RefCell<HashMap<(ChangeId, ChangeId), f64>>,
}

impl MemoizedLearned {
    /// Wrap a trained predictor.
    pub fn new(inner: LearnedPredictor) -> Self {
        MemoizedLearned {
            inner,
            conflict_cache: std::cell::RefCell::new(HashMap::new()),
        }
    }
}

impl Predictor for MemoizedLearned {
    fn p_success(&self, w: &Workload, c: &ChangeSpec, k: SpeculationCounters) -> f64 {
        self.inner.p_success(w, c, k)
    }

    fn p_conflict(&self, w: &Workload, a: &ChangeSpec, b: &ChangeSpec) -> f64 {
        let key = if a.id.0 <= b.id.0 {
            (a.id, b.id)
        } else {
            (b.id, a.id)
        };
        if let Some(&v) = self.conflict_cache.borrow().get(&key) {
            return v;
        }
        let v = self.inner.p_conflict(w, a, b);
        self.conflict_cache.borrow_mut().insert(key, v);
        v
    }
}

/// Borrowing `P_conf` memoization wrapper (same idea as
/// [`MemoizedLearned`] for arbitrary predictors).
pub struct CachedPredictor<'a, P: Predictor> {
    inner: &'a P,
    conflict_cache: std::cell::RefCell<HashMap<(ChangeId, ChangeId), f64>>,
}

impl<'a, P: Predictor> CachedPredictor<'a, P> {
    /// Wrap a predictor.
    pub fn new(inner: &'a P) -> Self {
        CachedPredictor {
            inner,
            conflict_cache: std::cell::RefCell::new(HashMap::new()),
        }
    }
}

impl<'a, P: Predictor> Predictor for CachedPredictor<'a, P> {
    fn p_success(&self, w: &Workload, c: &ChangeSpec, k: SpeculationCounters) -> f64 {
        self.inner.p_success(w, c, k)
    }

    fn p_conflict(&self, w: &Workload, a: &ChangeSpec, b: &ChangeSpec) -> f64 {
        let key = if a.id.0 <= b.id.0 {
            (a.id, b.id)
        } else {
            (b.id, a.id)
        };
        if let Some(&v) = self.conflict_cache.borrow().get(&key) {
            return v;
        }
        let v = self.inner.p_conflict(w, a, b);
        self.conflict_cache.borrow_mut().insert(key, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::StatisticalAnalyzer;
    use sq_workload::{WorkloadBuilder, WorkloadParams};

    fn setup(n: usize) -> (Workload, ConflictGraph, Vec<usize>) {
        let w = WorkloadBuilder::new(WorkloadParams::ios())
            .seed(33)
            .n_changes(n)
            .build()
            .unwrap();
        let mut analyzer = StatisticalAnalyzer::new();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&ChangeSpec> = Vec::new();
        for c in &w.changes[..n] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        (w, g, (0..n).collect())
    }

    #[test]
    fn optimistic_emits_one_build_per_change() {
        let (w, g, _) = setup(10);
        let pending: Vec<&ChangeSpec> = w.changes[..10].iter().collect();
        let builds = Strategy::Optimistic.desired_builds(
            &w,
            &pending,
            &g,
            &HashMap::new(),
            &HashMap::new(),
            100,
        );
        assert_eq!(builds.len(), 10);
        for (b, c) in builds.iter().zip(&pending) {
            assert_eq!(b.key.subject, c.id);
            assert_eq!(b.key.assumed, g.earlier_conflicts(c.id));
        }
    }

    #[test]
    fn single_queue_serializes_conflict_chains() {
        let (w, g, _) = setup(20);
        let pending: Vec<&ChangeSpec> = w.changes[..20].iter().collect();
        let builds = Strategy::SingleQueue.desired_builds(
            &w,
            &pending,
            &g,
            &HashMap::new(),
            &HashMap::new(),
            100,
        );
        // Every scheduled change has no unresolved earlier conflicts.
        for b in &builds {
            assert!(g.earlier_conflicts(b.key.subject).is_empty());
            assert!(b.key.assumed.is_empty());
        }
        // And changes *with* earlier conflicts are not scheduled.
        let scheduled: Vec<ChangeId> = builds.iter().map(|b| b.key.subject).collect();
        for c in &pending {
            if !g.earlier_conflicts(c.id).is_empty() {
                assert!(!scheduled.contains(&c.id));
            }
        }
        assert!(!builds.is_empty(), "heads of chains must build");
    }

    #[test]
    fn speculate_all_goes_wide() {
        let (w, g, _) = setup(8);
        let pending: Vec<&ChangeSpec> = w.changes[..8].iter().collect();
        let builds = Strategy::SpeculateAll.desired_builds(
            &w,
            &pending,
            &g,
            &HashMap::new(),
            &HashMap::new(),
            64,
        );
        // Every pending change appears as a subject.
        let subjects: std::collections::HashSet<ChangeId> =
            builds.iter().map(|b| b.key.subject).collect();
        assert_eq!(subjects.len(), 8);
    }

    #[test]
    fn oracle_schedules_exactly_pending_count() {
        let (w, g, _) = setup(12);
        let pending: Vec<&ChangeSpec> = w.changes[..12].iter().collect();
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let builds =
            strategy.desired_builds(&w, &pending, &g, &HashMap::new(), &HashMap::new(), 1000);
        assert_eq!(builds.len(), 12);
    }

    #[test]
    fn cached_predictor_agrees_with_inner() {
        let (w, _, _) = setup(6);
        let oracle = OraclePredictor::new(&w);
        let cached = CachedPredictor::new(&oracle);
        for i in 0..5 {
            let (a, b) = (&w.changes[i], &w.changes[i + 1]);
            let direct = oracle.p_conflict(&w, a, b);
            assert_eq!(cached.p_conflict(&w, a, b), direct);
            assert_eq!(cached.p_conflict(&w, a, b), direct); // cache hit
            assert_eq!(cached.p_conflict(&w, b, a), direct); // symmetric key
        }
    }

    #[test]
    fn kind_roundtrip() {
        for kind in StrategyKind::all() {
            if kind == StrategyKind::SubmitQueue {
                continue; // needs history; covered in planner tests
            }
            let w = WorkloadBuilder::new(WorkloadParams::ios())
                .seed(1)
                .n_changes(5)
                .build()
                .unwrap();
            assert_eq!(Strategy::build(kind, &w, None).kind(), kind);
        }
    }
}
