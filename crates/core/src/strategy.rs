//! Scheduling strategies: SubmitQueue and the Section 8 baselines.
//!
//! All strategies answer the same question each planning round: *which
//! builds should occupy the workers right now?* They differ exactly as
//! the paper describes:
//!
//! * **SubmitQueue** — probabilistic speculation with the learned models.
//! * **Oracle** — perfect prediction; emits only the n realized-path
//!   builds. All Section 8 numbers are normalized against it.
//! * **Speculate-all** — 50/50 odds on everything, which floods the
//!   workers with the whole speculation graph breadth-first.
//! * **Optimistic** (Zuul) — one build per change assuming every earlier
//!   pending change succeeds.
//! * **Single-Queue** (Bors) — conflicting changes build strictly one at
//!   a time; independent changes proceed in parallel.
//!
//! Plus the lean variants from Uber's 2025 follow-up (*CI at Scale:
//! Lean, Green, and Fast*), all layered on the unchanged SubmitQueue
//! core via [`crate::lean::LeanConfig`]:
//!
//! * **Lean-Speculation** — probability-gated skipping: changes whose
//!   predicted conflict risk falls below a calibrated threshold get a
//!   single expected-mainline build instead of a pattern fan-out.
//! * **Prioritized** — the speculation budget is value-weighted by
//!   conflict risk.
//! * **Bypass-Lane** — footprint-eligible (or emergency-flagged)
//!   changes land after a single front-of-queue verify.

use crate::analyzer::ConflictGraph;
use crate::lean::{BypassPolicy, LeanConfig, SKIP_MISS_BUDGET};
use crate::predict::{
    LearnedPredictor, OptimisticPredictor, OraclePredictor, Predictor, SpeculationCounters,
    UniformPredictor,
};
use crate::speculation::{BuildKey, PlannedBuild, SpeculationEngine};
use sq_workload::{ChangeId, ChangeSpec, Workload};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Which scheduling policy a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// The paper's system.
    SubmitQueue,
    /// Perfect-foresight normalization baseline.
    Oracle,
    /// Speculate on every outcome with 50/50 odds.
    SpeculateAll,
    /// Zuul-style optimistic pipelines.
    Optimistic,
    /// Bors-style serial queue (with independent-change parallelism).
    SingleQueue,
    /// SubmitQueue with probability-gated speculation skipping.
    LeanSpeculation,
    /// SubmitQueue with the speculation budget weighted by conflict risk.
    Prioritized,
    /// SubmitQueue with a bypass lane for policy-eligible changes.
    BypassLane,
}

impl StrategyKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::SubmitQueue => "SubmitQueue",
            StrategyKind::Oracle => "Oracle",
            StrategyKind::SpeculateAll => "Speculate-all",
            StrategyKind::Optimistic => "Optimistic",
            StrategyKind::SingleQueue => "Single-Queue",
            StrategyKind::LeanSpeculation => "Lean-Speculation",
            StrategyKind::Prioritized => "Prioritized",
            StrategyKind::BypassLane => "Bypass-Lane",
        }
    }

    /// Number of strategies. The single source of truth for matrix
    /// sizing: [`StrategyKind::all`] returns exactly this many entries,
    /// so scenario/benchmark matrices sized or checked against `COUNT`
    /// cannot silently drop a newly added strategy.
    pub const COUNT: usize = 8;

    /// All strategies, in the paper's reporting order (the lean
    /// variants follow the paper's five).
    pub fn all() -> [StrategyKind; Self::COUNT] {
        [
            StrategyKind::SubmitQueue,
            StrategyKind::Oracle,
            StrategyKind::SpeculateAll,
            StrategyKind::Optimistic,
            StrategyKind::SingleQueue,
            StrategyKind::LeanSpeculation,
            StrategyKind::Prioritized,
            StrategyKind::BypassLane,
        ]
    }

    /// Dense position of this kind within [`Self::all`]. The match is
    /// exhaustive, so adding a variant without extending the census
    /// fails to compile; `census_is_complete` pins `all()[k.index()]
    /// == k` and `COUNT` to this function, closing the loop.
    pub const fn index(self) -> usize {
        match self {
            StrategyKind::SubmitQueue => 0,
            StrategyKind::Oracle => 1,
            StrategyKind::SpeculateAll => 2,
            StrategyKind::Optimistic => 3,
            StrategyKind::SingleQueue => 4,
            StrategyKind::LeanSpeculation => 5,
            StrategyKind::Prioritized => 6,
            StrategyKind::BypassLane => 7,
        }
    }

    /// Whether [`Strategy::build`] needs a training history for this
    /// kind (the learned-model strategies do; the baselines don't).
    pub fn needs_history(self) -> bool {
        matches!(
            self,
            StrategyKind::SubmitQueue
                | StrategyKind::LeanSpeculation
                | StrategyKind::Prioritized
                | StrategyKind::BypassLane
        )
    }

    /// The canonical single-flag [`LeanConfig`] for the lean kinds
    /// (`None` for the paper's five). `skip_threshold` is only used by
    /// [`StrategyKind::LeanSpeculation`].
    pub fn lean_config(self, skip_threshold: f64) -> Option<LeanConfig> {
        match self {
            StrategyKind::LeanSpeculation => Some(LeanConfig::lean(skip_threshold)),
            StrategyKind::Prioritized => Some(LeanConfig::prioritized()),
            StrategyKind::BypassLane => Some(LeanConfig::bypass_only()),
            _ => None,
        }
    }
}

/// A strategy instance (policy + any trained models).
///
/// A `Strategy` is bound to one workload: the Oracle carries that
/// workload's ground truth, and SubmitQueue memoizes pair-conflict
/// probabilities by change id. Build a fresh instance per workload
/// (different replay *rates* of the same trace share change identities
/// and may share an instance).
pub enum Strategy {
    /// SubmitQueue with its trained predictor (conflict probabilities
    /// memoized across planning rounds).
    SubmitQueue(MemoizedLearned),
    /// The oracle for a specific workload.
    Oracle(OraclePredictor),
    /// Speculate-all.
    SpeculateAll,
    /// Optimistic.
    Optimistic,
    /// Single-queue.
    SingleQueue,
    /// Any lean configuration over the SubmitQueue core (the three
    /// lean kinds are canonical single-flag configs; benches also run
    /// combined configs through this variant).
    Lean(LeanStrategy),
}

impl Strategy {
    /// Instantiate a strategy for `workload`. SubmitQueue and the lean
    /// variants train their models on `history` (a disjoint workload
    /// from the same generative process, like the paper's historical
    /// changes); Lean-Speculation additionally calibrates its skip
    /// threshold on that history against [`SKIP_MISS_BUDGET`].
    pub fn build(kind: StrategyKind, workload: &Workload, history: Option<&Workload>) -> Strategy {
        match kind {
            StrategyKind::SubmitQueue => {
                let history = history.expect("SubmitQueue needs training history");
                let (predictor, _) = LearnedPredictor::train(history, 0xFEED);
                Strategy::SubmitQueue(MemoizedLearned::new(predictor))
            }
            StrategyKind::LeanSpeculation
            | StrategyKind::Prioritized
            | StrategyKind::BypassLane => {
                let history = history.expect("lean strategies need training history");
                let (predictor, _) = LearnedPredictor::train(history, 0xFEED);
                let threshold = predictor.calibrate_skip_threshold(history, SKIP_MISS_BUDGET);
                let config = kind.lean_config(threshold).expect("lean kind");
                Strategy::lean_with(predictor, config)
            }
            StrategyKind::Oracle => Strategy::Oracle(OraclePredictor::new(workload)),
            StrategyKind::SpeculateAll => Strategy::SpeculateAll,
            StrategyKind::Optimistic => Strategy::Optimistic,
            StrategyKind::SingleQueue => Strategy::SingleQueue,
        }
    }

    /// Reuse an already-trained predictor (the benchmark grid trains one
    /// model and shares it across cells).
    pub fn submit_queue_with(predictor: LearnedPredictor) -> Strategy {
        Strategy::SubmitQueue(MemoizedLearned::new(predictor))
    }

    /// A lean strategy over an already-trained predictor with an
    /// explicit flag configuration (benches ablate through this; the
    /// scenario runner shares one predictor across all lean kinds).
    pub fn lean_with(predictor: LearnedPredictor, config: LeanConfig) -> Strategy {
        Strategy::Lean(LeanStrategy::new(
            MemoizedLearned::new(predictor),
            config,
            BypassPolicy::standard(),
        ))
    }

    /// The kind of this instance. Lean instances report the canonical
    /// kind of their flag configuration (baseline configs report as
    /// SubmitQueue — they are decision-identical to it).
    pub fn kind(&self) -> StrategyKind {
        match self {
            Strategy::SubmitQueue(_) => StrategyKind::SubmitQueue,
            Strategy::Oracle(_) => StrategyKind::Oracle,
            Strategy::SpeculateAll => StrategyKind::SpeculateAll,
            Strategy::Optimistic => StrategyKind::Optimistic,
            Strategy::SingleQueue => StrategyKind::SingleQueue,
            Strategy::Lean(l) => l.config.canonical_kind(),
        }
    }

    /// Is this a lean instance (carries skip/bypass bookkeeping)?
    pub fn is_lean(&self) -> bool {
        matches!(self, Strategy::Lean(_))
    }

    /// The lean flag configuration, when lean.
    pub fn lean_config_ref(&self) -> Option<&LeanConfig> {
        match self {
            Strategy::Lean(l) => Some(&l.config),
            _ => None,
        }
    }

    /// Was `id`'s speculation probability-gated away at any planning
    /// round of the current run?
    pub fn lean_skipped(&self, id: ChangeId) -> bool {
        match self {
            Strategy::Lean(l) => l.skipped.borrow().contains(&id),
            _ => false,
        }
    }

    /// Was `id` routed through the bypass lane at any planning round of
    /// the current run?
    pub fn lean_bypassed(&self, id: ChangeId) -> bool {
        match self {
            Strategy::Lean(l) => l.bypassed.borrow().contains(&id),
            _ => false,
        }
    }

    /// Clear per-run lean bookkeeping. The planner calls this at
    /// simulation start so a strategy instance reused across runs (the
    /// benchmark grid) doesn't leak decision sets between runs; the
    /// decisions themselves are pure functions of the planning inputs.
    pub fn lean_reset(&self) {
        if let Strategy::Lean(l) = self {
            l.skipped.borrow_mut().clear();
            l.bypassed.borrow_mut().clear();
        }
    }

    /// The desired builds for the current pending set, best first, at
    /// most `budget` entries.
    ///
    /// `pending` is sorted by id; `graph` covers exactly the pending set;
    /// `counters` holds dynamic speculation counts.
    pub fn desired_builds(
        &self,
        workload: &Workload,
        pending: &[&ChangeSpec],
        graph: &ConflictGraph,
        counters: &HashMap<ChangeId, SpeculationCounters>,
        fixed: &HashMap<ChangeId, Vec<ChangeId>>,
        budget: usize,
    ) -> Vec<PlannedBuild> {
        match self {
            Strategy::SubmitQueue(p) => SpeculationEngine::select_builds(
                workload, pending, graph, p, counters, fixed, budget,
            ),
            Strategy::Lean(l) => {
                l.desired_builds(workload, pending, graph, counters, fixed, budget)
            }
            Strategy::Oracle(p) => SpeculationEngine::select_builds(
                workload, pending, graph, p, counters, fixed, budget,
            ),
            Strategy::SpeculateAll => SpeculationEngine::select_builds(
                workload,
                pending,
                graph,
                &UniformPredictor,
                counters,
                fixed,
                budget,
            ),
            Strategy::Optimistic => {
                // One build per change: assume every earlier conflicting
                // pending change commits (the single most-optimistic path;
                // the OptimisticPredictor would produce the same keys
                // through the engine, listed here directly for clarity).
                let _ = OptimisticPredictor; // policy equivalence documented above
                pending
                    .iter()
                    .take(budget)
                    .map(|c| PlannedBuild {
                        key: BuildKey {
                            subject: c.id,
                            assumed: graph.earlier_conflicts(c.id),
                        },
                        value: 1.0,
                    })
                    .collect()
            }
            Strategy::SingleQueue => {
                // Only changes whose earlier conflicts are all resolved
                // may build; they build against the exact committed
                // prefix (empty pattern here; the planner unions in the
                // fixed committed prefix).
                pending
                    .iter()
                    .filter(|c| graph.earlier_conflicts(c.id).is_empty())
                    .take(budget)
                    .map(|c| PlannedBuild {
                        key: BuildKey {
                            subject: c.id,
                            assumed: Vec::new(),
                        },
                        value: 1.0,
                    })
                    .collect()
            }
        }
    }
}

/// The lean-speculation planning core: SubmitQueue's engine plus the
/// three independently-toggleable optimizations of the 2025 sequel.
///
/// Safety argument (audited in `bench_lean` and the lean proptests):
/// nothing here touches the planner's *gating* path. A change still
/// commits or rejects only through its realized build, so the worst a
/// wrong skip or bypass can do is schedule a build that later gets
/// contradicted and aborted — pure latency, never a wrongful rejection
/// and never a red mainline.
pub struct LeanStrategy {
    predictor: MemoizedLearned,
    /// Which optimizations are active.
    pub config: LeanConfig,
    /// Bypass-lane eligibility policy.
    pub policy: BypassPolicy,
    /// Changes whose speculation was gated away this run (bookkeeping
    /// only — consulted by the planner when the change resolves).
    skipped: RefCell<HashSet<ChangeId>>,
    /// Changes routed through the bypass lane this run.
    bypassed: RefCell<HashSet<ChangeId>>,
}

impl LeanStrategy {
    /// Assemble from a memoized predictor, flags, and a bypass policy.
    pub fn new(predictor: MemoizedLearned, config: LeanConfig, policy: BypassPolicy) -> Self {
        LeanStrategy {
            predictor,
            config,
            policy,
            skipped: RefCell::new(HashSet::new()),
            bypassed: RefCell::new(HashSet::new()),
        }
    }

    /// Predicted conflict risk of `c` against its earlier *pending*
    /// conflicters: `1 − Π (1 − P_conf(d, c))`. This is the score space
    /// the skip threshold was calibrated in (pairwise `P_conf` over
    /// potentially-conflicting pairs).
    fn risk(
        &self,
        workload: &Workload,
        by_id: &HashMap<ChangeId, &ChangeSpec>,
        graph: &ConflictGraph,
        c: &ChangeSpec,
    ) -> f64 {
        let mut survive = 1.0;
        for d in graph.earlier_conflicts(c.id) {
            if let Some(dc) = by_id.get(&d) {
                survive *= 1.0 - self.predictor.p_conflict(workload, dc, c);
            }
        }
        (1.0 - survive).clamp(0.0, 1.0)
    }

    fn desired_builds(
        &self,
        workload: &Workload,
        pending: &[&ChangeSpec],
        graph: &ConflictGraph,
        counters: &HashMap<ChangeId, SpeculationCounters>,
        fixed: &HashMap<ChangeId, Vec<ChangeId>>,
        budget: usize,
    ) -> Vec<PlannedBuild> {
        let by_id: HashMap<ChangeId, &ChangeSpec> = pending.iter().map(|c| (c.id, *c)).collect();
        let needs_risk = self.config.prioritize || self.config.skip_threshold.is_some();
        let risks: HashMap<ChangeId, f64> = if needs_risk {
            pending
                .iter()
                .map(|c| (c.id, self.risk(workload, &by_id, graph, c)))
                .collect()
        } else {
            HashMap::new()
        };

        // Bypass lane: policy-eligible changes get exactly one build —
        // their *expected-mainline* build (most-likely outcome pattern)
        // — placed ahead of all speculation.
        let mut bypass_ids: HashSet<ChangeId> = HashSet::new();
        let mut head: Vec<PlannedBuild> = Vec::new();
        if self.config.bypass {
            let p_commit = SpeculationEngine::commit_probabilities(
                workload,
                pending,
                graph,
                &self.predictor,
                counters,
                fixed,
            );
            for c in pending {
                if !self.policy.eligible(c) {
                    continue;
                }
                bypass_ids.insert(c.id);
                self.bypassed.borrow_mut().insert(c.id);
                let mut assumed: Vec<ChangeId> = graph
                    .earlier_conflicts(c.id)
                    .into_iter()
                    .filter(|d| p_commit.get(d).copied().unwrap_or(0.0) >= 0.5)
                    .collect();
                assumed.sort_unstable();
                head.push(PlannedBuild {
                    key: BuildKey {
                        subject: c.id,
                        assumed,
                    },
                    value: 1.0,
                });
                if head.len() >= budget {
                    break;
                }
            }
        }

        // Probability-gated skipping: low-risk changes are capped at a
        // single (most-likely) pattern instead of a fan-out. Only
        // changes that actually have earlier pending conflicters are
        // counted as skips — for everyone else there is nothing to skip.
        let mut skip_ids: HashSet<ChangeId> = HashSet::new();
        if let Some(threshold) = self.config.skip_threshold {
            for c in pending {
                if bypass_ids.contains(&c.id) {
                    continue;
                }
                if graph.earlier_conflicts(c.id).is_empty() {
                    continue;
                }
                if risks.get(&c.id).copied().unwrap_or(1.0) < threshold {
                    skip_ids.insert(c.id);
                    self.skipped.borrow_mut().insert(c.id);
                }
            }
        }

        let remaining = budget.saturating_sub(head.len());
        let benefit = |id: ChangeId| {
            if self.config.prioritize {
                1.0 + risks.get(&id).copied().unwrap_or(0.0)
            } else {
                1.0
            }
        };
        let mut picks = SpeculationEngine::select_builds_configured(
            workload,
            pending,
            graph,
            &self.predictor,
            counters,
            fixed,
            remaining,
            benefit,
            |id| {
                if bypass_ids.contains(&id) {
                    0
                } else if skip_ids.contains(&id) {
                    1
                } else {
                    usize::MAX
                }
            },
        );
        // The build-granular half of probability-gated skipping: a
        // speculative pattern whose P_needed sits below the calibrated
        // threshold is dropped instead of letting it backfill the
        // budget (the planner schedules each change's gating build out
        // of band, so the fallback is the plain mainline build and the
        // only possible cost is latency). Without this, per-change
        // skips just hand their slots to even less likely patterns of
        // other changes and the wasted-build count is conserved.
        if let Some(threshold) = self.config.skip_threshold {
            picks.retain(|pb| pb.value / benefit(pb.key.subject) >= threshold);
        }
        head.extend(picks);
        head
    }
}

/// Owning `P_conf` memoization around the learned models: pair-conflict
/// probabilities are pure functions of the two changes, and the planner
/// replans on every event, so caching eliminates the dominant prediction
/// cost (an O(pending²) model evaluation per round without the
/// analyzer). Bound to one workload's change-id space.
pub struct MemoizedLearned {
    inner: LearnedPredictor,
    conflict_cache: std::cell::RefCell<HashMap<(ChangeId, ChangeId), f64>>,
}

impl MemoizedLearned {
    /// Wrap a trained predictor.
    pub fn new(inner: LearnedPredictor) -> Self {
        MemoizedLearned {
            inner,
            conflict_cache: std::cell::RefCell::new(HashMap::new()),
        }
    }
}

impl Predictor for MemoizedLearned {
    fn p_success(&self, w: &Workload, c: &ChangeSpec, k: SpeculationCounters) -> f64 {
        self.inner.p_success(w, c, k)
    }

    fn p_conflict(&self, w: &Workload, a: &ChangeSpec, b: &ChangeSpec) -> f64 {
        let key = if a.id.0 <= b.id.0 {
            (a.id, b.id)
        } else {
            (b.id, a.id)
        };
        if let Some(&v) = self.conflict_cache.borrow().get(&key) {
            return v;
        }
        let v = self.inner.p_conflict(w, a, b);
        self.conflict_cache.borrow_mut().insert(key, v);
        v
    }
}

/// Borrowing `P_conf` memoization wrapper (same idea as
/// [`MemoizedLearned`] for arbitrary predictors).
pub struct CachedPredictor<'a, P: Predictor> {
    inner: &'a P,
    conflict_cache: std::cell::RefCell<HashMap<(ChangeId, ChangeId), f64>>,
}

impl<'a, P: Predictor> CachedPredictor<'a, P> {
    /// Wrap a predictor.
    pub fn new(inner: &'a P) -> Self {
        CachedPredictor {
            inner,
            conflict_cache: std::cell::RefCell::new(HashMap::new()),
        }
    }
}

impl<'a, P: Predictor> Predictor for CachedPredictor<'a, P> {
    fn p_success(&self, w: &Workload, c: &ChangeSpec, k: SpeculationCounters) -> f64 {
        self.inner.p_success(w, c, k)
    }

    fn p_conflict(&self, w: &Workload, a: &ChangeSpec, b: &ChangeSpec) -> f64 {
        let key = if a.id.0 <= b.id.0 {
            (a.id, b.id)
        } else {
            (b.id, a.id)
        };
        if let Some(&v) = self.conflict_cache.borrow().get(&key) {
            return v;
        }
        let v = self.inner.p_conflict(w, a, b);
        self.conflict_cache.borrow_mut().insert(key, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::StatisticalAnalyzer;
    use sq_workload::{WorkloadBuilder, WorkloadParams};

    fn setup(n: usize) -> (Workload, ConflictGraph, Vec<usize>) {
        let w = WorkloadBuilder::new(WorkloadParams::ios())
            .seed(33)
            .n_changes(n)
            .build()
            .unwrap();
        let mut analyzer = StatisticalAnalyzer::new();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&ChangeSpec> = Vec::new();
        for c in &w.changes[..n] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        (w, g, (0..n).collect())
    }

    #[test]
    fn optimistic_emits_one_build_per_change() {
        let (w, g, _) = setup(10);
        let pending: Vec<&ChangeSpec> = w.changes[..10].iter().collect();
        let builds = Strategy::Optimistic.desired_builds(
            &w,
            &pending,
            &g,
            &HashMap::new(),
            &HashMap::new(),
            100,
        );
        assert_eq!(builds.len(), 10);
        for (b, c) in builds.iter().zip(&pending) {
            assert_eq!(b.key.subject, c.id);
            assert_eq!(b.key.assumed, g.earlier_conflicts(c.id));
        }
    }

    #[test]
    fn single_queue_serializes_conflict_chains() {
        let (w, g, _) = setup(20);
        let pending: Vec<&ChangeSpec> = w.changes[..20].iter().collect();
        let builds = Strategy::SingleQueue.desired_builds(
            &w,
            &pending,
            &g,
            &HashMap::new(),
            &HashMap::new(),
            100,
        );
        // Every scheduled change has no unresolved earlier conflicts.
        for b in &builds {
            assert!(g.earlier_conflicts(b.key.subject).is_empty());
            assert!(b.key.assumed.is_empty());
        }
        // And changes *with* earlier conflicts are not scheduled.
        let scheduled: Vec<ChangeId> = builds.iter().map(|b| b.key.subject).collect();
        for c in &pending {
            if !g.earlier_conflicts(c.id).is_empty() {
                assert!(!scheduled.contains(&c.id));
            }
        }
        assert!(!builds.is_empty(), "heads of chains must build");
    }

    #[test]
    fn speculate_all_goes_wide() {
        let (w, g, _) = setup(8);
        let pending: Vec<&ChangeSpec> = w.changes[..8].iter().collect();
        let builds = Strategy::SpeculateAll.desired_builds(
            &w,
            &pending,
            &g,
            &HashMap::new(),
            &HashMap::new(),
            64,
        );
        // Every pending change appears as a subject.
        let subjects: std::collections::HashSet<ChangeId> =
            builds.iter().map(|b| b.key.subject).collect();
        assert_eq!(subjects.len(), 8);
    }

    #[test]
    fn oracle_schedules_exactly_pending_count() {
        let (w, g, _) = setup(12);
        let pending: Vec<&ChangeSpec> = w.changes[..12].iter().collect();
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let builds =
            strategy.desired_builds(&w, &pending, &g, &HashMap::new(), &HashMap::new(), 1000);
        assert_eq!(builds.len(), 12);
    }

    #[test]
    fn cached_predictor_agrees_with_inner() {
        let (w, _, _) = setup(6);
        let oracle = OraclePredictor::new(&w);
        let cached = CachedPredictor::new(&oracle);
        for i in 0..5 {
            let (a, b) = (&w.changes[i], &w.changes[i + 1]);
            let direct = oracle.p_conflict(&w, a, b);
            assert_eq!(cached.p_conflict(&w, a, b), direct);
            assert_eq!(cached.p_conflict(&w, a, b), direct); // cache hit
            assert_eq!(cached.p_conflict(&w, b, a), direct); // symmetric key
        }
    }

    #[test]
    fn kind_roundtrip() {
        for kind in StrategyKind::all() {
            if kind.needs_history() {
                continue; // needs history; covered below and in planner tests
            }
            let w = WorkloadBuilder::new(WorkloadParams::ios())
                .seed(1)
                .n_changes(5)
                .build()
                .unwrap();
            assert_eq!(Strategy::build(kind, &w, None).kind(), kind);
        }
    }

    #[test]
    fn census_is_complete() {
        // `index()` is an exhaustive match over the enum; pinning
        // `all()` and `COUNT` to it means no variant can be added
        // without joining every scenario/benchmark matrix.
        let all = StrategyKind::all();
        assert_eq!(all.len(), StrategyKind::COUNT);
        for (i, kind) in all.into_iter().enumerate() {
            assert_eq!(kind.index(), i, "{} out of census order", kind.name());
        }
        let names: std::collections::HashSet<&str> = all.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), StrategyKind::COUNT, "names must be unique");
    }

    #[test]
    fn lean_kinds_roundtrip_with_history() {
        let w = WorkloadBuilder::new(WorkloadParams::ios())
            .seed(2)
            .n_changes(20)
            .build()
            .unwrap();
        let history = WorkloadBuilder::new(WorkloadParams::ios())
            .seed(99)
            .n_changes(400)
            .build()
            .unwrap();
        for kind in [
            StrategyKind::LeanSpeculation,
            StrategyKind::Prioritized,
            StrategyKind::BypassLane,
        ] {
            let s = Strategy::build(kind, &w, Some(&history));
            assert_eq!(s.kind(), kind);
            assert!(s.is_lean());
            assert!(s.lean_config_ref().is_some());
        }
        assert!(!Strategy::SpeculateAll.is_lean());
    }

    #[test]
    fn lean_baseline_matches_submit_queue_exactly() {
        let (w, g, _) = setup(16);
        let history = WorkloadBuilder::new(WorkloadParams::ios())
            .seed(77)
            .n_changes(400)
            .build()
            .unwrap();
        let (predictor, _) = LearnedPredictor::train(&history, 0xFEED);
        let sq = Strategy::submit_queue_with(predictor.clone());
        let lean = Strategy::lean_with(predictor, LeanConfig::baseline());
        let pending: Vec<&ChangeSpec> = w.changes[..16].iter().collect();
        let a = sq.desired_builds(&w, &pending, &g, &HashMap::new(), &HashMap::new(), 40);
        let b = lean.desired_builds(&w, &pending, &g, &HashMap::new(), &HashMap::new(), 40);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert!((x.value - y.value).abs() < 1e-12);
        }
        assert_eq!(lean.kind(), StrategyKind::SubmitQueue);
    }

    #[test]
    fn lean_skip_caps_low_risk_changes_to_one_build() {
        let (w, g, _) = setup(16);
        let history = WorkloadBuilder::new(WorkloadParams::ios())
            .seed(77)
            .n_changes(400)
            .build()
            .unwrap();
        let (predictor, _) = LearnedPredictor::train(&history, 0xFEED);
        // Threshold 1.0 ⇒ every conflicted change is skip-eligible.
        let lean = Strategy::lean_with(predictor, LeanConfig::lean(1.0));
        let pending: Vec<&ChangeSpec> = w.changes[..16].iter().collect();
        let builds = lean.desired_builds(&w, &pending, &g, &HashMap::new(), &HashMap::new(), 400);
        let mut per_subject: HashMap<ChangeId, usize> = HashMap::new();
        for b in &builds {
            *per_subject.entry(b.key.subject).or_default() += 1;
        }
        for (id, n) in &per_subject {
            assert!(*n <= 1, "{id} got {n} builds despite universal skip");
        }
        for c in &pending {
            if !g.earlier_conflicts(c.id).is_empty() {
                assert!(lean.lean_skipped(c.id), "{} not recorded", c.id);
            }
        }
        lean.lean_reset();
        assert!(!lean.lean_skipped(pending[0].id));
    }

    #[test]
    fn bypass_lane_schedules_eligible_changes_first() {
        let (w, g, _) = setup(16);
        let history = WorkloadBuilder::new(WorkloadParams::ios())
            .seed(77)
            .n_changes(400)
            .build()
            .unwrap();
        let (predictor, _) = LearnedPredictor::train(&history, 0xFEED);
        let lean = Strategy::lean_with(predictor, LeanConfig::bypass_only());
        let mut w2 = w.clone();
        // Flag one large change as an emergency.
        w2.changes[7].emergency = true;
        let pending: Vec<&ChangeSpec> = w2.changes[..16].iter().collect();
        let builds = lean.desired_builds(&w2, &pending, &g, &HashMap::new(), &HashMap::new(), 400);
        assert!(lean.lean_bypassed(pending[7].id), "emergency must bypass");
        // Every bypassed change's build precedes every engine pick and
        // appears exactly once as a subject.
        let bypassed: Vec<ChangeId> = pending
            .iter()
            .filter(|c| lean.lean_bypassed(c.id))
            .map(|c| c.id)
            .collect();
        assert!(!bypassed.is_empty());
        for id in &bypassed {
            let count = builds.iter().filter(|b| b.key.subject == *id).count();
            assert_eq!(count, 1, "{id} must get exactly one bypass build");
        }
        let first_non_bypass = builds
            .iter()
            .position(|b| !bypassed.contains(&b.key.subject))
            .unwrap_or(builds.len());
        for b in &builds[..first_non_bypass] {
            assert_eq!(b.value, 1.0);
        }
        assert_eq!(first_non_bypass, bypassed.len());
    }

    #[test]
    fn prioritization_reorders_but_keeps_the_same_coverage() {
        let (w, g, _) = setup(16);
        let history = WorkloadBuilder::new(WorkloadParams::ios())
            .seed(77)
            .n_changes(400)
            .build()
            .unwrap();
        let (predictor, _) = LearnedPredictor::train(&history, 0xFEED);
        let sq = Strategy::submit_queue_with(predictor.clone());
        let lean = Strategy::lean_with(predictor, LeanConfig::prioritized());
        let pending: Vec<&ChangeSpec> = w.changes[..16].iter().collect();
        let a = sq.desired_builds(&w, &pending, &g, &HashMap::new(), &HashMap::new(), 1000);
        let b = lean.desired_builds(&w, &pending, &g, &HashMap::new(), &HashMap::new(), 1000);
        // Unbounded budget: same build set (weights reorder, never drop).
        let ka: std::collections::HashSet<BuildKey> = a.iter().map(|x| x.key.clone()).collect();
        let kb: std::collections::HashSet<BuildKey> = b.iter().map(|x| x.key.clone()).collect();
        assert_eq!(ka, kb);
    }
}
