//! Sharded multi-lane planning (ROADMAP item 1).
//!
//! One global pending window caps throughput: every planning round is
//! quadratic-ish in the whole queue, so at monorepo-scale arrival rates
//! the planner itself becomes the bottleneck long before the workers do.
//! The fix, following Google's *Smart Build Targets Batching Service*
//! and Uber's *CI at Scale* (PAPERS.md): partition the target universe
//! into mostly-independent **shards** (`sq_build::shard` computes the
//! partition from the real target graph), route each change to the lane
//! owning its affected set, and run one speculation engine per lane over
//! that lane's — much smaller — pending window.
//!
//! **Routing rule.** A change whose parts all map to one shard plans in
//! that shard's lane. A change spanning several shards (or touching no
//! parts) goes to the designated **arbiter lane**. Because the ground
//! truth only lets changes with overlapping parts conflict, two changes
//! routed to *different shard lanes* can never really conflict — every
//! cross-shard conflict has the arbiter on one side. The planner
//! therefore keeps one **global** conflict graph (the `ConflictIndex`
//! bitset intersections are the cheap global arbiter) and one global
//! resolution rule, so the always-green argument of the single-queue
//! planner carries over verbatim to the union of all lanes' commits:
//! the merged trunk is the planner's one commit log, and `audit_green`
//! verifies it directly.
//!
//! This module owns the shard *plan* (part → shard routing), the lane
//! worker split, the planner's planning-cost model (what makes the
//! single global window saturate), and the per-shard reporting that
//! feeds sq-obs.

use crate::pending::ChangeOutcome;
use crate::planner::SimResult;
use sq_obs::MetricsRegistry;
use sq_sim::SimDuration;
use sq_workload::change::PartId;
use sq_workload::{ChangeSpec, Workload};

/// Part → shard routing table.
///
/// Parts are the workload's logical repository regions; in a real
/// deployment the table comes from a [`sq_build::shard::TargetPartition`]
/// over the target graph (see [`ShardPlan::from_assignments`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `PartId.0 as usize` → shard id. Out-of-range parts wrap
    /// (deterministically) so the plan is total.
    shard_of_part: Vec<u32>,
    n_shards: usize,
}

impl ShardPlan {
    /// Round-robin plan: part `p` lives in shard `p % n_shards`.
    ///
    /// The synthetic workloads draw hot parts from a Zipf over low part
    /// ids, so interleaving (rather than contiguous ranges) spreads the
    /// hot parts across shards evenly.
    pub fn round_robin(n_parts: usize, n_shards: usize) -> ShardPlan {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(n_parts >= 1, "need at least one part");
        ShardPlan {
            shard_of_part: (0..n_parts).map(|p| (p % n_shards) as u32).collect(),
            n_shards,
        }
    }

    /// Plan from explicit per-part shard assignments — the bridge from
    /// [`sq_build::shard::TargetPartition::assignments`], treating the
    /// interned dense target id as the part id.
    pub fn from_assignments(assignments: &[u32]) -> ShardPlan {
        assert!(!assignments.is_empty(), "empty assignment table");
        let n_shards = assignments.iter().max().copied().unwrap_or(0) as usize + 1;
        ShardPlan {
            shard_of_part: assignments.to_vec(),
            n_shards,
        }
    }

    /// Number of shards (excluding the arbiter lane).
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of planning lanes: one per shard plus the arbiter.
    pub fn n_lanes(&self) -> usize {
        self.n_shards + 1
    }

    /// The arbiter lane's index (always the last lane).
    pub fn arbiter_lane(&self) -> usize {
        self.n_shards
    }

    /// Shard owning a part.
    pub fn shard_of_part(&self, part: PartId) -> u32 {
        self.shard_of_part[part.0 as usize % self.shard_of_part.len()]
    }

    /// Lane a change with these parts plans in: the owning shard's lane
    /// when every part maps to one shard, the arbiter lane otherwise
    /// (multi-shard footprint, or no parts at all).
    pub fn lane_of_parts(&self, parts: &[PartId]) -> usize {
        let mut shards = parts.iter().map(|&p| self.shard_of_part(p));
        let Some(first) = shards.next() else {
            return self.arbiter_lane();
        };
        if shards.all(|s| s == first) {
            first as usize
        } else {
            self.arbiter_lane()
        }
    }

    /// Lane of a change spec.
    pub fn lane_of(&self, spec: &ChangeSpec) -> usize {
        self.lane_of_parts(&spec.parts)
    }

    /// Display name of a lane (`s00`, `s01`, …, `arbiter`).
    pub fn lane_name(&self, lane: usize) -> String {
        if lane == self.arbiter_lane() {
            "arbiter".to_string()
        } else {
            format!("s{lane:02}")
        }
    }
}

/// A full sharding configuration for the planner: the routing plan plus
/// the per-lane worker fleet split.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Part → shard routing.
    pub plan: ShardPlan,
    /// Worker count per lane, indexed by lane (last = arbiter). Every
    /// lane gets at least one worker.
    pub lane_workers: Vec<usize>,
}

impl ShardSpec {
    /// Split `total_workers` evenly across all lanes (arbiter included);
    /// the remainder goes to the arbiter, and every lane gets ≥ 1.
    pub fn even(plan: ShardPlan, total_workers: usize) -> ShardSpec {
        let lanes = plan.n_lanes();
        let base = (total_workers / lanes).max(1);
        let mut lane_workers = vec![base; lanes];
        let used = base * lanes;
        if total_workers > used {
            lane_workers[plan.arbiter_lane()] += total_workers - used;
        }
        ShardSpec { plan, lane_workers }
    }

    /// Split `total_workers` proportionally to each lane's routed change
    /// count in `workload` (deterministic; every lane gets ≥ 1). Lanes
    /// that receive no traffic still get one standby worker.
    pub fn proportional(plan: ShardPlan, workload: &Workload, total_workers: usize) -> ShardSpec {
        let lanes = plan.n_lanes();
        let mut routed = vec![0usize; lanes];
        for c in &workload.changes {
            routed[plan.lane_of(c)] += 1;
        }
        let total_routed: usize = routed.iter().sum();
        let mut lane_workers = vec![1usize; lanes];
        if total_routed > 0 && total_workers > lanes {
            let spare = total_workers - lanes;
            let mut assigned = 0usize;
            for lane in 0..lanes {
                let share = spare * routed[lane] / total_routed;
                lane_workers[lane] += share;
                assigned += share;
            }
            // Integer-division remainder goes to the arbiter (cross-shard
            // changes gate other lanes, so spare capacity helps there most).
            lane_workers[plan.arbiter_lane()] += spare - assigned;
        }
        ShardSpec { plan, lane_workers }
    }

    /// Number of lanes.
    pub fn n_lanes(&self) -> usize {
        self.plan.n_lanes()
    }

    /// Total workers across all lanes.
    pub fn total_workers(&self) -> usize {
        self.lane_workers.iter().sum()
    }
}

/// Model of the planning step's own cost (paper Section 6: the planner
/// contacts the speculation engine *on every epoch*, and each round's
/// conflict analysis + speculation-tree walk grows with the pending
/// window). The planner turns this into a per-lane adaptive epoch:
/// after a round over `n` pending changes, the lane's next planning
/// tick fires after `base + per_pending · n`.
///
/// This is what makes one global window saturate: at high arrival rates
/// the single lane's window grows, its rounds slow down, scheduling
/// falls further behind, and throughput collapses — while sharded lanes
/// keep their windows (and therefore their rounds) small. `bench_shard`
/// runs both configurations under the *same* cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanningCost {
    /// Fixed cost per planning round.
    pub base: SimDuration,
    /// Marginal cost per pending change in the planned window.
    pub per_pending: SimDuration,
}

impl PlanningCost {
    /// Delay until a lane's next planning round, given its window size.
    pub fn tick(&self, pending: usize) -> SimDuration {
        self.base + self.per_pending * pending as u64
    }
}

/// Per-lane outcome statistics extracted from a finished run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneStats {
    /// Lane index (the last lane is the arbiter).
    pub lane: usize,
    /// Display name (`s00`…, `arbiter`).
    pub name: String,
    /// Changes routed to this lane.
    pub routed: usize,
    /// Commits from this lane.
    pub committed: usize,
    /// Rejections from this lane.
    pub rejected: usize,
    /// Wrongful rejections among this lane's changes (must be 0).
    pub wrongful: usize,
}

/// Per-shard report over a finished simulation: how traffic, commits,
/// and (hopefully zero) wrongful rejections distributed across lanes.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// One entry per lane, in lane order.
    pub lanes: Vec<LaneStats>,
}

impl ShardReport {
    /// Build the report by routing every record of `result` through
    /// `plan`. Wrongful rejections are judged against the *full* run
    /// (a rejection can be justified by a commit in another lane), then
    /// attributed to the rejected change's lane.
    pub fn from_result(workload: &Workload, result: &SimResult, plan: &ShardPlan) -> ShardReport {
        let wrongful = crate::audit::wrongful_rejections(workload, result);
        let mut lanes: Vec<LaneStats> = (0..plan.n_lanes())
            .map(|lane| LaneStats {
                lane,
                name: plan.lane_name(lane),
                routed: 0,
                committed: 0,
                rejected: 0,
                wrongful: 0,
            })
            .collect();
        for r in &result.records {
            let lane = plan.lane_of(&workload.changes[r.id.0 as usize]);
            lanes[lane].routed += 1;
            match r.outcome {
                ChangeOutcome::Committed => lanes[lane].committed += 1,
                ChangeOutcome::Rejected => lanes[lane].rejected += 1,
            }
        }
        for id in wrongful {
            let lane = plan.lane_of(&workload.changes[id.0 as usize]);
            lanes[lane].wrongful += 1;
        }
        ShardReport { lanes }
    }

    /// Total wrongful rejections across all lanes.
    pub fn total_wrongful(&self) -> usize {
        self.lanes.iter().map(|l| l.wrongful).sum()
    }

    /// Export the report idempotently: totals go through the
    /// watermark-reconciling [`MetricsRegistry::record_total`] and
    /// instantaneous values through gauges, so re-exporting against the
    /// same registry never double-counts (the PR-8 discipline, guarded
    /// by `sq_obs::check::assert_idempotent_export`).
    pub fn record_into(&self, metrics: &mut MetricsRegistry) {
        for l in &self.lanes {
            metrics.record_total(&format!("shard.{}.routed", l.name), l.routed as u64);
            metrics.record_total(&format!("shard.{}.committed", l.name), l.committed as u64);
            metrics.record_total(&format!("shard.{}.rejected", l.name), l.rejected as u64);
            metrics.set_gauge(&format!("shard.{}.wrongful", l.name), l.wrongful as f64);
        }
        metrics.set_gauge("shard.lanes", self.lanes.len() as f64);
        metrics.set_gauge("shard.wrongful_total", self.total_wrongful() as f64);
    }
}

/// Project a full run down to one lane: the lane's records and commits
/// only, with global counters zeroed (they are not attributable to a
/// single lane). The filtered result still indexes the full workload's
/// dense change-id space, so every audit in [`crate::audit`] applies
/// per shard exactly as it does globally.
pub fn lane_result(
    workload: &Workload,
    result: &SimResult,
    plan: &ShardPlan,
    lane: usize,
) -> SimResult {
    let in_lane =
        |id: sq_workload::ChangeId| plan.lane_of(&workload.changes[id.0 as usize]) == lane;
    SimResult {
        strategy: result.strategy,
        records: result
            .records
            .iter()
            .filter(|r| in_lane(r.id))
            .cloned()
            .collect(),
        commit_log: result
            .commit_log
            .iter()
            .copied()
            .filter(|&id| in_lane(id))
            .collect(),
        makespan: result.makespan,
        builds_started: 0,
        builds_aborted: 0,
        utilization: 0.0,
        infra_retries: 0,
        infra_backoff: SimDuration::ZERO,
        quarantined: result
            .quarantined
            .iter()
            .copied()
            .filter(|&id| in_lane(id))
            .collect(),
        // Global lean accounting is not attributable per lane.
        lean: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{run_simulation, PlannerConfig};
    use crate::strategy::{Strategy, StrategyKind};
    use sq_obs::check::assert_idempotent_export;
    use sq_workload::{ChangeId, WorkloadBuilder, WorkloadParams};

    fn pid(p: u32) -> PartId {
        PartId(p)
    }

    #[test]
    fn round_robin_routes_single_shard_footprints() {
        let plan = ShardPlan::round_robin(10, 3);
        assert_eq!(plan.n_shards(), 3);
        assert_eq!(plan.n_lanes(), 4);
        assert_eq!(plan.arbiter_lane(), 3);
        // Parts 0, 3, 6, 9 all live in shard 0.
        assert_eq!(plan.lane_of_parts(&[pid(0), pid(3), pid(9)]), 0);
        // Parts 1 and 2 live in different shards → arbiter.
        assert_eq!(plan.lane_of_parts(&[pid(1), pid(2)]), plan.arbiter_lane());
        // No parts → arbiter.
        assert_eq!(plan.lane_of_parts(&[]), plan.arbiter_lane());
    }

    #[test]
    fn from_assignments_bridges_target_partitions() {
        let plan = ShardPlan::from_assignments(&[0, 0, 1, 2, 1]);
        assert_eq!(plan.n_shards(), 3);
        assert_eq!(plan.shard_of_part(pid(2)), 1);
        // Out-of-range parts wrap deterministically.
        assert_eq!(plan.shard_of_part(pid(7)), plan.shard_of_part(pid(2)));
    }

    #[test]
    fn lane_names_are_stable() {
        let plan = ShardPlan::round_robin(8, 2);
        assert_eq!(plan.lane_name(0), "s00");
        assert_eq!(plan.lane_name(1), "s01");
        assert_eq!(plan.lane_name(2), "arbiter");
    }

    #[test]
    fn even_split_covers_every_lane() {
        let spec = ShardSpec::even(ShardPlan::round_robin(20, 4), 103);
        assert_eq!(spec.lane_workers.len(), 5);
        assert!(spec.lane_workers.iter().all(|&w| w >= 1));
        assert_eq!(spec.total_workers(), 103);
        // Tiny fleets still give every lane a worker.
        let tiny = ShardSpec::even(ShardPlan::round_robin(20, 4), 2);
        assert!(tiny.lane_workers.iter().all(|&w| w >= 1));
    }

    #[test]
    fn proportional_split_follows_traffic() {
        let w = WorkloadBuilder::new(WorkloadParams::ios().with_rate(200.0))
            .seed(11)
            .n_changes(400)
            .build()
            .unwrap();
        let plan = ShardPlan::round_robin(300, 4);
        let spec = ShardSpec::proportional(plan.clone(), &w, 200);
        assert_eq!(spec.total_workers(), 200);
        assert!(spec.lane_workers.iter().all(|&l| l >= 1));
        // The busiest lane by traffic gets the most workers (modulo the
        // arbiter's remainder bonus).
        let mut routed = vec![0usize; plan.n_lanes()];
        for c in &w.changes {
            routed[plan.lane_of(c)] += 1;
        }
        let busiest = (0..plan.n_shards()).max_by_key(|&l| routed[l]).unwrap();
        let quietest = (0..plan.n_shards()).min_by_key(|&l| routed[l]).unwrap();
        assert!(spec.lane_workers[busiest] >= spec.lane_workers[quietest]);
    }

    #[test]
    fn planning_cost_grows_with_window() {
        let cost = PlanningCost {
            base: SimDuration::from_secs(5),
            per_pending: SimDuration::from_secs(2),
        };
        assert_eq!(cost.tick(0), SimDuration::from_secs(5));
        assert_eq!(cost.tick(10), SimDuration::from_secs(25));
    }

    #[test]
    fn shard_report_partitions_the_run_and_exports_idempotently() {
        let w = WorkloadBuilder::new(WorkloadParams::ios().with_rate(150.0))
            .seed(41)
            .n_changes(120)
            .build()
            .unwrap();
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let r = run_simulation(&w, &strategy, &PlannerConfig::default());
        let plan = ShardPlan::round_robin(300, 4);
        let report = ShardReport::from_result(&w, &r, &plan);
        assert_eq!(report.lanes.len(), 5);
        // Every record lands in exactly one lane.
        assert_eq!(
            report.lanes.iter().map(|l| l.routed).sum::<usize>(),
            r.records.len()
        );
        assert_eq!(
            report.lanes.iter().map(|l| l.committed).sum::<usize>(),
            r.committed()
        );
        assert_eq!(report.total_wrongful(), 0);
        // Exporter idempotence: exporting the same report twice into one
        // registry must not change any value (the PR-8 regression guard).
        assert_idempotent_export(|m| report.record_into(m));
    }

    #[test]
    fn lane_result_projections_cover_and_stay_auditable() {
        let w = WorkloadBuilder::new(WorkloadParams::ios().with_rate(200.0))
            .seed(42)
            .n_changes(150)
            .build()
            .unwrap();
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let r = run_simulation(&w, &strategy, &PlannerConfig::default());
        crate::audit::audit_green(&w, &r).unwrap();
        let plan = ShardPlan::round_robin(300, 3);
        let mut seen_records = 0usize;
        let mut seen_commits: Vec<ChangeId> = Vec::new();
        for lane in 0..plan.n_lanes() {
            let lr = lane_result(&w, &r, &plan, lane);
            // A green merged trunk implies every lane projection is green
            // (pairs in the sublog are pairs in the full log).
            crate::audit::audit_green(&w, &lr).unwrap();
            seen_records += lr.records.len();
            seen_commits.extend(&lr.commit_log);
        }
        assert_eq!(seen_records, r.records.len());
        seen_commits.sort_unstable();
        let mut all: Vec<ChangeId> = r.commit_log.clone();
        all.sort_unstable();
        assert_eq!(seen_commits, all);
    }
}
