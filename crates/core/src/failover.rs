//! Fenced failover coordination: replicated leaders, follower
//! promotion, and reconnect scheduling.
//!
//! `store::replicate` provides the *mechanism* — frame shipping, epoch
//! fencing, resync. This module is the *policy* layer that turns it
//! into an operable service:
//!
//! * [`open_leader`] — a [`DurableSubmitQueue`] journaling through a
//!   replicating [`Leader`] instead of a single-node store; the service
//!   layer is otherwise identical (the [`Wal`](sq_store::Wal) seam).
//! * [`promote_from_follower`] — fenced promotion: claim a strictly
//!   newer epoch (durably, *before* serving), replay the replica's
//!   journal to its last durable LSN, restore the service, and assert
//!   the lockstep mirror invariant. Returns a [`PromotionReport`] with
//!   what recovery had to do.
//! * [`best_promotion_candidate`] — pick the replica with the highest
//!   (epoch, durable LSN); under synchronous shipping that replica
//!   holds every acked record, which is what makes failover zero-loss.
//! * [`ReconnectScheduler`] — capped-backoff reconnection of down links
//!   reusing [`RetryPolicy`]'s deterministic jitter schedule; the store
//!   layer exposes only the mechanical per-attempt
//!   [`Leader::reconnect`].
//!
//! Promotion safety model: a *single coordinator* (this module's
//! caller — the chaos harness, an operator, a control plane) decides
//! who is promoted. The epoch fence then guarantees that however late
//! the deposed leader comes back, it can never ack work the new
//! timeline does not contain — promotion persists the new epoch before
//! the new leader accepts anything, and every receive path re-reads the
//! persisted epoch, so the race is decided by the medium, not by
//! in-memory state.

use crate::durable::DurableSubmitQueue;
use crate::recovery::RecoveryConfig;
use sq_exec::RetryPolicy;
use sq_obs::MetricsRegistry;
use sq_sim::SimDuration;
use sq_store::{
    DurableStoreConfig, Follower, Leader, LinkState, ReplicationConfig, ReplicationStats,
    ReplicationStatus, ShipSamples, Storage, StoreError,
};
use sq_vcs::Repository;

/// Open a replicated durable service: the queue journals through a
/// [`Leader`] (local WAL + shipping) instead of a single-node store.
/// Attach followers afterwards with
/// [`DurableSubmitQueue::attach_follower`].
pub fn open_leader<S: Storage + Clone>(
    repo: Repository,
    threads: usize,
    recovery: RecoveryConfig,
    storage: S,
    store_config: DurableStoreConfig,
    replication: ReplicationConfig,
) -> Result<DurableSubmitQueue<Leader<S>>, StoreError> {
    let (leader, recovered) = Leader::open(storage, store_config, replication)?;
    DurableSubmitQueue::from_recovered(repo, threads, recovery, leader, &recovered)
}

/// What a promotion had to do to bring a replica into service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionReport {
    /// The epoch claimed (strictly above everything observed).
    pub epoch: u64,
    /// Highest LSN durable on the promoted replica — the exact
    /// acknowledged prefix it serves from.
    pub durable_lsn: u64,
    /// Journal records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Torn-tail bytes truncated during the open (nonzero when the
    /// replica's medium was itself mid-write at the crash).
    pub truncated_bytes: u64,
    /// True when a snapshot seeded the replay.
    pub snapshot_loaded: bool,
}

/// Promote the replica on `storage` to a serving leader.
///
/// Fencing order matters: the new epoch — strictly above both the
/// replica's own and `fence_above` (the coordinator's highest known
/// epoch, typically the dead leader's) — is persisted to the medium
/// *before* any state is served, so a stale leader returning from the
/// dead is refused by every replica that has seen the new epoch.
/// Recovery then replays `snapshot ⊕ journal suffix` to the last
/// durable LSN, restores the in-memory service, and asserts the
/// lockstep mirror invariant.
pub fn promote_from_follower<S: Storage + Clone>(
    repo: Repository,
    threads: usize,
    recovery: RecoveryConfig,
    storage: S,
    store_config: DurableStoreConfig,
    replication: ReplicationConfig,
    fence_above: u64,
) -> Result<(DurableSubmitQueue<Leader<S>>, PromotionReport), StoreError> {
    let (mut follower, _) = Follower::open(storage.clone(), store_config.clone(), &replication)?;
    let claimed = follower.promote_to(fence_above.max(follower.epoch()) + 1)?;
    drop(follower);
    let (leader, recovered) = Leader::open(storage, store_config, replication)?;
    assert_eq!(leader.epoch(), claimed, "promotion epoch must persist");
    let report = PromotionReport {
        epoch: claimed,
        durable_lsn: leader.durable_lsn(),
        replayed_records: recovered.replay_stats().replayed_records,
        truncated_bytes: recovered.truncated_tail_bytes,
        snapshot_loaded: recovered.snapshot.is_some(),
    };
    let queue = DurableSubmitQueue::from_recovered(repo, threads, recovery, leader, &recovered)?;
    queue.assert_mirror_lockstep();
    Ok((queue, report))
}

/// The best replica to promote, and the cluster-wide epoch horizon the
/// promotion must fence above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionCandidate {
    /// Index into the candidate slice.
    pub index: usize,
    /// That replica's persisted epoch.
    pub epoch: u64,
    /// That replica's durable LSN.
    pub durable_lsn: u64,
    /// Highest epoch observed across *all* candidates — pass as
    /// `fence_above` so the claimed epoch exceeds every survivor's.
    pub cluster_epoch: u64,
}

/// Inspect every surviving replica and pick the one with the highest
/// `(epoch, durable LSN)` — the longest acknowledged history on the
/// newest timeline. Opening a candidate repairs (truncates) any torn
/// tail its medium holds, exactly as promotion itself would.
pub fn best_promotion_candidate<S: Storage + Clone>(
    storages: &[S],
    store_config: &DurableStoreConfig,
    replication: &ReplicationConfig,
) -> Result<PromotionCandidate, StoreError> {
    assert!(!storages.is_empty(), "no replicas to promote");
    let mut best: Option<PromotionCandidate> = None;
    let mut cluster_epoch = 0;
    for (index, storage) in storages.iter().enumerate() {
        let (follower, _) = Follower::open(storage.clone(), store_config.clone(), replication)?;
        let (epoch, durable_lsn) = (follower.epoch(), follower.durable_lsn());
        cluster_epoch = cluster_epoch.max(epoch);
        if best
            .map(|b| (epoch, durable_lsn) > (b.epoch, b.durable_lsn))
            .unwrap_or(true)
        {
            best = Some(PromotionCandidate {
                index,
                epoch,
                durable_lsn,
                cluster_epoch: 0,
            });
        }
    }
    let mut best = best.expect("non-empty candidate set");
    best.cluster_epoch = cluster_epoch;
    Ok(best)
}

/// One sweep of [`ReconnectScheduler::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReconnectTick {
    /// Reconnect attempts made this sweep.
    pub attempted: usize,
    /// Links brought back up.
    pub reconnected: usize,
    /// Down links whose attempt budget is exhausted (left down until an
    /// operator intervenes or the scheduler is reset).
    pub exhausted: usize,
    /// Total backoff charged this sweep (deterministic capped-jitter
    /// schedule from the [`RetryPolicy`]).
    pub backoff: SimDuration,
}

/// Capped-backoff reconnect scheduling over a replicated queue's down
/// links. The [`RetryPolicy`] supplies the attempt cap and the
/// deterministic jittered backoff curve; a link that comes back up
/// resets its budget.
#[derive(Debug, Clone)]
pub struct ReconnectScheduler {
    policy: RetryPolicy,
    attempts: Vec<u32>,
}

impl ReconnectScheduler {
    /// A scheduler charging reconnects against `policy`.
    pub fn new(policy: RetryPolicy) -> Self {
        ReconnectScheduler {
            policy,
            attempts: Vec::new(),
        }
    }

    /// Attempts charged against link `idx` since it was last up.
    pub fn attempts(&self, idx: usize) -> u32 {
        self.attempts.get(idx).copied().unwrap_or(0)
    }

    /// Sweep every link: healthy links reset their budget; down links
    /// within budget get one reconnect attempt each (with its backoff
    /// charged); down links past `max_attempts` are counted exhausted
    /// and left alone.
    pub fn tick<S: Storage + Clone>(
        &mut self,
        queue: &DurableSubmitQueue<Leader<S>>,
    ) -> ReconnectTick {
        let states = queue.link_states();
        self.attempts.resize(states.len(), 0);
        let mut tick = ReconnectTick::default();
        for (idx, state) in states.iter().enumerate() {
            if !state.down {
                self.attempts[idx] = 0;
                continue;
            }
            let attempt = self.attempts[idx] + 1;
            if attempt > self.policy.max_attempts {
                tick.exhausted += 1;
                continue;
            }
            self.attempts[idx] = attempt;
            tick.backoff += self.policy.backoff(attempt);
            tick.attempted += 1;
            if queue.reconnect(idx).is_ok() {
                tick.reconnected += 1;
                self.attempts[idx] = 0;
            }
        }
        tick
    }
}

impl<S: Storage + Clone> DurableSubmitQueue<Leader<S>> {
    /// Attach and synchronize a follower (see [`Leader::attach_follower`]).
    pub fn attach_follower(
        &self,
        storage: S,
        config: DurableStoreConfig,
    ) -> Result<usize, StoreError> {
        self.ctx.lock().store.attach_follower(storage, config)
    }

    /// One mechanical reconnect attempt for link `idx` (scheduling
    /// belongs to [`ReconnectScheduler`]).
    pub fn reconnect(&self, idx: usize) -> Result<(), StoreError> {
        self.ctx.lock().store.reconnect(idx)
    }

    /// The leader's fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.ctx.lock().store.epoch()
    }

    /// Replication health.
    pub fn replication_status(&self) -> ReplicationStatus {
        self.ctx.lock().store.status()
    }

    /// Shipping and failover counters.
    pub fn replication_stats(&self) -> ReplicationStats {
        *self.ctx.lock().store.replication_stats()
    }

    /// Per-link health and lag.
    pub fn link_states(&self) -> Vec<LinkState> {
        self.ctx.lock().store.link_states()
    }

    /// Record replication metrics including the wall-clock ack-latency
    /// histogram. Byte-stable exports must use
    /// [`Self::record_replication_deterministic_into`] instead.
    pub fn record_replication_into(&self, metrics: &mut MetricsRegistry) {
        let samples = self.ctx.lock().store.take_ship_samples();
        self.record_replication_core(metrics, &samples);
        for micros in &samples.ack_micros {
            metrics.observe("replication.ack.latency_micros", *micros as f64);
        }
    }

    /// Record the deterministic subset of replication metrics: per-link
    /// lag gauges, ship-batch histograms, epoch/promotion counters —
    /// everything except wall-clock latency, so same-seed runs export
    /// byte-identical JSON.
    pub fn record_replication_deterministic_into(&self, metrics: &mut MetricsRegistry) {
        let samples = self.ctx.lock().store.take_ship_samples();
        self.record_replication_core(metrics, &samples);
    }

    fn record_replication_core(&self, metrics: &mut MetricsRegistry, samples: &ShipSamples) {
        let (epoch, stats, links) = {
            let ctx = self.ctx.lock();
            (
                ctx.store.epoch(),
                *ctx.store.replication_stats(),
                ctx.store.link_states(),
            )
        };
        metrics.set_gauge("replication.epoch", epoch as f64);
        // `ReplicationStats` carries cumulative lifetime totals, so the
        // export reconciles counters against the totals instead of
        // `add()`ing them: a periodic exporter (the server's `Stats`
        // handler) hands the same snapshot over repeatedly, and
        // re-adding a running total double-counts on every pass.
        // Epoch 1 is the founding leader; every bump is a promotion.
        metrics.record_total("replication.promotions", epoch.saturating_sub(1));
        metrics.record_total("replication.ships", stats.ships);
        metrics.record_total("replication.shipped_records", stats.shipped_records);
        metrics.record_total("replication.shipped_bytes", stats.shipped_bytes);
        metrics.record_total("replication.acked_quorum", stats.acked_quorum);
        metrics.record_total("replication.degraded_acks", stats.degraded_acks);
        metrics.record_total("replication.link_drops", stats.link_drops);
        metrics.record_total("replication.fence_refusals", stats.fence_refusals);
        metrics.record_total("replication.resyncs", stats.resyncs);
        metrics.record_total("replication.snapshots_installed", stats.snapshots_installed);
        metrics.record_total("replication.reconnects", stats.reconnects);
        metrics.record_total(
            "replication.follower_truncated_bytes",
            stats.follower_truncated_bytes,
        );
        metrics.set_gauge("replication.links", links.len() as f64);
        for (idx, link) in links.iter().enumerate() {
            metrics.set_gauge(&format!("replication.follower.{idx}.lag"), link.lag as f64);
            metrics.set_gauge(
                &format!("replication.follower.{idx}.durable_lsn"),
                link.durable_lsn as f64,
            );
            metrics.set_gauge(
                &format!("replication.follower.{idx}.down"),
                if link.down { 1.0 } else { 0.0 },
            );
        }
        for records in &samples.batch_records {
            metrics.observe("replication.ship.batch_records", *records as f64);
        }
        for bytes in &samples.batch_bytes {
            metrics.observe("replication.ship.batch_bytes", *bytes as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{StepAction, TicketId, TicketState};
    use sq_exec::StepOutcome;
    use sq_store::{AckMode, CrashKind, CrashPlan, MemStorage};
    use sq_vcs::{Patch, RepoPath};
    use std::sync::{Arc, Mutex as StdMutex};

    type Shared = Arc<StdMutex<MemStorage>>;

    fn shared() -> Shared {
        Arc::new(StdMutex::new(MemStorage::new()))
    }

    fn always_pass() -> Box<StepAction> {
        Box::new(|_step, _tree| StepOutcome::Success)
    }

    fn demo_repo() -> Repository {
        Repository::init([
            ("lib/BUILD", "library(name = \"lib\", srcs = [\"l.rs\"])"),
            ("lib/l.rs", "pub fn l() {}"),
        ])
        .unwrap()
    }

    fn lib_patch(v: u32) -> Patch {
        Patch::write(
            RepoPath::new("lib/l.rs").unwrap(),
            format!("pub fn l() {{ /* v{v} */ }}"),
        )
    }

    fn cfg() -> DurableStoreConfig {
        DurableStoreConfig::with_snapshot_every(u64::MAX)
    }

    fn repl(mode: AckMode) -> ReplicationConfig {
        ReplicationConfig::with_ack_mode(mode)
    }

    fn open_two_follower_leader(
        mode: AckMode,
    ) -> (DurableSubmitQueue<Leader<Shared>>, Shared, Shared, Shared) {
        let (ls, f1, f2) = (shared(), shared(), shared());
        let dq = open_leader(
            demo_repo(),
            2,
            RecoveryConfig::disabled(),
            ls.clone(),
            cfg(),
            repl(mode),
        )
        .unwrap();
        dq.attach_follower(f1.clone(), cfg()).unwrap();
        dq.attach_follower(f2.clone(), cfg()).unwrap();
        (dq, ls, f1, f2)
    }

    #[test]
    fn replicated_queue_lands_changes_and_stays_healthy() {
        let (dq, _ls, _f1, _f2) = open_two_follower_leader(AckMode::Quorum);
        let t = dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        dq.run_until_idle(&always_pass()).unwrap();
        assert!(matches!(dq.status(t), Some(TicketState::Landed(_))));
        assert_eq!(dq.replication_status(), ReplicationStatus::Healthy);
        assert_eq!(dq.epoch(), 1);
        let stats = dq.replication_stats();
        assert!(stats.ships >= 6, "3 batches x 2 followers, got {stats:?}");
        assert_eq!(stats.degraded_acks, 0);
    }

    #[test]
    fn promoted_follower_serves_identical_state_and_fences_the_dead_leader() {
        let (dq, ls, f1, f2) = open_two_follower_leader(AckMode::Quorum);
        let t1 = dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        dq.run_until_idle(&always_pass()).unwrap();
        let t2 = dq.submit("bob", "v2", dq.head(), lib_patch(2)).unwrap();
        let exported = dq.export_state_json();
        let repo = dq.repository();
        drop(dq); // leader process dies

        let candidate =
            best_promotion_candidate(&[f1.clone(), f2.clone()], &cfg(), &repl(AckMode::Quorum))
                .unwrap();
        assert_eq!(candidate.epoch, 1);
        assert_eq!(candidate.cluster_epoch, 1);
        let storage = [f1.clone(), f2.clone()][candidate.index].clone();
        let (promoted, report) = promote_from_follower(
            repo,
            2,
            RecoveryConfig::disabled(),
            storage,
            cfg(),
            repl(AckMode::Quorum),
            candidate.cluster_epoch,
        )
        .unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(report.durable_lsn, candidate.durable_lsn);
        assert_eq!(report.truncated_bytes, 0);
        // Zero acked enqueues lost: the promoted replica's export is
        // byte-identical to the dead leader's last acknowledged state.
        assert_eq!(promoted.export_state_json(), exported);
        assert!(matches!(promoted.status(t1), Some(TicketState::Landed(_))));
        assert_eq!(promoted.status(t2), Some(TicketState::Queued));
        promoted.run_until_idle(&always_pass()).unwrap();
        assert!(matches!(promoted.status(t2), Some(TicketState::Landed(_))));

        // The dead leader restarts at its old epoch and tries to serve:
        // the first shipped frame is fenced and the submit fails.
        let revenant = open_leader(
            promoted.repository(),
            2,
            RecoveryConfig::disabled(),
            ls.clone(),
            cfg(),
            repl(AckMode::Quorum),
        )
        .unwrap();
        assert_eq!(revenant.epoch(), 1);
        let err = revenant.attach_follower(f1.clone(), cfg()).unwrap_err();
        assert!(matches!(err, StoreError::Fenced { .. }));
    }

    #[test]
    fn promotion_claims_a_strictly_increasing_epoch_chain() {
        let (dq, _ls, f1, f2) = open_two_follower_leader(AckMode::Async);
        dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        let repo = dq.repository();
        drop(dq);
        let (second, report) = promote_from_follower(
            repo,
            2,
            RecoveryConfig::disabled(),
            f1.clone(),
            cfg(),
            repl(AckMode::Async),
            1,
        )
        .unwrap();
        assert_eq!(report.epoch, 2);
        second.attach_follower(f2.clone(), cfg()).unwrap();
        let repo = second.repository();
        drop(second);
        let (third, report) = promote_from_follower(
            repo,
            2,
            RecoveryConfig::disabled(),
            f2.clone(),
            cfg(),
            repl(AckMode::Async),
            2,
        )
        .unwrap();
        assert_eq!(report.epoch, 3);
        assert_eq!(third.epoch(), 3);
    }

    #[test]
    fn reconnect_scheduler_backs_off_then_heals_or_exhausts() {
        let (dq, _ls, f1, _f2) = open_two_follower_leader(AckMode::Quorum);
        dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        // Kill follower 1's medium: the next ship drops the link.
        let ops = f1.lock().unwrap().ops();
        f1.lock()
            .unwrap()
            .set_plan(CrashPlan::at_op(ops, CrashKind::Torn));
        dq.run_until_idle(&always_pass()).unwrap();
        assert!(matches!(
            dq.replication_status(),
            ReplicationStatus::Degraded { down: 1, .. }
        ));

        let mut sched = ReconnectScheduler::new(RetryPolicy::standard(3, 42));
        // Medium still dead: attempts are charged with backoff.
        let tick = sched.tick(&dq);
        assert_eq!((tick.attempted, tick.reconnected), (1, 0));
        assert!(tick.backoff > SimDuration::ZERO);
        // Revive: the next sweep reconnects and resets the budget.
        f1.lock().unwrap().revive();
        f1.lock().unwrap().set_plan(CrashPlan::none());
        let tick = sched.tick(&dq);
        assert_eq!((tick.attempted, tick.reconnected), (1, 1));
        assert_eq!(dq.replication_status(), ReplicationStatus::Healthy);
        assert_eq!(sched.attempts(0), 0);

        // Kill it again and let the budget run out.
        let ops = f1.lock().unwrap().ops();
        f1.lock()
            .unwrap()
            .set_plan(CrashPlan::at_op(ops, CrashKind::Torn));
        dq.submit("bob", "v2", dq.head(), lib_patch(2)).unwrap();
        for _ in 0..3 {
            let tick = sched.tick(&dq);
            assert_eq!(tick.attempted, 1);
        }
        let tick = sched.tick(&dq);
        assert_eq!((tick.attempted, tick.exhausted), (0, 1));
    }

    #[test]
    fn degraded_quorum_keeps_serving_and_is_visible() {
        let (dq, _ls, f1, f2) = open_two_follower_leader(AckMode::Quorum);
        for f in [&f1, &f2] {
            let ops = f.lock().unwrap().ops();
            f.lock()
                .unwrap()
                .set_plan(CrashPlan::at_op(ops, CrashKind::Torn));
        }
        let t = dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        dq.run_until_idle(&always_pass()).unwrap();
        assert!(matches!(dq.status(t), Some(TicketState::Landed(_))));
        let stats = dq.replication_stats();
        assert_eq!(stats.link_drops, 2);
        assert!(stats.degraded_acks > 0);
        assert!(matches!(
            dq.replication_status(),
            ReplicationStatus::Degraded {
                down: 2,
                quorum_ok: false,
                ..
            }
        ));
    }

    /// Replication observability sibling of the planner's
    /// `observed_runs_are_unperturbed_and_export_identical_json`: the
    /// deterministic metric subset (lag gauges, ship-batch histograms,
    /// epoch/promotion counters, store counters) must export
    /// byte-identical JSON across same-seed runs — including across a
    /// crash + promotion.
    #[test]
    fn observed_replicated_runs_export_identical_json() {
        let run = || {
            let (dq, _ls, f1, f2) = open_two_follower_leader(AckMode::Quorum);
            for v in 0..3 {
                dq.submit("alice", format!("v{v}"), dq.head(), lib_patch(v))
                    .unwrap();
                dq.run_until_idle(&always_pass()).unwrap();
            }
            let repo = dq.repository();
            drop(dq);
            let (promoted, _) = promote_from_follower(
                repo,
                2,
                RecoveryConfig::disabled(),
                f1.clone(),
                cfg(),
                repl(AckMode::Quorum),
                1,
            )
            .unwrap();
            // The surviving replica rejoins the new timeline via resync.
            promoted.attach_follower(f2.clone(), cfg()).unwrap();
            promoted.run_until_idle(&always_pass()).unwrap();
            let mut metrics = MetricsRegistry::new();
            promoted.record_replication_deterministic_into(&mut metrics);
            // Store counters too — minus the wall-clock replay field.
            let st = promoted.store_stats();
            metrics.add("store.journal.appends", st.appends);
            metrics.add("store.recovery.replayed_records", st.replayed_records);
            metrics.add(
                "store.recovery.truncated_tail_bytes",
                st.truncated_tail_bytes,
            );
            (metrics.to_json(), promoted.export_state_json())
        };
        let (metrics_a, state_a) = run();
        let (metrics_b, state_b) = run();
        assert_eq!(metrics_a, metrics_b);
        assert_eq!(state_a, state_b);
        assert!(metrics_a.contains("replication.follower.0.lag"));
        assert!(metrics_a.contains("replication.ship.batch_records"));
        assert!(metrics_a.contains("replication.promotions"));
    }

    /// Regression for the double-counting family: `ReplicationStats`
    /// are cumulative lifetime totals, and the old exporter `add()`ed
    /// them into counters on every call, so a periodic export (the
    /// server's `Stats` handler) reported 2x/3x the true totals. Two
    /// sequential exports into one registry must now equal one.
    #[test]
    fn replication_export_is_idempotent_across_repeated_exports() {
        let (dq, _ls, f1, _f2) = open_two_follower_leader(AckMode::Quorum);
        for v in 0..3 {
            dq.submit("alice", format!("v{v}"), dq.head(), lib_patch(v))
                .unwrap();
            dq.run_until_idle(&always_pass()).unwrap();
        }
        // Sanity: the first export reports the true totals...
        let mut once = MetricsRegistry::new();
        dq.record_replication_deterministic_into(&mut once);
        let stats = dq.replication_stats();
        assert_eq!(once.counter("replication.ships"), stats.ships);
        // ...and a second export of the same snapshot changes nothing.
        dq.record_replication_deterministic_into(&mut once);
        assert_eq!(once.counter("replication.ships"), stats.ships);
        sq_obs::assert_idempotent_export(|m| dq.record_replication_deterministic_into(m));

        // Promotions survive the same discipline: the counter derives
        // from the fencing epoch, not from re-adding `epoch - 1`.
        let repo = dq.repository();
        drop(dq);
        let (promoted, _) = promote_from_follower(
            repo,
            2,
            RecoveryConfig::disabled(),
            f1.clone(),
            cfg(),
            repl(AckMode::Quorum),
            1,
        )
        .unwrap();
        let mut m = MetricsRegistry::new();
        promoted.record_replication_deterministic_into(&mut m);
        promoted.record_replication_deterministic_into(&mut m);
        assert_eq!(m.counter("replication.promotions"), 1);
    }

    #[test]
    fn full_metrics_include_ack_latency_histogram() {
        let (dq, _ls, _f1, _f2) = open_two_follower_leader(AckMode::Quorum);
        dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        dq.run_until_idle(&always_pass()).unwrap();
        let mut metrics = MetricsRegistry::new();
        dq.record_replication_into(&mut metrics);
        let hist = metrics.histogram("replication.ack.latency_micros").unwrap();
        assert!(hist.count() >= 3);
    }

    #[test]
    fn mirror_lockstep_assertion_holds_after_promotion_mid_flight() {
        // Crash between the VCS commit and the verdict journal (op 4 on
        // a replicated leader: 0 magic, 1 meta, 2 enqueue, 3 spec-start,
        // 4 verdict batch), then promote: the mirror says Queued while
        // the repo already has the commit — lockstep must still hold
        // and recovery must not double-commit.
        let ls = Arc::new(StdMutex::new(MemStorage::with_crashes(CrashPlan::at_op(
            4,
            CrashKind::Torn,
        ))));
        let fs = shared();
        let dq = open_leader(
            demo_repo(),
            2,
            RecoveryConfig::disabled(),
            ls.clone(),
            cfg(),
            repl(AckMode::Quorum),
        )
        .unwrap();
        dq.attach_follower(fs.clone(), cfg()).unwrap();
        let t = dq.submit("alice", "v1", dq.head(), lib_patch(1)).unwrap();
        let err = dq.process_next(&always_pass()).unwrap_err();
        assert!(matches!(err, StoreError::Crashed { .. }));
        let repo = dq.repository();
        let commits_before = repo.log(repo.head()).unwrap().len();
        drop(dq);
        let (promoted, report) = promote_from_follower(
            repo,
            2,
            RecoveryConfig::disabled(),
            fs.clone(),
            cfg(),
            repl(AckMode::Quorum),
            1,
        )
        .unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(promoted.status(t), Some(TicketState::Queued));
        promoted.run_until_idle(&always_pass()).unwrap();
        match promoted.status(t) {
            Some(TicketState::Landed(c)) => assert_eq!(c, promoted.head()),
            other => panic!("expected landed, got {other:?}"),
        }
        let repo2 = promoted.repository();
        assert_eq!(
            repo2.log(repo2.head()).unwrap().len(),
            commits_before,
            "promotion must not double-commit"
        );
        assert_eq!(promoted.status(TicketId(t.0)), promoted.status(t));
    }
}
