//! Outcome prediction — `P_succ(Cᵢ)` and `P_conf(Cᵢ, Cⱼ)`.
//!
//! "SubmitQueue uses the conventional regression model for predicting
//! probabilities of a change success or a change failure … by correctly
//! estimating `P_succ` and `P_conf`, SubmitQueue's performance becomes
//! close to the performance of a system with an oracle" (Section 4.2.1).
//!
//! The estimators:
//! * [`LearnedPredictor`] — the paper's production pair of logistic
//!   models, trained on historical changes (Section 7.2), including the
//!   dynamic speculation counters that dominated the learned weights.
//! * [`OraclePredictor`] — perfect foresight; the normalization baseline
//!   of Section 8.
//! * [`UniformPredictor`] — 50/50, which turns the speculation engine
//!   into the Speculate-all baseline.
//! * [`OptimisticPredictor`] — certainty of success: the Zuul-style
//!   Optimistic baseline.

use sq_ml::{Dataset, LogisticRegression, Scaler, TrainConfig};
use sq_sim::Xoshiro256StarStar;
use sq_workload::features::{
    conflict_features, success_features, CONFLICT_FEATURES, SUCCESS_FEATURES,
};
use sq_workload::{ChangeSpec, GroundTruth, Workload};

/// Dynamic per-change counters the planner feeds back into prediction
/// ("the number of speculations that succeeded or failed were also
/// included for training" — Section 7.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeculationCounters {
    /// Speculative builds containing the change that succeeded.
    pub succeeded: u32,
    /// Speculative builds containing the change that failed.
    pub failed: u32,
}

/// A `P_succ`/`P_conf` estimator.
pub trait Predictor {
    /// Probability the change's build steps pass in isolation.
    fn p_success(&self, w: &Workload, c: &ChangeSpec, counters: SpeculationCounters) -> f64;

    /// Probability the two changes really conflict, *given* the conflict
    /// analyzer flagged them as potentially conflicting.
    fn p_conflict(&self, w: &Workload, a: &ChangeSpec, b: &ChangeSpec) -> f64;
}

/// Perfect foresight (Section 8's Oracle).
#[derive(Debug, Clone)]
pub struct OraclePredictor {
    truth: GroundTruth,
}

impl OraclePredictor {
    /// Build from the workload's ground truth.
    pub fn new(w: &Workload) -> Self {
        OraclePredictor { truth: w.truth() }
    }
}

impl Predictor for OraclePredictor {
    fn p_success(&self, _w: &Workload, c: &ChangeSpec, _k: SpeculationCounters) -> f64 {
        if self.truth.succeeds_alone(c) {
            1.0
        } else {
            0.0
        }
    }

    fn p_conflict(&self, _w: &Workload, a: &ChangeSpec, b: &ChangeSpec) -> f64 {
        if self.truth.real_conflict(a, b) {
            1.0
        } else {
            0.0
        }
    }
}

/// Fixed 50/50 odds — drives Speculate-all.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformPredictor;

impl Predictor for UniformPredictor {
    fn p_success(&self, _w: &Workload, _c: &ChangeSpec, _k: SpeculationCounters) -> f64 {
        0.5
    }

    fn p_conflict(&self, _w: &Workload, _a: &ChangeSpec, _b: &ChangeSpec) -> f64 {
        0.5
    }
}

/// Certainty of success — drives the Optimistic (Zuul) baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimisticPredictor;

impl Predictor for OptimisticPredictor {
    fn p_success(&self, _w: &Workload, _c: &ChangeSpec, _k: SpeculationCounters) -> f64 {
        1.0
    }

    fn p_conflict(&self, _w: &Workload, _a: &ChangeSpec, _b: &ChangeSpec) -> f64 {
        0.0
    }
}

/// Accuracy report from training (the Section 7.2 numbers).
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Validation accuracy of the success model (paper: 97%).
    pub success_accuracy: f64,
    /// Validation ROC-AUC of the success model.
    pub success_auc: f64,
    /// Validation accuracy of the conflict model.
    pub conflict_accuracy: f64,
    /// Success-model features ranked by |standardized weight|, strongest
    /// first — compare with the paper's reported top features.
    pub success_feature_ranking: Vec<String>,
}

/// The production predictor: two trained logistic models.
#[derive(Debug, Clone)]
pub struct LearnedPredictor {
    success_model: LogisticRegression,
    success_scaler: Scaler,
    conflict_model: LogisticRegression,
    conflict_scaler: Scaler,
}

impl LearnedPredictor {
    /// Train on a historical workload (the paper trained on changes that
    /// previously went through SubmitQueue, 70/30 split).
    ///
    /// The dynamic speculation counters in the history are synthesized
    /// from each change's eventual outcome — in production they come from
    /// earlier speculations of the same change and correlate with the
    /// outcome the same way.
    pub fn train(history: &Workload, seed: u64) -> (LearnedPredictor, TrainingReport) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let truth = history.truth();

        // ---- Success model ----
        let mut data = Dataset::new(SUCCESS_FEATURES.iter().map(|s| s.to_string()).collect());
        for c in &history.changes {
            let dev = history.developer(c.developer);
            // The label comes from the oracle, not the raw intrinsic
            // coin, so part-correlated flaky-test failures (adversarial
            // scenarios) are part of the signal the model learns.
            let label = truth.succeeds_alone(c);
            // Synthetic dynamic counters, correlated with the outcome.
            let (ok, fail) = if label {
                (rng.next_below(4) as u32 + 1, rng.next_below(2) as u32)
            } else {
                (rng.next_below(2) as u32, rng.next_below(4) as u32 + 1)
            };
            data.push(success_features(c, dev, ok, fail), label);
        }
        let split = data.split(0.7, &mut rng);
        let scaler = Scaler::fit(&split.train);
        let z_train = scaler.transform(&split.train);
        let z_test = scaler.transform(&split.test);
        let (success_model, _) = LogisticRegression::fit(&z_train, &TrainConfig::default());
        let success_accuracy = success_model.accuracy(&z_test);
        let success_auc = sq_ml::roc_auc(&success_model.predict(&z_test), z_test.labels());
        let ranking = success_model
            .importance_ranking()
            .into_iter()
            .map(|i| SUCCESS_FEATURES[i].to_string())
            .collect();

        // ---- Conflict model (potentially-conflicting pairs only) ----
        let mut cdata = Dataset::new(CONFLICT_FEATURES.iter().map(|s| s.to_string()).collect());
        let changes = &history.changes;
        for (i, a) in changes.iter().enumerate() {
            // Pair with a handful of later changes to bound the dataset.
            for b in changes[i + 1..].iter().take(12) {
                if !a.potentially_conflicts(b) {
                    continue;
                }
                let label = truth.real_conflict(a, b);
                cdata.push(
                    conflict_features(
                        a,
                        history.developer(a.developer),
                        b,
                        history.developer(b.developer),
                    ),
                    label,
                );
            }
        }
        let (conflict_model, conflict_scaler, conflict_accuracy) = if cdata.len() >= 50 {
            let csplit = cdata.split(0.7, &mut rng);
            let cscaler = Scaler::fit(&csplit.train);
            let zc_train = cscaler.transform(&csplit.train);
            let zc_test = cscaler.transform(&csplit.test);
            let (m, _) = LogisticRegression::fit(&zc_train, &TrainConfig::default());
            let acc = m.accuracy(&zc_test);
            (m, cscaler, acc)
        } else {
            // Degenerate history: fall back to a prior-rate model.
            (
                LogisticRegression::zeros(CONFLICT_FEATURES.len()),
                Scaler::fit(&cdata),
                0.0,
            )
        };

        (
            LearnedPredictor {
                success_model,
                success_scaler: scaler,
                conflict_model,
                conflict_scaler,
            },
            TrainingReport {
                success_accuracy,
                success_auc,
                conflict_accuracy,
                success_feature_ranking: ranking,
            },
        )
    }

    /// Calibrate a lean-speculation skip threshold against `history`:
    /// the largest conflict-probability cutoff whose *empirical* miss
    /// rate — the fraction of potentially-conflicting pairs scored
    /// below the cutoff that really conflict — stays within
    /// `max_miss_rate`. Scores come from this predictor over the same
    /// pair enumeration used at training time, so the threshold is
    /// calibrated in the score space the planner will consult.
    ///
    /// Returns `0.0` (never skip) when no cutoff on the grid is safe —
    /// a deliberately conservative fallback: lean speculation degrades
    /// to plain SubmitQueue rather than guessing.
    pub fn calibrate_skip_threshold(&self, history: &Workload, max_miss_rate: f64) -> f64 {
        let truth = history.truth();
        let changes = &history.changes;
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for (i, a) in changes.iter().enumerate() {
            for b in changes[i + 1..].iter().take(12) {
                if !a.potentially_conflicts(b) {
                    continue;
                }
                scores.push(self.p_conflict(history, a, b));
                labels.push(truth.real_conflict(a, b));
            }
        }
        if scores.len() < 50 {
            return 0.0; // too little evidence to gate anything
        }
        let calibration = sq_ml::Calibration::fit(&scores, &labels, 20);
        // Candidate cutoffs span the *low-risk* regime only: skipping is
        // for changes the model is confident about, so the grid tops out
        // well below coin-flip odds. (The empirical-rate curve goes
        // nearly flat above this range — few pairs score there — and an
        // unbounded grid would let the budget leap to absurd cutoffs on
        // tail noise.)
        const GRID: [f64; 6] = [0.005, 0.01, 0.02, 0.03, 0.05, 0.08];
        calibration
            .largest_threshold_with_rate_below(&GRID, max_miss_rate)
            .unwrap_or(0.0)
    }
}

impl Predictor for LearnedPredictor {
    fn p_success(&self, w: &Workload, c: &ChangeSpec, k: SpeculationCounters) -> f64 {
        let dev = w.developer(c.developer);
        let mut row = success_features(c, dev, k.succeeded, k.failed);
        self.success_scaler.transform_row(&mut row);
        self.success_model.predict_row(&row)
    }

    fn p_conflict(&self, w: &Workload, a: &ChangeSpec, b: &ChangeSpec) -> f64 {
        let mut row = conflict_features(a, w.developer(a.developer), b, w.developer(b.developer));
        self.conflict_scaler.transform_row(&mut row);
        self.conflict_model.predict_row(&row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_workload::{WorkloadBuilder, WorkloadParams};

    fn workload(n: usize, seed: u64) -> Workload {
        WorkloadBuilder::new(WorkloadParams::ios())
            .seed(seed)
            .n_changes(n)
            .build()
            .unwrap()
    }

    #[test]
    fn oracle_is_perfect() {
        let w = workload(300, 1);
        let p = OraclePredictor::new(&w);
        let truth = w.truth();
        for c in &w.changes {
            let prob = p.p_success(&w, c, SpeculationCounters::default());
            assert_eq!(prob, if truth.succeeds_alone(c) { 1.0 } else { 0.0 });
        }
        for pair in w.changes.windows(2) {
            let prob = p.p_conflict(&w, &pair[0], &pair[1]);
            assert_eq!(
                prob,
                if truth.real_conflict(&pair[0], &pair[1]) {
                    1.0
                } else {
                    0.0
                }
            );
        }
    }

    #[test]
    fn uniform_and_optimistic_constants() {
        let w = workload(10, 2);
        let c = &w.changes[0];
        let k = SpeculationCounters::default();
        assert_eq!(UniformPredictor.p_success(&w, c, k), 0.5);
        assert_eq!(UniformPredictor.p_conflict(&w, c, &w.changes[1]), 0.5);
        assert_eq!(OptimisticPredictor.p_success(&w, c, k), 1.0);
        assert_eq!(OptimisticPredictor.p_conflict(&w, c, &w.changes[1]), 0.0);
    }

    #[test]
    fn learned_model_reaches_paper_accuracy_regime() {
        let history = workload(12_000, 3);
        let (_, report) = LearnedPredictor::train(&history, 7);
        // The paper reports 97%; the synthetic feature signal is designed
        // to support ≥90%.
        assert!(
            report.success_accuracy > 0.90,
            "accuracy = {}",
            report.success_accuracy
        );
        assert!(report.success_auc > 0.9, "auc = {}", report.success_auc);
    }

    #[test]
    fn learned_model_ranks_dynamic_counters_highly() {
        // Paper: "number of succeeded speculations" had the highest
        // positive correlation. Our synthetic counters mirror that.
        let history = workload(12_000, 5);
        let (_, report) = LearnedPredictor::train(&history, 7);
        let top3 = &report.success_feature_ranking[..3];
        assert!(
            top3.iter().any(|f| f.starts_with("speculations_")),
            "top3 = {top3:?}"
        );
    }

    #[test]
    fn learned_predictions_are_probabilities_and_responsive() {
        let history = workload(8_000, 11);
        let (predictor, _) = LearnedPredictor::train(&history, 7);
        let fresh = workload(200, 13);
        let mut sum_ok = 0.0;
        let mut n_ok = 0;
        let mut sum_bad = 0.0;
        let mut n_bad = 0;
        for c in &fresh.changes {
            let p = predictor.p_success(&fresh, c, SpeculationCounters::default());
            assert!((0.0..=1.0).contains(&p));
            if c.intrinsic_success {
                sum_ok += p;
                n_ok += 1;
            } else {
                sum_bad += p;
                n_bad += 1;
            }
        }
        if n_ok > 10 && n_bad > 10 {
            assert!(
                sum_ok / n_ok as f64 > sum_bad / n_bad as f64,
                "model should separate good from bad changes"
            );
        }
        // Dynamic counters move the estimate in the right direction.
        let c = &fresh.changes[0];
        let p_neutral = predictor.p_success(&fresh, c, SpeculationCounters::default());
        let p_good = predictor.p_success(
            &fresh,
            c,
            SpeculationCounters {
                succeeded: 5,
                failed: 0,
            },
        );
        let p_bad = predictor.p_success(
            &fresh,
            c,
            SpeculationCounters {
                succeeded: 0,
                failed: 5,
            },
        );
        assert!(p_good > p_neutral, "succeeded speculations raise P_succ");
        assert!(p_bad < p_neutral, "failed speculations lower P_succ");
    }

    #[test]
    fn calibrated_skip_threshold_is_deterministic_and_bounded() {
        let history = workload(4_000, 17);
        let (predictor, _) = LearnedPredictor::train(&history, 0xFEED);
        let t1 = predictor.calibrate_skip_threshold(&history, 0.02);
        let t2 = predictor.calibrate_skip_threshold(&history, 0.02);
        assert_eq!(t1, t2, "calibration must be deterministic");
        assert!((0.0..=0.5).contains(&t1));
        // Loosening the miss budget never tightens the threshold.
        let loose = predictor.calibrate_skip_threshold(&history, 0.2);
        assert!(loose >= t1);
    }
}
