//! Batching independent changes (paper Section 10, and the Section 2.2
//! batch-queue discussion).
//!
//! "A better approach is to batch independent changes expected to
//! succeed together before running their build steps. While this
//! approach can lead to better hardware utilization and lower cost,
//! false prediction can result in higher turnaround time."
//!
//! The pipeline here is the classic batch-and-bisect (Chromium Commit
//! Queue / batched Bors): up to `max_batch` pairwise-independent ready
//! changes build together; on success the whole batch commits; on
//! failure the batch splits in half and both halves retry — a singleton
//! failure rejects the change. Batches in flight are kept mutually
//! independent, so parallel commits can never compose into a red
//! mainline; the greenness audit still runs on the result.

use crate::pending::{ChangeOutcome, ChangeRecord};
use sq_sim::{run as run_des, EventQueue, Scheduler, SimDuration, SimTime, Simulation};
use sq_workload::{ChangeId, ChangeSpec, GroundTruth, Workload};
use std::collections::{HashMap, VecDeque};

/// Batching pipeline configuration.
#[derive(Debug, Clone)]
pub struct BatchingConfig {
    /// Maximum changes per batch (1 = no batching).
    pub max_batch: usize,
    /// Worker fleet size (one batch occupies one worker).
    pub workers: usize,
    /// Fixed overhead per batch build.
    pub build_overhead: SimDuration,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            max_batch: 4,
            workers: 100,
            build_overhead: SimDuration::from_secs(60),
        }
    }
}

/// Result of a batching run.
#[derive(Debug, Clone)]
pub struct BatchingResult {
    /// Per-change records.
    pub records: Vec<ChangeRecord>,
    /// Commit log with commit times (mainline order).
    pub commits: Vec<(ChangeId, SimTime)>,
    /// Batch builds executed.
    pub builds_run: u64,
    /// Total worker time spent building.
    pub worker_time: SimDuration,
    /// Simulated end time.
    pub makespan: SimTime,
}

impl BatchingResult {
    /// Turnaround percentiles in minutes: (P50, P95, P99). `None` when no
    /// change resolved — a 0-minute turnaround would read as "instant",
    /// not "no data".
    pub fn turnaround_p50_p95_p99(&self) -> Option<(f64, f64, f64)> {
        let mut p = sq_sim::Percentiles::with_capacity(self.records.len());
        for r in &self.records {
            p.push(r.turnaround.as_mins_f64());
        }
        p.p50_p95_p99()
    }

    /// Builds per resolved change — the hardware-saving measure. `None`
    /// when no change resolved (0.0 would read as "free builds").
    pub fn builds_per_change(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        Some(self.builds_run as f64 / self.records.len() as f64)
    }

    /// Worker-minutes per committed change. `None` when nothing committed.
    pub fn worker_mins_per_commit(&self) -> Option<f64> {
        if self.commits.is_empty() {
            return None;
        }
        Some(self.worker_time.as_mins_f64() / self.commits.len() as f64)
    }
}

/// Run the batch-and-bisect pipeline over a workload.
pub fn simulate_batching(workload: &Workload, config: &BatchingConfig) -> BatchingResult {
    assert!(config.max_batch >= 1 && config.workers >= 1);
    let mut sim = Batcher {
        workload,
        truth: workload.truth(),
        config: config.clone(),
        ready: VecDeque::new(),
        retry: VecDeque::new(),
        in_flight: HashMap::new(),
        busy: 0,
        next_batch: 0,
        records: Vec::with_capacity(workload.changes.len()),
        commits: Vec::new(),
        builds_run: 0,
        worker_time: SimDuration::ZERO,
        makespan: SimTime::ZERO,
    };
    let mut queue: EventQueue<BatchEvent> = EventQueue::new();
    for (i, c) in workload.changes.iter().enumerate() {
        queue.schedule(c.submit_time, BatchEvent::Arrival(i));
    }
    let outcome = run_des(&mut sim, &mut queue, 10_000_000);
    debug_assert!(outcome.drained, "batching simulation hit the event cap");
    BatchingResult {
        records: sim.records,
        commits: sim.commits,
        builds_run: sim.builds_run,
        worker_time: sim.worker_time,
        makespan: sim.makespan,
    }
}

#[derive(Debug, Clone, Copy)]
enum BatchEvent {
    Arrival(usize),
    BatchDone(u64),
}

struct Batcher<'a> {
    workload: &'a Workload,
    truth: GroundTruth,
    config: BatchingConfig,
    /// Singles waiting to be batched, in arrival order.
    ready: VecDeque<ChangeId>,
    /// Split halves waiting to retry as-is (front = highest priority).
    retry: VecDeque<Vec<ChangeId>>,
    in_flight: HashMap<u64, Vec<ChangeId>>,
    busy: usize,
    next_batch: u64,
    records: Vec<ChangeRecord>,
    commits: Vec<(ChangeId, SimTime)>,
    builds_run: u64,
    worker_time: SimDuration,
    makespan: SimTime,
}

impl<'a> Batcher<'a> {
    fn spec(&self, id: ChangeId) -> &'a ChangeSpec {
        &self.workload.changes[id.0 as usize]
    }

    fn independent_of_in_flight(&self, id: ChangeId) -> bool {
        let c = self.spec(id);
        self.in_flight
            .values()
            .flatten()
            .all(|&m| !self.spec(m).potentially_conflicts(c))
    }

    fn mutually_independent(&self, batch: &[ChangeId], id: ChangeId) -> bool {
        let c = self.spec(id);
        batch
            .iter()
            .all(|&m| !self.spec(m).potentially_conflicts(c))
    }

    fn launch(
        &mut self,
        batch: Vec<ChangeId>,
        now: SimTime,
        sched: &mut Scheduler<'_, BatchEvent>,
    ) {
        debug_assert!(!batch.is_empty());
        let max_dur = batch
            .iter()
            .map(|&id| self.spec(id).build_duration)
            .max()
            .expect("non-empty batch");
        let duration = max_dur + self.config.build_overhead;
        let id = self.next_batch;
        self.next_batch += 1;
        self.busy += 1;
        self.builds_run += 1;
        self.worker_time += duration;
        self.in_flight.insert(id, batch);
        sched.at(now + duration, BatchEvent::BatchDone(id));
    }

    fn dispatch(&mut self, now: SimTime, sched: &mut Scheduler<'_, BatchEvent>) {
        while self.busy < self.config.workers {
            // Retries first (they have waited longest), as-is, but only
            // once independent of everything currently building.
            if let Some(pos) = self
                .retry
                .iter()
                .position(|job| job.iter().all(|&m| self.independent_of_in_flight(m)))
            {
                let job = self.retry.remove(pos).expect("position valid");
                self.launch(job, now, sched);
                continue;
            }
            // Form a fresh batch from the ready queue.
            let mut batch: Vec<ChangeId> = Vec::new();
            let mut remaining: VecDeque<ChangeId> = VecDeque::new();
            while let Some(id) = self.ready.pop_front() {
                if batch.len() < self.config.max_batch
                    && self.independent_of_in_flight(id)
                    && self.mutually_independent(&batch, id)
                {
                    batch.push(id);
                } else {
                    remaining.push_back(id);
                }
            }
            self.ready = remaining;
            if batch.is_empty() {
                return;
            }
            self.launch(batch, now, sched);
        }
    }

    fn finish_change(&mut self, id: ChangeId, ok: bool, now: SimTime) {
        let spec = self.spec(id);
        if ok {
            self.commits.push((id, now));
        }
        self.records.push(ChangeRecord::new(
            id,
            spec.submit_time,
            now,
            if ok {
                ChangeOutcome::Committed
            } else {
                ChangeOutcome::Rejected
            },
            1,
            0,
        ));
        self.makespan = self.makespan.max(now);
    }
}

impl<'a> Simulation for Batcher<'a> {
    type Event = BatchEvent;

    fn handle(&mut self, now: SimTime, event: BatchEvent, sched: &mut Scheduler<'_, BatchEvent>) {
        match event {
            BatchEvent::Arrival(i) => {
                self.ready.push_back(self.workload.changes[i].id);
                self.dispatch(now, sched);
            }
            BatchEvent::BatchDone(batch_id) => {
                self.busy -= 1;
                let members = self
                    .in_flight
                    .remove(&batch_id)
                    .expect("finished batch tracked");
                let specs: Vec<&ChangeSpec> = members.iter().map(|&m| self.spec(m)).collect();
                // The batch builds on the *current* HEAD: members must be
                // clean against each other AND against every change that
                // committed while they were pending (a stale member fails
                // its rebase-and-test here, exactly like a real build).
                let clean_vs_head = members.iter().all(|&m| {
                    let mc = self.spec(m);
                    self.commits.iter().all(|&(d, t)| {
                        t <= mc.submit_time || !self.truth.real_conflict(mc, self.spec(d))
                    })
                });
                if clean_vs_head && self.truth.batch_succeeds(&specs) {
                    for &m in &members {
                        self.finish_change(m, true, now);
                    }
                } else if members.len() == 1 {
                    self.finish_change(members[0], false, now);
                } else {
                    // Bisect: split in half, retry both halves next.
                    let mid = members.len() / 2;
                    let (a, b) = members.split_at(mid);
                    self.retry.push_front(b.to_vec());
                    self.retry.push_front(a.to_vec());
                }
                self.dispatch(now, sched);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_workload::{WorkloadBuilder, WorkloadParams};

    fn workload(rate: f64, n: usize, seed: u64) -> Workload {
        WorkloadBuilder::new(WorkloadParams::ios().with_rate(rate))
            .seed(seed)
            .n_changes(n)
            .build()
            .unwrap()
    }

    fn run(w: &Workload, max_batch: usize, workers: usize) -> BatchingResult {
        simulate_batching(
            w,
            &BatchingConfig {
                max_batch,
                workers,
                ..BatchingConfig::default()
            },
        )
    }

    #[test]
    fn every_change_resolves_exactly_once() {
        let w = workload(200.0, 150, 1);
        let r = run(&w, 4, 50);
        assert_eq!(r.records.len(), 150);
        let mut ids: Vec<_> = r.records.iter().map(|rec| rec.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 150);
    }

    #[test]
    fn commits_are_green() {
        let w = workload(200.0, 200, 2);
        let truth = w.truth();
        let r = run(&w, 8, 50);
        // Every committed change passes alone, and no two committed
        // changes with overlapping in-flight windows really conflict.
        for (k, &(c_id, _)) in r.commits.iter().enumerate() {
            let c = &w.changes[c_id.0 as usize];
            assert!(truth.succeeds_alone(c), "committed broken change {c_id}");
            for &(d_id, d_time) in &r.commits[..k] {
                let d = &w.changes[d_id.0 as usize];
                if c.submit_time < d_time {
                    assert!(
                        !truth.real_conflict(c, d),
                        "red mainline: {c_id} conflicts with {d_id}"
                    );
                }
            }
        }
    }

    #[test]
    fn batching_reduces_builds_per_change() {
        let w = workload(300.0, 200, 3);
        let singles = run(&w, 1, 50).builds_per_change().unwrap();
        let batched = run(&w, 8, 50).builds_per_change().unwrap();
        assert!(
            batched < singles,
            "batching must save builds: {batched} vs {singles}"
        );
        // With batch = 1 every resolved change is exactly one build.
        assert!((singles - 1.0).abs() < 1e-9);
    }

    #[test]
    fn failed_batches_bisect_and_still_resolve_everyone() {
        // Crank the conflict probability so batches fail often.
        let mut params = WorkloadParams::ios().with_rate(300.0);
        params.pairwise_conflict_prob = 0.5;
        let w = WorkloadBuilder::new(params)
            .seed(4)
            .n_changes(120)
            .build()
            .unwrap();
        let r = run(&w, 8, 40);
        assert_eq!(r.records.len(), 120);
        // Bisection costs extra builds beyond one per batch.
        assert!(r.builds_run > 120 / 8);
    }

    #[test]
    fn worker_time_accounting() {
        let w = workload(100.0, 60, 5);
        let r = run(&w, 4, 20);
        assert!(r.worker_time > SimDuration::ZERO);
        assert!(r.worker_mins_per_commit().unwrap() > 0.0);
        assert!(r.makespan > SimTime::ZERO);
    }

    #[test]
    fn empty_workload_reports_no_data_not_zeros() {
        let w = workload(100.0, 1, 7);
        let empty = Workload {
            changes: Vec::new(),
            ..w
        };
        let r = simulate_batching(&empty, &BatchingConfig::default());
        assert_eq!(r.builds_per_change(), None);
        assert_eq!(r.worker_mins_per_commit(), None);
        assert_eq!(r.turnaround_p50_p95_p99(), None);
    }

    #[test]
    fn single_worker_still_terminates() {
        let w = workload(500.0, 80, 6);
        let r = run(&w, 4, 1);
        assert_eq!(r.records.len(), 80);
    }
}
