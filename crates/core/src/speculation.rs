//! The speculation engine (paper Section 4 + Section 7.1).
//!
//! For each pending change `Cᵢ`, let `Dᵢ` be the set of *earlier pending
//! conflicting* changes (from the conflict graph). Any build of `Cᵢ`
//! assumes an outcome pattern over `Dᵢ`: a subset `S ⊆ Dᵢ` assumed to
//! commit (the rest assumed to abort), giving build `B_{S∪{i}}` of
//! `H ⊕ S ⊕ Cᵢ`. The build is *needed* iff the pattern matches reality,
//! so with per-change commit probabilities `p_d`:
//!
//! ```text
//! P_needed(B_{S∪{i}}) = Π_{d∈S} p_d · Π_{d∈Dᵢ∖S} (1 − p_d)        (Eqs. 1–3, 5)
//! ```
//!
//! Commit probabilities fold in conflicts per Equation 4 — pairwise the
//! paper writes `P(B_{1.2} succ | B₁ succ) = P_succ(C₂) − P_conf(C₁,C₂)`
//! — generalized *multiplicatively* over the expected committed prefix:
//!
//! ```text
//! p_i = P_succ(Cᵢ) · Π_{d∈Dᵢ} (1 − p_d · P_conf(Cd, Cᵢ))
//! ```
//!
//! which agrees with Equation 4 to first order for a single predecessor
//! but stays calibrated for long conflict chains, where the additive form
//! collapses to zero and would flip every deep pattern to "all abort"
//! (each factor is the probability of surviving one independently-
//! committing conflicter). Computed in submission order (`Dᵢ` only
//! contains earlier changes, so the recurrence is well-founded).
//! Cross-correlations between members of `Dᵢ` that conflict with each
//! other are ignored, as in the paper's speculation-graph approximation.
//!
//! Build *selection* is the paper's greedy best-first (Section 7.1):
//! because `P_needed` can only shrink as patterns deviate from the most
//! likely outcome, the top-K builds are enumerated lazily — per change, a
//! binary-heap walk over "flip sets" (the classic best-first subset
//! enumeration: flip coordinates in decreasing probability-ratio order,
//! children = extend-or-advance the last flip), merged across changes by
//! a global heap. Space is O(flips emitted), never 2ⁿ.

use crate::analyzer::ConflictGraph;
use crate::predict::{Predictor, SpeculationCounters};
use sq_workload::{ChangeId, ChangeSpec, Workload};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// A build in the speculation graph: `B_{assumed ∪ {subject}}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BuildKey {
    /// The change this build gates.
    pub subject: ChangeId,
    /// Earlier conflicting changes assumed committed, sorted ascending.
    /// Everything in `D_subject` not listed is assumed aborted.
    pub assumed: Vec<ChangeId>,
}

impl std::fmt::Display for BuildKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B[")?;
        for a in &self.assumed {
            write!(f, "{}.", a.0)?;
        }
        write!(f, "{}]", self.subject.0)
    }
}

/// A selected build with its value (`V = B · P_needed`, benefit B = 1).
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedBuild {
    /// The build.
    pub key: BuildKey,
    /// `P_needed` under the current probability estimates.
    pub value: f64,
}

/// The speculation engine: stateless functions over the pending set.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpeculationEngine;

impl SpeculationEngine {
    /// Commit probabilities for the pending set, in submission order.
    ///
    /// `pending` must be sorted by id (submission order); `counters`
    /// provides the dynamic speculation counts per change; `fixed` lists,
    /// per pending change, the earlier conflicting changes that have
    /// *already committed* — their conflict mass applies with certainty
    /// (the change will definitely be built on top of them).
    pub fn commit_probabilities<P: Predictor>(
        workload: &Workload,
        pending: &[&ChangeSpec],
        graph: &ConflictGraph,
        predictor: &P,
        counters: &HashMap<ChangeId, SpeculationCounters>,
        fixed: &HashMap<ChangeId, Vec<ChangeId>>,
    ) -> HashMap<ChangeId, f64> {
        let by_id: HashMap<ChangeId, &ChangeSpec> = pending.iter().map(|c| (c.id, *c)).collect();
        let mut p_commit: HashMap<ChangeId, f64> = HashMap::with_capacity(pending.len());
        for c in pending {
            let k = counters.get(&c.id).copied().unwrap_or_default();
            let p_succ = predictor.p_success(workload, c, k);
            let mut survive = 1.0;
            for d in graph.earlier_conflicts(c.id) {
                let Some(dc) = by_id.get(&d) else { continue };
                let pd = p_commit.get(&d).copied().unwrap_or(0.0);
                survive *= 1.0 - pd * predictor.p_conflict(workload, dc, c);
            }
            // Already-committed conflicts contribute with probability 1.
            if let Some(fixed_prefix) = fixed.get(&c.id) {
                for &e in fixed_prefix {
                    let ec = &workload.changes[e.0 as usize];
                    survive *= 1.0 - predictor.p_conflict(workload, ec, c);
                }
            }
            p_commit.insert(c.id, (p_succ * survive).clamp(0.0, 1.0));
        }
        p_commit
    }

    /// Select up to `budget` builds with the highest `P_needed`, in
    /// non-increasing value order. Zero-value builds are never emitted.
    pub fn select_builds<P: Predictor>(
        workload: &Workload,
        pending: &[&ChangeSpec],
        graph: &ConflictGraph,
        predictor: &P,
        counters: &HashMap<ChangeId, SpeculationCounters>,
        fixed: &HashMap<ChangeId, Vec<ChangeId>>,
        budget: usize,
    ) -> Vec<PlannedBuild> {
        Self::select_builds_weighted(
            workload,
            pending,
            graph,
            predictor,
            counters,
            fixed,
            budget,
            |_| 1.0,
        )
    }

    /// Like [`Self::select_builds`], but with a per-change *benefit*
    /// multiplier: `V = B(subject) · P_needed` (paper Section 4.2.1 —
    /// "builds for certain projects or with certain priority (e.g.,
    /// security patches) can have higher values, which in turn will be
    /// favored by SubmitQueue. Alternatively, we may assign different
    /// quotas to different teams"). Benefits must be positive and finite.
    #[allow(clippy::too_many_arguments)]
    pub fn select_builds_weighted<P: Predictor, B: Fn(ChangeId) -> f64>(
        workload: &Workload,
        pending: &[&ChangeSpec],
        graph: &ConflictGraph,
        predictor: &P,
        counters: &HashMap<ChangeId, SpeculationCounters>,
        fixed: &HashMap<ChangeId, Vec<ChangeId>>,
        budget: usize,
        benefit: B,
    ) -> Vec<PlannedBuild> {
        Self::select_builds_configured(
            workload,
            pending,
            graph,
            predictor,
            counters,
            fixed,
            budget,
            benefit,
            |_| usize::MAX,
        )
    }

    /// The fully configurable selector behind [`Self::select_builds`]
    /// and [`Self::select_builds_weighted`]: per-change benefit
    /// multipliers *and* per-change pattern caps. `pattern_cap(c)`
    /// bounds how many outcome patterns of change `c` may enter the
    /// plan: `usize::MAX` is the paper's unbounded speculation, `1`
    /// admits only the single most-likely pattern (lean skipping), and
    /// `0` removes the change from engine selection entirely (bypass
    /// lanes schedule it out of band). Capping never changes the order
    /// or value of the patterns that *are* emitted.
    #[allow(clippy::too_many_arguments)]
    pub fn select_builds_configured<P, B, K>(
        workload: &Workload,
        pending: &[&ChangeSpec],
        graph: &ConflictGraph,
        predictor: &P,
        counters: &HashMap<ChangeId, SpeculationCounters>,
        fixed: &HashMap<ChangeId, Vec<ChangeId>>,
        budget: usize,
        benefit: B,
        pattern_cap: K,
    ) -> Vec<PlannedBuild>
    where
        P: Predictor,
        B: Fn(ChangeId) -> f64,
        K: Fn(ChangeId) -> usize,
    {
        let p_commit =
            Self::commit_probabilities(workload, pending, graph, predictor, counters, fixed);
        // One lazy pattern generator per pending change, plus how many
        // more patterns it may still emit.
        let mut generators: HashMap<ChangeId, (PatternGen, usize)> = HashMap::new();
        let mut global: BinaryHeap<Frontier> = BinaryHeap::new();
        for c in pending {
            let cap = pattern_cap(c.id);
            if cap == 0 {
                continue;
            }
            let b = benefit(c.id);
            debug_assert!(b.is_finite() && b > 0.0, "benefit must be positive");
            let d_i = graph.earlier_conflicts(c.id);
            let mut g = PatternGen::new(c.id, &d_i, &p_commit);
            if let Some(first) = g.next_pattern() {
                global.push(Frontier {
                    value: first.value * b,
                    key: first.key,
                });
                generators.insert(c.id, (g, cap - 1));
            }
        }
        let mut out = Vec::with_capacity(budget.min(64));
        while out.len() < budget {
            let Some(Frontier { value, key }) = global.pop() else {
                break;
            };
            if value <= 0.0 {
                break; // heap is value-ordered: everything below is zero
            }
            let subject = key.subject;
            out.push(PlannedBuild { key, value });
            if let Some((g, remaining)) = generators.get_mut(&subject) {
                if *remaining > 0 {
                    if let Some(next) = g.next_pattern() {
                        *remaining -= 1;
                        global.push(Frontier {
                            value: next.value * benefit(subject),
                            key: next.key,
                        });
                    }
                }
            }
        }
        out
    }

    /// The exact build needed to decide `subject` once the fates of its
    /// earlier conflicts are known: `assumed` = those that committed.
    pub fn realized_key(subject: ChangeId, committed_earlier_conflicts: &[ChangeId]) -> BuildKey {
        let mut assumed = committed_earlier_conflicts.to_vec();
        assumed.sort_unstable();
        assumed.dedup();
        BuildKey { subject, assumed }
    }
}

/// Global frontier entry ordered by value (max-heap), tie-broken by key
/// for determinism.
#[derive(Debug, Clone)]
struct Frontier {
    value: f64,
    key: BuildKey,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Frontier {}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value
            .total_cmp(&other.value)
            .then_with(|| other.key.cmp(&self.key))
    }
}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One coordinate of a pattern: an earlier conflicting change with its
/// more-likely outcome and the cost ratio of flipping it.
#[derive(Debug, Clone)]
struct Coord {
    id: ChangeId,
    /// The likely outcome: true = commit.
    base_commit: bool,
    /// `min(p, 1−p) / max(p, 1−p)` — multiplying the pattern value by
    /// this flips the coordinate. Always in [0, 1].
    flip_ratio: f64,
}

/// Lazy best-first enumeration of outcome patterns for one change.
#[derive(Debug)]
struct PatternGen {
    subject: ChangeId,
    coords: Vec<Coord>,
    base_value: f64,
    heap: BinaryHeap<PatternNode>,
    started: bool,
}

#[derive(Debug, Clone)]
struct PatternNode {
    value: f64,
    /// Indices into `coords` that are flipped, ascending; the best-first
    /// children rule (extend last / advance last) enumerates every flip
    /// set exactly once.
    flips: Vec<usize>,
}

impl PartialEq for PatternNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for PatternNode {}
impl Ord for PatternNode {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value
            .total_cmp(&other.value)
            .then_with(|| other.flips.cmp(&self.flips))
    }
}
impl PartialOrd for PatternNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PatternGen {
    fn new(subject: ChangeId, d_i: &[ChangeId], p_commit: &HashMap<ChangeId, f64>) -> Self {
        let mut base_value = 1.0;
        let mut coords: Vec<Coord> = d_i
            .iter()
            .map(|&d| {
                let p = p_commit.get(&d).copied().unwrap_or(0.5).clamp(0.0, 1.0);
                let base_commit = p >= 0.5;
                let p_base = if base_commit { p } else { 1.0 - p };
                base_value *= p_base;
                Coord {
                    id: d,
                    base_commit,
                    flip_ratio: if p_base > 0.0 {
                        (1.0 - p_base) / p_base
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        // Cheapest flips first (largest ratio) makes child values
        // monotone non-increasing under extend/advance.
        coords.sort_by(|a, b| {
            b.flip_ratio
                .total_cmp(&a.flip_ratio)
                .then_with(|| a.id.cmp(&b.id))
        });
        PatternGen {
            subject,
            coords,
            base_value,
            heap: BinaryHeap::new(),
            started: false,
        }
    }

    fn key_for(&self, flips: &[usize]) -> BuildKey {
        let mut assumed: Vec<ChangeId> = Vec::new();
        for (i, c) in self.coords.iter().enumerate() {
            let flipped = flips.contains(&i);
            if c.base_commit != flipped {
                assumed.push(c.id);
            }
        }
        assumed.sort_unstable();
        BuildKey {
            subject: self.subject,
            assumed,
        }
    }

    fn next_pattern(&mut self) -> Option<PlannedBuild> {
        if !self.started {
            self.started = true;
            self.heap.push(PatternNode {
                value: self.base_value,
                flips: Vec::new(),
            });
        }
        let node = self.heap.pop()?;
        // Children: extend with the next coordinate after the last flip,
        // or advance the last flip by one.
        let last = node.flips.last().copied();
        let next_idx = last.map_or(0, |l| l + 1);
        if next_idx < self.coords.len() {
            // Extend.
            let mut flips = node.flips.clone();
            flips.push(next_idx);
            self.heap.push(PatternNode {
                value: node.value * self.coords[next_idx].flip_ratio,
                flips,
            });
            // Advance.
            if let Some(l) = last {
                let mut flips = node.flips.clone();
                *flips.last_mut().expect("non-empty") = next_idx;
                let ratio_l = self.coords[l].flip_ratio;
                let advanced = if ratio_l > 0.0 {
                    node.value / ratio_l * self.coords[next_idx].flip_ratio
                } else {
                    0.0
                };
                self.heap.push(PatternNode {
                    value: advanced,
                    flips,
                });
            }
        }
        Some(PlannedBuild {
            key: self.key_for(&node.flips),
            value: node.value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{ConflictAnalyzer, ConflictGraph};
    use crate::predict::{OraclePredictor, UniformPredictor};
    use sq_workload::{WorkloadBuilder, WorkloadParams};

    /// Analyzer scripted from an explicit edge list.
    struct Scripted(Vec<(u64, u64)>);
    impl ConflictAnalyzer for Scripted {
        fn conflicts(&mut self, a: &ChangeSpec, b: &ChangeSpec) -> bool {
            let (x, y) = (a.id.0.min(b.id.0), a.id.0.max(b.id.0));
            self.0.contains(&(x, y))
        }
    }

    fn workload(n: usize) -> Workload {
        WorkloadBuilder::new(WorkloadParams::ios())
            .seed(21)
            .n_changes(n)
            .build()
            .unwrap()
    }

    fn graph_with(w: &Workload, n: usize, edges: &[(u64, u64)]) -> ConflictGraph {
        let mut analyzer = Scripted(edges.to_vec());
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&ChangeSpec> = Vec::new();
        for c in &w.changes[..n] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        g
    }

    fn key(subject: u64, assumed: &[u64]) -> BuildKey {
        BuildKey {
            subject: ChangeId(subject),
            assumed: assumed.iter().map(|&a| ChangeId(a)).collect(),
        }
    }

    #[test]
    fn figure5_speculation_tree_all_conflicting() {
        // Three mutually conflicting changes + 50/50 odds ⇒ the full
        // 2³−1 = 7-build speculation tree of Figure 5.
        let w = workload(3);
        let g = graph_with(&w, 3, &[(0, 1), (0, 2), (1, 2)]);
        let pending: Vec<&ChangeSpec> = w.changes[..3].iter().collect();
        let builds = SpeculationEngine::select_builds(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            100,
        );
        let keys: std::collections::HashSet<BuildKey> =
            builds.iter().map(|b| b.key.clone()).collect();
        let expected = [
            key(0, &[]),
            key(1, &[]),
            key(1, &[0]),
            key(2, &[]),
            key(2, &[0]),
            key(2, &[1]),
            key(2, &[0, 1]),
        ];
        assert_eq!(keys.len(), 7);
        for e in &expected {
            assert!(keys.contains(e), "missing {e}");
        }
    }

    #[test]
    fn figure6_graph_trims_c2_builds() {
        // C1 ⊥ C2; both conflict with C3 ⇒ 6 builds (B1, B2, and four
        // for C3), exactly the Figure 6 speculation graph.
        let w = workload(3);
        let g = graph_with(&w, 3, &[(0, 2), (1, 2)]);
        let pending: Vec<&ChangeSpec> = w.changes[..3].iter().collect();
        let builds = SpeculationEngine::select_builds(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            100,
        );
        assert_eq!(builds.len(), 6);
        let keys: std::collections::HashSet<BuildKey> =
            builds.iter().map(|b| b.key.clone()).collect();
        assert!(keys.contains(&key(0, &[])));
        assert!(keys.contains(&key(1, &[]))); // C2 independent: one build
        for e in [key(2, &[]), key(2, &[0]), key(2, &[1]), key(2, &[0, 1])] {
            assert!(keys.contains(&e), "missing {e}");
        }
    }

    #[test]
    fn figure7_graph_five_builds() {
        // C1 conflicts with C2 and C3; C2 ⊥ C3 ⇒ 5 builds (paper: "the
        // total number of possible builds decreases from seven to five").
        let w = workload(3);
        let g = graph_with(&w, 3, &[(0, 1), (0, 2)]);
        let pending: Vec<&ChangeSpec> = w.changes[..3].iter().collect();
        let builds = SpeculationEngine::select_builds(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            100,
        );
        assert_eq!(builds.len(), 5);
        let keys: std::collections::HashSet<BuildKey> =
            builds.iter().map(|b| b.key.clone()).collect();
        for e in [
            key(0, &[]),
            key(1, &[]),
            key(1, &[0]),
            key(2, &[]),
            key(2, &[0]),
        ] {
            assert!(keys.contains(&e), "missing {e}");
        }
    }

    #[test]
    fn values_are_non_increasing_and_probabilities() {
        let w = workload(12);
        let mut analyzer = crate::analyzer::StatisticalAnalyzer::disabled();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&ChangeSpec> = Vec::new();
        for c in &w.changes[..12] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        let builds = SpeculationEngine::select_builds(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            50,
        );
        assert_eq!(builds.len(), 50);
        for pair in builds.windows(2) {
            assert!(pair[0].value >= pair[1].value);
        }
        for b in &builds {
            assert!(b.value > 0.0 && b.value <= 1.0);
        }
    }

    #[test]
    fn pattern_probabilities_sum_to_one_per_change() {
        // All 2^|D| patterns of one change partition the outcome space.
        let w = workload(6);
        let g = graph_with(&w, 6, &[(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
        let pending: Vec<&ChangeSpec> = w.changes[..6].iter().collect();
        let builds = SpeculationEngine::select_builds(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            1000,
        );
        let total: f64 = builds
            .iter()
            .filter(|b| b.key.subject == ChangeId(5))
            .map(|b| b.value)
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
        // And the change has exactly 2^5 patterns.
        assert_eq!(
            builds
                .iter()
                .filter(|b| b.key.subject == ChangeId(5))
                .count(),
            32
        );
    }

    #[test]
    fn oracle_emits_only_the_realized_path() {
        // With 0/1 probabilities every change has exactly one nonzero
        // pattern — the n needed builds out of 2ⁿ−1 (Section 4.1).
        let w = workload(10);
        let mut analyzer = crate::analyzer::StatisticalAnalyzer::disabled();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&ChangeSpec> = Vec::new();
        for c in &w.changes[..10] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        let oracle = OraclePredictor::new(&w);
        let builds = SpeculationEngine::select_builds(
            &w,
            &pending,
            &g,
            &oracle,
            &HashMap::new(),
            &HashMap::new(),
            10_000,
        );
        assert_eq!(builds.len(), 10, "one build per change");
        for b in &builds {
            assert!((b.value - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn commit_probabilities_fold_in_conflicts() {
        let w = workload(2);
        let g = graph_with(&w, 2, &[(0, 1)]);
        let pending: Vec<&ChangeSpec> = w.changes[..2].iter().collect();
        let p = SpeculationEngine::commit_probabilities(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
        );
        // p0 = 0.5; p1 = 0.5 · (1 − 0.5·0.5) = 0.375 (Equation 4 shape,
        // multiplicative generalization).
        assert!((p[&ChangeId(0)] - 0.5).abs() < 1e-12);
        assert!((p[&ChangeId(1)] - 0.375).abs() < 1e-12);
    }

    #[test]
    fn budget_caps_selection() {
        let w = workload(20);
        let mut analyzer = crate::analyzer::StatisticalAnalyzer::disabled();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&ChangeSpec> = Vec::new();
        for c in &w.changes[..20] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        let builds = SpeculationEngine::select_builds(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            7,
        );
        assert_eq!(builds.len(), 7);
    }

    #[test]
    fn realized_key_sorts_and_dedups() {
        let k =
            SpeculationEngine::realized_key(ChangeId(9), &[ChangeId(5), ChangeId(2), ChangeId(5)]);
        assert_eq!(k.assumed, vec![ChangeId(2), ChangeId(5)]);
        assert_eq!(k.to_string(), "B[2.5.9]");
    }

    #[test]
    fn selection_is_deterministic() {
        let w = workload(15);
        let mut analyzer = crate::analyzer::StatisticalAnalyzer::new();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&ChangeSpec> = Vec::new();
        for c in &w.changes[..15] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        let run = || {
            SpeculationEngine::select_builds(
                &w,
                &pending,
                &g,
                &UniformPredictor,
                &HashMap::new(),
                &HashMap::new(),
                25,
            )
        };
        let b1 = run();
        let b2 = run();
        assert_eq!(b1.len(), b2.len());
        for (x, y) in b1.iter().zip(&b2) {
            assert_eq!(x.key, y.key);
        }
    }

    #[test]
    fn pattern_enumeration_matches_brute_force_ordering() {
        // The lazy extend-or-advance walk must emit every subset exactly
        // once, in non-increasing probability order, for arbitrary
        // (non-uniform) commit probabilities.
        let probs = [0.9, 0.7, 0.55, 0.2, 0.31];
        let ids: Vec<ChangeId> = (0..probs.len() as u64).map(ChangeId).collect();
        let p_commit: HashMap<ChangeId, f64> =
            ids.iter().copied().zip(probs.iter().copied()).collect();
        let subject = ChangeId(99);
        let mut gen = PatternGen::new(subject, &ids, &p_commit);
        let mut emitted: Vec<(Vec<ChangeId>, f64)> = Vec::new();
        while let Some(pb) = gen.next_pattern() {
            emitted.push((pb.key.assumed, pb.value));
        }
        // Exactly 2^5 distinct patterns.
        assert_eq!(emitted.len(), 32);
        let distinct: std::collections::HashSet<&Vec<ChangeId>> =
            emitted.iter().map(|(k, _)| k).collect();
        assert_eq!(distinct.len(), 32);
        // Non-increasing values.
        for pair in emitted.windows(2) {
            assert!(
                pair[0].1 >= pair[1].1 - 1e-12,
                "order violated: {} then {}",
                pair[0].1,
                pair[1].1
            );
        }
        // Values match the brute-force probability of each pattern.
        for (assumed, value) in &emitted {
            let expected: f64 = ids
                .iter()
                .zip(&probs)
                .map(|(id, &p)| if assumed.contains(id) { p } else { 1.0 - p })
                .product();
            assert!(
                (value - expected).abs() < 1e-12,
                "pattern {assumed:?}: {value} vs {expected}"
            );
        }
        // Total probability mass is 1.
        let total: f64 = emitted.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn benefit_weighting_prioritizes_security_patches() {
        // Three mutually conflicting changes; the *last* one is a
        // security patch with 10× benefit. Unweighted, its builds rank
        // below the earlier changes'; weighted, its most likely build
        // jumps the queue (paper §4.2.1 priorities).
        let w = workload(3);
        let g = graph_with(&w, 3, &[(0, 1), (0, 2), (1, 2)]);
        let pending: Vec<&ChangeSpec> = w.changes[..3].iter().collect();
        let security = ChangeId(2);
        let plain = SpeculationEngine::select_builds(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            3,
        );
        let weighted = SpeculationEngine::select_builds_weighted(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            3,
            |id| if id == security { 10.0 } else { 1.0 },
        );
        // Unweighted top-3 contains no build for C2 (its best pattern is
        // worth 0.3125 = P(C0 commits)·P(C1 aborts), below C0/C1's
        // builds; p1 = 0.5·(1 − 0.5·0.5) = 0.375).
        assert!(plain.iter().all(|b| b.key.subject != security));
        // Weighted: C2's builds lead the plan.
        assert_eq!(weighted[0].key.subject, security);
        assert!((weighted[0].value - 3.125).abs() < 1e-9); // 10 × 0.3125
    }

    #[test]
    fn uniform_benefit_matches_unweighted() {
        let w = workload(10);
        let mut analyzer = crate::analyzer::StatisticalAnalyzer::new();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&ChangeSpec> = Vec::new();
        for c in &w.changes[..10] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        let a = SpeculationEngine::select_builds(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            20,
        );
        let b = SpeculationEngine::select_builds_weighted(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            20,
            |_| 1.0,
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert!((x.value - y.value).abs() < 1e-12);
        }
    }

    #[test]
    fn pattern_cap_one_keeps_only_the_most_likely_pattern() {
        // Three mutually conflicting changes; capping C2 at one pattern
        // keeps exactly its best build while C0/C1 speculate freely.
        let w = workload(3);
        let g = graph_with(&w, 3, &[(0, 1), (0, 2), (1, 2)]);
        let pending: Vec<&ChangeSpec> = w.changes[..3].iter().collect();
        let capped = ChangeId(2);
        let builds = SpeculationEngine::select_builds_configured(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            100,
            |_| 1.0,
            |id| if id == capped { 1 } else { usize::MAX },
        );
        let uncapped = SpeculationEngine::select_builds(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            100,
        );
        assert_eq!(builds.iter().filter(|b| b.key.subject == capped).count(), 1);
        let best_capped = builds.iter().find(|b| b.key.subject == capped).unwrap();
        let best_uncapped = uncapped.iter().find(|b| b.key.subject == capped).unwrap();
        assert_eq!(best_capped.key, best_uncapped.key, "cap keeps the best");
        // Everything else is untouched.
        let others = |v: &[PlannedBuild]| {
            v.iter()
                .filter(|b| b.key.subject != capped)
                .map(|b| b.key.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(others(&builds), others(&uncapped));
    }

    #[test]
    fn pattern_cap_zero_removes_the_change_from_selection() {
        let w = workload(3);
        let g = graph_with(&w, 3, &[(0, 1), (0, 2), (1, 2)]);
        let pending: Vec<&ChangeSpec> = w.changes[..3].iter().collect();
        let builds = SpeculationEngine::select_builds_configured(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            100,
            |_| 1.0,
            |id| if id == ChangeId(1) { 0 } else { usize::MAX },
        );
        assert!(builds.iter().all(|b| b.key.subject != ChangeId(1)));
        assert!(builds.iter().any(|b| b.key.subject == ChangeId(0)));
        assert!(builds.iter().any(|b| b.key.subject == ChangeId(2)));
    }

    #[test]
    fn unbounded_cap_matches_unweighted_selection() {
        let w = workload(12);
        let mut analyzer = crate::analyzer::StatisticalAnalyzer::new();
        let mut g = ConflictGraph::new();
        let mut pending: Vec<&ChangeSpec> = Vec::new();
        for c in &w.changes[..12] {
            g.admit(c, &pending, &mut analyzer);
            pending.push(c);
        }
        let a = SpeculationEngine::select_builds(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            30,
        );
        let b = SpeculationEngine::select_builds_configured(
            &w,
            &pending,
            &g,
            &UniformPredictor,
            &HashMap::new(),
            &HashMap::new(),
            30,
            |_| 1.0,
            |_| usize::MAX,
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert!((x.value - y.value).abs() < 1e-12);
        }
    }
}
