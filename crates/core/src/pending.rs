//! Pending-change lifecycle.
//!
//! Every change submitted to SubmitQueue "has two possible outcomes:
//! (i) all build steps for the change succeed, and it gets committed …
//! (ii) some build step fails, and the change is rejected" (Section 4).

use serde::{Deserialize, Serialize};
use sq_sim::{SimDuration, SimTime};
use sq_workload::ChangeId;

/// Terminal outcome of a change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeOutcome {
    /// Patch merged into the mainline.
    Committed,
    /// Rejected: its gating build failed (individually or due to a real
    /// conflict with a change that committed before it).
    Rejected,
}

/// Per-change accounting produced by a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChangeRecord {
    /// The change.
    pub id: ChangeId,
    /// Submission time.
    pub submitted: SimTime,
    /// Resolution time (commit or reject).
    pub resolved: SimTime,
    /// The outcome.
    pub outcome: ChangeOutcome,
    /// Turnaround: resolution − submission.
    pub turnaround: SimDuration,
    /// Number of speculative builds scheduled that contained this change
    /// as subject.
    pub builds_scheduled: u32,
    /// Of those, how many were aborted before finishing (wasted work).
    pub builds_aborted: u32,
}

impl ChangeRecord {
    /// Construct, computing turnaround.
    pub fn new(
        id: ChangeId,
        submitted: SimTime,
        resolved: SimTime,
        outcome: ChangeOutcome,
        builds_scheduled: u32,
        builds_aborted: u32,
    ) -> Self {
        ChangeRecord {
            id,
            submitted,
            resolved,
            outcome,
            turnaround: resolved.since(submitted),
            builds_scheduled,
            builds_aborted,
        }
    }
}

/// Live state of a change inside the planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PendingState {
    /// Enqueued; speculative builds may be running.
    Pending,
    /// Terminal.
    Resolved(ChangeOutcome),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turnaround_is_resolution_minus_submission() {
        let r = ChangeRecord::new(
            ChangeId(3),
            SimTime::from_mins(10),
            SimTime::from_mins(45),
            ChangeOutcome::Committed,
            2,
            1,
        );
        assert_eq!(r.turnaround, SimDuration::from_mins(35));
    }

    #[test]
    fn states_compare() {
        assert_ne!(
            PendingState::Pending,
            PendingState::Resolved(ChangeOutcome::Committed)
        );
        assert_ne!(
            PendingState::Resolved(ChangeOutcome::Committed),
            PendingState::Resolved(ChangeOutcome::Rejected)
        );
    }
}
