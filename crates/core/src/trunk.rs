//! Trunk-based development — the world *before* SubmitQueue (Figure 14).
//!
//! "Over a span of one week, the mainline was green only 52% of the time"
//! (Section 8.5). This module simulates that regime: changes commit
//! straight to the mainline after pre-submit checks, an exhaustive
//! post-submit pipeline detects breakage after the fact, and sheriffs
//! bisect and revert — during which the mainline stays red and new
//! (possibly also broken) commits keep landing on top.

use sq_sim::{SimDuration, SimTime, Xoshiro256StarStar};
use sq_workload::{ChangeSpec, Workload};

/// Parameters of the post-submit pipeline.
#[derive(Debug, Clone)]
pub struct TrunkConfig {
    /// Fraction of *individually failing* changes that slip past
    /// pre-submit checks (pre-submit runs a reduced suite; integration
    /// and UI failures surface post-submit).
    pub presubmit_escape_rate: f64,
    /// How far back a change's development window reaches: commits that
    /// landed within this window are the ones it can really conflict
    /// with (it was developed unaware of them).
    pub dev_window: SimDuration,
    /// Base time for the post-submit pipeline to flag a breakage.
    pub detect_base: SimDuration,
    /// Extra localization time per commit that landed since the breakage
    /// (bisection and sheriff work scale with the pile-up).
    pub localize_per_commit: SimDuration,
    /// RNG seed for the escape coin.
    pub seed: u64,
}

impl Default for TrunkConfig {
    fn default() -> Self {
        TrunkConfig {
            presubmit_escape_rate: 0.35,
            dev_window: SimDuration::from_mins(40),
            detect_base: SimDuration::from_mins(25),
            localize_per_commit: SimDuration::from_mins(3),
            seed: 0x7A17,
        }
    }
}

/// Result of a trunk-based run.
#[derive(Debug, Clone)]
pub struct TrunkResult {
    /// Green fraction per hour of the run (the Figure 14 series,
    /// as 0–100 success-rate values).
    pub hourly_green_pct: Vec<f64>,
    /// Overall fraction of time the mainline was green.
    pub green_fraction: f64,
    /// Number of breakage incidents.
    pub breakages: usize,
}

/// Simulate trunk-based development over a workload.
pub fn simulate_trunk(workload: &Workload, config: &TrunkConfig) -> TrunkResult {
    let truth = workload.truth();
    let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed);
    let mut red_intervals: Vec<(SimTime, SimTime)> = Vec::new();
    let mut committed: Vec<&ChangeSpec> = Vec::new();
    let mut breakages = 0usize;

    for c in &workload.changes {
        let t = c.submit_time;
        // Which previously committed changes fall in the dev window?
        let window_start =
            SimTime::from_micros(t.as_micros().saturating_sub(config.dev_window.as_micros()));
        let conflicts_with_recent = committed
            .iter()
            .rev()
            .take_while(|d| d.submit_time >= window_start)
            .any(|d| truth.real_conflict(c, d));
        let individual_escape = !c.intrinsic_success && rng.bernoulli(config.presubmit_escape_rate);
        committed.push(c);
        if conflicts_with_recent || individual_escape {
            breakages += 1;
            // Detection + localization: commits landed in the last hour
            // approximate the bisection set.
            let hour_ago = SimTime::from_micros(
                t.as_micros()
                    .saturating_sub(SimDuration::from_hours(1).as_micros()),
            );
            let pile_up = committed
                .iter()
                .rev()
                .take_while(|d| d.submit_time >= hour_ago)
                .count() as u64;
            let red_until = t + config.detect_base + config.localize_per_commit * pile_up.min(20);
            red_intervals.push((t, red_until));
        }
    }

    // Merge red intervals and integrate per-hour greenness.
    red_intervals.sort();
    let mut merged: Vec<(SimTime, SimTime)> = Vec::new();
    for (s, e) in red_intervals {
        match merged.last_mut() {
            Some((_, last_e)) if s <= *last_e => *last_e = (*last_e).max(e),
            _ => merged.push((s, e)),
        }
    }
    let horizon = workload.horizon();
    let hours = horizon.as_hours_f64().ceil().max(1.0) as u64;
    let mut hourly_green_pct = Vec::with_capacity(hours as usize);
    let mut red_total = SimDuration::ZERO;
    for h in 0..hours {
        let start = SimTime::from_hours(h);
        let end = SimTime::from_hours(h + 1).min(horizon);
        if end <= start {
            break;
        }
        let mut red_in_hour = SimDuration::ZERO;
        for &(s, e) in &merged {
            let overlap_start = s.max(start);
            let overlap_end = e.min(end);
            if overlap_end > overlap_start {
                red_in_hour += overlap_end.since(overlap_start);
            }
        }
        let span = end.since(start);
        red_total += red_in_hour;
        let green = 1.0 - red_in_hour.as_secs_f64() / span.as_secs_f64().max(1e-9);
        hourly_green_pct.push(green * 100.0);
    }
    let green_fraction = 1.0 - red_total.as_secs_f64() / horizon.as_secs_f64().max(1e-9);
    TrunkResult {
        hourly_green_pct,
        green_fraction,
        breakages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_workload::{WorkloadBuilder, WorkloadParams};

    /// A week of organic commits (~12/hour, as production mainlines see).
    fn week_workload(seed: u64) -> Workload {
        WorkloadBuilder::new(WorkloadParams::ios().with_rate(12.0))
            .seed(seed)
            .duration_hours(168.0)
            .build()
            .unwrap()
    }

    #[test]
    fn figure14_green_roughly_half_the_time() {
        let w = week_workload(61);
        let r = simulate_trunk(&w, &TrunkConfig::default());
        // Paper: 52% green. The synthetic model lands in the same band.
        assert!(
            (0.30..0.75).contains(&r.green_fraction),
            "green fraction = {}",
            r.green_fraction
        );
        assert!(r.breakages > 10, "a week must see many breakages");
        // The horizon is the last Poisson arrival, so the series spans
        // roughly — not exactly — a week of hours.
        let hours = r.hourly_green_pct.len();
        assert!((150..200).contains(&hours), "hours = {hours}");
    }

    #[test]
    fn hourly_series_is_percentages() {
        let w = week_workload(62);
        let r = simulate_trunk(&w, &TrunkConfig::default());
        for &pct in &r.hourly_green_pct {
            assert!((0.0..=100.0).contains(&pct), "pct = {pct}");
        }
        // Some hours fully green, some heavily red — the Figure 14 shape.
        assert!(r.hourly_green_pct.iter().any(|&p| p > 95.0));
        assert!(r.hourly_green_pct.iter().any(|&p| p < 50.0));
    }

    #[test]
    fn no_escapes_and_no_conflicts_means_always_green() {
        let mut params = WorkloadParams::ios().with_rate(12.0);
        params.pairwise_conflict_prob = 0.0;
        let w = WorkloadBuilder::new(params)
            .seed(63)
            .duration_hours(24.0)
            .build()
            .unwrap();
        let config = TrunkConfig {
            presubmit_escape_rate: 0.0,
            ..TrunkConfig::default()
        };
        let r = simulate_trunk(&w, &config);
        assert_eq!(r.breakages, 0);
        assert!((r.green_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn higher_rate_means_more_red() {
        let slow = WorkloadBuilder::new(WorkloadParams::ios().with_rate(4.0))
            .seed(64)
            .duration_hours(72.0)
            .build()
            .unwrap();
        let fast = WorkloadBuilder::new(WorkloadParams::ios().with_rate(40.0))
            .seed(64)
            .duration_hours(72.0)
            .build()
            .unwrap();
        let r_slow = simulate_trunk(&slow, &TrunkConfig::default());
        let r_fast = simulate_trunk(&fast, &TrunkConfig::default());
        assert!(
            r_fast.green_fraction < r_slow.green_fraction,
            "fast {} vs slow {}",
            r_fast.green_fraction,
            r_slow.green_fraction
        );
    }
}
