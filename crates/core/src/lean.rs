//! Lean speculation — the Uber 2025 follow-up optimizations.
//!
//! *CI at Scale: Lean, Green, and Fast* reports that most of
//! SubmitQueue's speculative builds are wasted on changes that were
//! never going to conflict, and recovers the cost with three
//! mechanisms layered on the unchanged always-green core:
//!
//! 1. **Probability-gated skipping** ([`LeanConfig::skip_threshold`]):
//!    when the learned conflict model scores a change's total conflict
//!    risk below a calibrated threshold, the planner requests no
//!    speculative patterns for it — only the plain mainline build.
//! 2. **Change prioritization** ([`LeanConfig::prioritize`]): the
//!    speculation budget is value-weighted by conflict risk, so risky
//!    changes surface their conflicts early while low-risk changes
//!    batch cheaply.
//! 3. **Bypass lanes** ([`LeanConfig::bypass`] + [`BypassPolicy`]):
//!    changes matching a low-risk footprint policy — or explicitly
//!    flagged as emergencies — land after a single non-speculative
//!    verify against the current mainline.
//!
//! None of the three touch the *gating* path: a change still commits
//! only through its realized build, so a wrong skip or bypass is
//! contradicted, aborted, and rebuilt — costing latency, never
//! greenness. That safety argument is audited, not assumed: every
//! lean benchmark cell asserts `audit_green` and zero wrongful
//! rejections (see `sq-bench`'s `bench_lean`).

use sq_obs::MetricsRegistry;
use sq_workload::ChangeSpec;

use crate::strategy::StrategyKind;

/// Empirical miss-rate budget used when calibrating the skip
/// threshold: among potentially-conflicting pairs scored below the
/// chosen cutoff, at most this fraction may really conflict. A missed
/// skip costs one contradicted build's latency, so a small budget
/// trades almost all of the waste reduction for near-zero added delay.
pub const SKIP_MISS_BUDGET: f64 = 0.05;

/// Which lean optimizations are active. All three are independently
/// toggleable so benchmarks can ablate them; the all-off
/// [`LeanConfig::baseline`] is decision-identical to plain SubmitQueue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeanConfig {
    /// Skip speculation for changes whose predicted conflict risk is
    /// strictly below this threshold (`None` = never skip).
    pub skip_threshold: Option<f64>,
    /// Weight the speculation budget by predicted conflict risk.
    pub prioritize: bool,
    /// Route policy-eligible changes through the bypass lane.
    pub bypass: bool,
}

impl LeanConfig {
    /// Everything off — byte-identical planning to SubmitQueue.
    pub fn baseline() -> LeanConfig {
        LeanConfig {
            skip_threshold: None,
            prioritize: false,
            bypass: false,
        }
    }

    /// Probability-gated skipping only.
    pub fn lean(threshold: f64) -> LeanConfig {
        LeanConfig {
            skip_threshold: Some(threshold),
            ..Self::baseline()
        }
    }

    /// Risk prioritization only.
    pub fn prioritized() -> LeanConfig {
        LeanConfig {
            prioritize: true,
            ..Self::baseline()
        }
    }

    /// Bypass lanes only.
    pub fn bypass_only() -> LeanConfig {
        LeanConfig {
            bypass: true,
            ..Self::baseline()
        }
    }

    /// All three optimizations on.
    pub fn all_on(threshold: f64) -> LeanConfig {
        LeanConfig {
            skip_threshold: Some(threshold),
            prioritize: true,
            bypass: true,
        }
    }

    /// Stable ablation-cell label ("baseline", "skip", "skip+bypass", …).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.skip_threshold.is_some() {
            parts.push("skip");
        }
        if self.prioritize {
            parts.push("prioritize");
        }
        if self.bypass {
            parts.push("bypass");
        }
        if parts.is_empty() {
            "baseline".to_string()
        } else {
            parts.join("+")
        }
    }

    /// The [`StrategyKind`] this configuration reports as: the lean
    /// kinds in precedence order (skip > prioritize > bypass), or
    /// SubmitQueue for the baseline.
    pub fn canonical_kind(&self) -> StrategyKind {
        if self.skip_threshold.is_some() {
            StrategyKind::LeanSpeculation
        } else if self.prioritize {
            StrategyKind::Prioritized
        } else if self.bypass {
            StrategyKind::BypassLane
        } else {
            StrategyKind::SubmitQueue
        }
    }
}

/// The bypass-lane eligibility policy: a pure, deterministic predicate
/// over what is observable at submission time. Footprint-monotone by
/// construction — shrinking a change's footprint (fewer files, fewer
/// affected targets, fewer parts) never revokes eligibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BypassPolicy {
    /// Maximum files touched.
    pub max_files: u32,
    /// Maximum affected build targets (leaf-sized footprints; the real
    /// analyzer's equivalent is `AffectedSet::is_leaf_footprint`).
    pub max_affected_targets: u32,
}

impl BypassPolicy {
    /// The production policy: doc-sized, leaf-sized changes. Kept
    /// deliberately tight — every bypassed change trades its whole
    /// speculation fan-out for one front-of-queue verify, so a generous
    /// policy starves speculation for the rest of the window.
    pub fn standard() -> BypassPolicy {
        BypassPolicy {
            max_files: 2,
            max_affected_targets: 2,
        }
    }

    /// Is `c` eligible for the bypass lane? Emergencies always are;
    /// everything else must have a small, graph-preserving, presubmit-
    /// clean footprint confined to at most one repository part.
    pub fn eligible(&self, c: &ChangeSpec) -> bool {
        if c.emergency {
            return true;
        }
        !c.alters_build_graph
            && c.presubmit_passed
            && c.files_changed <= self.max_files
            && c.affected_targets <= self.max_affected_targets
            && c.parts.len() <= 1
    }
}

/// Per-run accounting of lean decisions, resolved change by resolved
/// change. A *hit* is a skipped change that landed without a single
/// aborted build — the speculation we didn't run would have been
/// waste. A *miss* is a skipped change that had a build contradicted
/// before landing — the skip cost one rebuild of latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeanReport {
    /// Resolved changes whose speculation was probability-gated away.
    pub skipped: u64,
    /// Skipped changes that resolved with zero aborted builds.
    pub skip_hits: u64,
    /// Skipped changes that had at least one build aborted.
    pub skip_misses: u64,
    /// Resolved changes routed through the bypass lane.
    pub bypassed: u64,
}

impl LeanReport {
    /// Export into a metrics registry. Idempotent across repeated
    /// exports of the same snapshot (watermarked totals, not `add`),
    /// per the workspace's periodic-export discipline.
    pub fn record_into(&self, m: &mut MetricsRegistry) {
        m.record_total("lean.skips", self.skipped);
        m.record_total("lean.skip_hits", self.skip_hits);
        m.record_total("lean.skip_misses", self.skip_misses);
        m.record_total("lean.bypassed", self.bypassed);
    }

    /// Observed miss rate among skips (0 when nothing was skipped).
    pub fn miss_rate(&self) -> f64 {
        if self.skipped == 0 {
            0.0
        } else {
            self.skip_misses as f64 / self.skipped as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_sim::{SimDuration, SimTime};
    use sq_workload::change::{DevId, PartId};
    use sq_workload::ChangeId;

    fn small_change() -> ChangeSpec {
        ChangeSpec {
            id: ChangeId(1),
            submit_time: SimTime::ZERO,
            build_duration: SimDuration::from_mins(30),
            developer: DevId(0),
            revision: 1,
            revision_attempt: 0,
            has_revert_plan: false,
            has_test_plan: true,
            files_changed: 2,
            lines_added: 10,
            lines_removed: 2,
            git_commits: 1,
            affected_targets: 2,
            presubmit_passed: true,
            parts: vec![PartId(4)],
            alters_build_graph: false,
            emergency: false,
            intrinsic_success: true,
            intrinsic_success_prob: 0.9,
        }
    }

    #[test]
    fn labels_and_canonical_kinds() {
        assert_eq!(LeanConfig::baseline().label(), "baseline");
        assert_eq!(LeanConfig::lean(0.05).label(), "skip");
        assert_eq!(LeanConfig::prioritized().label(), "prioritize");
        assert_eq!(LeanConfig::bypass_only().label(), "bypass");
        assert_eq!(LeanConfig::all_on(0.05).label(), "skip+prioritize+bypass");
        assert_eq!(
            LeanConfig::baseline().canonical_kind(),
            StrategyKind::SubmitQueue
        );
        assert_eq!(
            LeanConfig::lean(0.05).canonical_kind(),
            StrategyKind::LeanSpeculation
        );
        assert_eq!(
            LeanConfig::all_on(0.05).canonical_kind(),
            StrategyKind::LeanSpeculation
        );
        assert_eq!(
            LeanConfig::prioritized().canonical_kind(),
            StrategyKind::Prioritized
        );
        assert_eq!(
            LeanConfig::bypass_only().canonical_kind(),
            StrategyKind::BypassLane
        );
    }

    #[test]
    fn bypass_policy_is_footprint_monotone() {
        let policy = BypassPolicy::standard();
        let base = small_change();
        assert!(policy.eligible(&base));
        // Shrinking any footprint dimension preserves eligibility.
        for (files, targets) in [(1, 1), (0, 0), (2, 2)] {
            let mut c = base.clone();
            c.files_changed = files;
            c.affected_targets = targets;
            assert!(policy.eligible(&c), "files={files} targets={targets}");
        }
        // Growing past the policy revokes it.
        let mut big = base.clone();
        big.files_changed = policy.max_files + 1;
        assert!(!policy.eligible(&big));
        let mut wide = base.clone();
        wide.affected_targets = policy.max_affected_targets + 1;
        assert!(!policy.eligible(&wide));
        let mut multi = base.clone();
        multi.parts = vec![PartId(1), PartId(2)];
        assert!(!policy.eligible(&multi));
        let mut graph = base.clone();
        graph.alters_build_graph = true;
        assert!(!policy.eligible(&graph));
        let mut failed = base;
        failed.presubmit_passed = false;
        assert!(!policy.eligible(&failed));
    }

    #[test]
    fn emergency_flag_overrides_the_footprint_policy() {
        let policy = BypassPolicy::standard();
        let mut huge = small_change();
        huge.files_changed = 400;
        huge.affected_targets = 900;
        huge.alters_build_graph = true;
        huge.presubmit_passed = false;
        assert!(!policy.eligible(&huge));
        huge.emergency = true;
        assert!(policy.eligible(&huge));
    }

    #[test]
    fn report_export_is_idempotent() {
        let report = LeanReport {
            skipped: 12,
            skip_hits: 11,
            skip_misses: 1,
            bypassed: 4,
        };
        sq_obs::check::assert_idempotent_export(|m| report.record_into(m));
        assert!((report.miss_rate() - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(LeanReport::default().miss_rate(), 0.0);
    }
}
