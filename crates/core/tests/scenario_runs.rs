//! Scenario-matrix integration tests.
//!
//! * Flaky-test clusters: the part-correlated offenders are rejected —
//!   and only them; every rejection stays justified by the ground truth
//!   across seeds, so innocent bystanders never pay for a flaky part.
//! * Determinism: scenario runs under observation replay identically
//!   and export byte-identical metrics JSON (the scenario extension of
//!   `observed_runs_are_unperturbed_and_export_identical_json`).

use sq_core::planner::{run_simulation_observed, PlannerConfig, SimFaults};
use sq_core::scenario::run_scenario;
use sq_core::strategy::{Strategy, StrategyKind};
use sq_obs::Observer;
use sq_workload::{ScenarioManifest, WorkloadBuilder};

#[test]
fn flaky_clusters_reject_offenders_never_bystanders() {
    for seed in [11u64, 12, 13] {
        let run = run_scenario(&ScenarioManifest::flaky_cluster(), seed, 120, 600)
            .expect("named manifest validates");
        let truth = run.workload.truth();
        let offenders: Vec<_> = run
            .workload
            .changes
            .iter()
            .filter(|c| truth.flaky_failure(c))
            .collect();
        assert!(
            !offenders.is_empty(),
            "seed {seed}: no flake victims — the scenario would be vacuous"
        );
        for o in &run.outcomes {
            let cell = format!("seed {seed} / {}", o.kind.name());
            // The always-green invariant survives the adversary…
            o.green.as_ref().unwrap_or_else(|e| panic!("{cell}: {e}"));
            // …and every rejection is justified: flaky offenders and
            // real conflicts only, never an innocent bystander.
            o.rejections_justified
                .as_ref()
                .unwrap_or_else(|e| panic!("{cell}: {e}"));
            assert_eq!(o.wrongful_rejections, 0, "{cell}");
            // The offenders themselves can never land: their flaky
            // failures are deterministic, not retry-away infra faults.
            for c in &offenders {
                assert!(
                    !o.result.commit_log.contains(&c.id),
                    "{cell}: flaky change {} was committed",
                    c.id
                );
            }
        }
    }
}

#[test]
fn scenario_runs_replay_and_export_identically() {
    let seed = 5u64;
    for m in ScenarioManifest::matrix() {
        let w = m.workload(seed, 60).expect("named manifest validates");
        let history = WorkloadBuilder::new(m.params().unwrap())
            .seed(seed ^ 0xA11CE)
            .n_changes(400)
            .build()
            .unwrap();
        let strategy = Strategy::build(StrategyKind::SubmitQueue, &w, Some(&history));
        let cfg = PlannerConfig {
            workers: m.workers,
            faults: Some(SimFaults::at_rate(m.infra_fault_rate, seed)),
            ..PlannerConfig::default()
        };
        let mut o1 = Observer::new();
        let r1 = run_simulation_observed(&w, &strategy, &cfg, &mut o1);
        let mut o2 = Observer::new();
        let r2 = run_simulation_observed(&w, &strategy, &cfg, &mut o2);
        // Same seed ⇒ identical replay and byte-identical exports, for
        // every adversarial scenario, not just benign traffic.
        assert_eq!(r1.commit_log, r2.commit_log, "{}", m.name);
        assert_eq!(r1.makespan, r2.makespan, "{}", m.name);
        assert_eq!(r1.builds_started, r2.builds_started, "{}", m.name);
        assert_eq!(o1.to_json(), o2.to_json(), "{}", m.name);
    }
}

#[test]
fn scenario_runner_is_deterministic() {
    let m = ScenarioManifest::revert_storm();
    let a = run_scenario(&m, 9, 50, 300).unwrap();
    let b = run_scenario(&m, 9, 50, 300).unwrap();
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.result.commit_log, y.result.commit_log);
        assert_eq!(x.wrongful_rejections, y.wrongful_rejections);
    }
}
