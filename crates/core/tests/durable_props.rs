//! Property tests for the durable-event wire format: arbitrary
//! [`ServiceEvent`] batches must survive `encode_batch` →
//! `decode_batch` exactly, and the [`DurableState`] fold must be
//! insensitive to snapshot placement — folding all events directly
//! equals snapshotting (encode/decode) at any intermediate point and
//! folding the rest on top. That equivalence is precisely what makes
//! `snapshot ⊕ journal-suffix` recovery correct at every cut point.

use proptest::prelude::*;
use sq_core::durable::{decode_batch, encode_batch, DurableState, ServiceEvent, Verdict};
use sq_vcs::{CommitId, FileOp, ObjectId, Patch, RepoPath};

fn arb_string() -> impl Strategy<Value = String> {
    // Cover the JSON/codec-hostile characters: quotes, backslashes,
    // newlines, multi-byte UTF-8.
    proptest::collection::vec(
        prop_oneof![
            Just("a"),
            Just("B"),
            Just("\""),
            Just("\\"),
            Just("\n"),
            Just("é"),
            Just("日"),
            Just(" "),
        ],
        0..12,
    )
    .prop_map(|parts| parts.concat())
}

fn arb_commit() -> impl Strategy<Value = CommitId> {
    any::<u8>().prop_map(|b| {
        let mut raw = [0u8; 32];
        for (i, slot) in raw.iter_mut().enumerate() {
            *slot = b.wrapping_add(i as u8);
        }
        CommitId(ObjectId::from_raw(raw))
    })
}

fn arb_patch() -> impl Strategy<Value = Patch> {
    proptest::collection::vec(
        (0u8..4, 0u8..4, arb_string(), any::<bool>()).prop_map(|(d, f, content, write)| {
            let path = RepoPath::new(format!("d{d}/f{f}.rs")).unwrap();
            if write {
                FileOp::Write { path, content }
            } else {
                FileOp::Delete { path }
            }
        }),
        0..5,
    )
    .prop_map(Patch::from_ops)
}

fn arb_verdict() -> impl Strategy<Value = Verdict> {
    prop_oneof![
        Just(Verdict::Pass),
        Just(Verdict::Fail),
        Just(Verdict::Infra)
    ]
}

fn arb_event() -> impl Strategy<Value = ServiceEvent> {
    prop_oneof![
        (
            any::<u64>(),
            arb_string(),
            arb_string(),
            arb_commit(),
            arb_patch()
        )
            .prop_map(
                |(ticket, author, description, base, patch)| ServiceEvent::Enqueue {
                    ticket,
                    author,
                    description,
                    base,
                    patch,
                }
            ),
        any::<u64>().prop_map(|ticket| ServiceEvent::SpeculationStarted { ticket }),
        (any::<u64>(), arb_string())
            .prop_map(|(ticket, reason)| ServiceEvent::SpeculationAborted { ticket, reason }),
        (any::<u64>(), arb_verdict(), arb_string()).prop_map(|(ticket, verdict, detail)| {
            ServiceEvent::BuildVerdict {
                ticket,
                verdict,
                detail,
            }
        }),
        (any::<u64>(), arb_commit())
            .prop_map(|(ticket, commit)| ServiceEvent::Committed { ticket, commit }),
        (any::<u64>(), arb_string(), any::<bool>()).prop_map(|(ticket, reason, infra)| {
            ServiceEvent::Rejected {
                ticket,
                reason,
                infra,
            }
        }),
        (arb_string(), any::<u32>()).prop_map(|(target, observations)| {
            ServiceEvent::Quarantined {
                target,
                observations,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn event_batches_round_trip(events in proptest::collection::vec(arb_event(), 0..8)) {
        let decoded = decode_batch(&encode_batch(&events)).expect("decode");
        prop_assert_eq!(decoded, events);
    }

    #[test]
    fn state_fold_commutes_with_snapshot_at_any_cut(
        events in proptest::collection::vec(arb_event(), 0..12),
        cut in any::<u64>(),
    ) {
        // Direct fold over everything.
        let mut direct = DurableState::new();
        for ev in &events {
            direct.apply(ev);
        }
        // Fold a prefix, round-trip it through the snapshot encoding
        // (as recovery does), then fold the suffix on top.
        let k = (cut as usize) % (events.len() + 1);
        let mut prefix = DurableState::new();
        for ev in &events[..k] {
            prefix.apply(ev);
        }
        let mut resumed = DurableState::decode(&prefix.encode()).expect("state decode");
        for ev in &events[k..] {
            resumed.apply(ev);
        }
        prop_assert_eq!(&resumed, &direct);
        prop_assert_eq!(resumed.export_json(), direct.export_json());
    }
}
