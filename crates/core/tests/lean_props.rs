//! Property tests for lean speculation's safety and determinism claims.
//!
//! 1. **Skipping is never rejection.** For arbitrary seeds, rates,
//!    flag combinations, thresholds (including absurd ones), and
//!    sharded/unsharded planners: every change resolves, the mainline
//!    stays green, and no change is rejected wrongfully. A change the
//!    oracle says conflicts can only be *delayed* by a skipped or
//!    bypassed speculation — the gating build still decides it.
//! 2. **Bypass eligibility is deterministic and footprint-monotone.**
//!    Shrinking a change's footprint (fewer files, fewer affected
//!    targets, fewer parts) never revokes eligibility.
//! 3. **Same-seed lean runs are byte-identical** in their observed
//!    metrics export, and the lean report's metrics export is
//!    idempotent.

use proptest::prelude::*;
use sq_core::audit::{audit_green, audit_rejections_justified, count_wrongful_rejections};
use sq_core::planner::{run_simulation_observed, PlannerConfig, SimFaults};
use sq_core::predict::LearnedPredictor;
use sq_core::shard::{ShardPlan, ShardSpec};
use sq_core::strategy::Strategy as SqStrategy;
use sq_core::{BypassPolicy, LeanConfig};
use sq_obs::Observer;
use sq_sim::{SimDuration, SimTime};
use sq_workload::change::{DevId, PartId};
use sq_workload::{ChangeId, ChangeSpec, Workload, WorkloadBuilder, WorkloadParams};
use std::sync::OnceLock;

/// One predictor for every case: training is the expensive part and the
/// safety properties must hold for *any* model, so an arbitrary fixed
/// one is as good as a per-case one.
fn predictor() -> &'static LearnedPredictor {
    static PREDICTOR: OnceLock<LearnedPredictor> = OnceLock::new();
    PREDICTOR.get_or_init(|| {
        let history = WorkloadBuilder::new(WorkloadParams::ios())
            .seed(0xC0FFEE)
            .n_changes(400)
            .build()
            .expect("valid history params");
        LearnedPredictor::train(&history, 0xFEED).0
    })
}

fn workload(seed: u64, rate: f64, n: usize) -> Workload {
    WorkloadBuilder::new(WorkloadParams::ios().with_rate(rate))
        .seed(seed)
        .n_changes(n)
        .build()
        .expect("valid workload params")
}

fn arb_config() -> impl Strategy<Value = LeanConfig> {
    // Thresholds beyond any calibrated value included on purpose: even
    // "skip everything" must only cost latency.
    let threshold = prop_oneof![Just(None), (0.0f64..1.0).prop_map(Some)];
    (threshold, any::<bool>(), any::<bool>()).prop_map(|(skip_threshold, prioritize, bypass)| {
        LeanConfig {
            skip_threshold,
            prioritize,
            bypass,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Property 1: lean planning can never turn a skip into a rejection.
    #[test]
    fn lean_runs_resolve_everything_green_with_no_wrongful_rejections(
        seed in 0u64..1000,
        rate in 120.0f64..400.0,
        config in arb_config(),
        workers in 12usize..60,
        fault in prop_oneof![Just(0.0), Just(0.08)],
        shards in 0usize..3,
    ) {
        let n = 24;
        let w = workload(seed, rate, n);
        let strategy = SqStrategy::lean_with(predictor().clone(), config);
        let plan = (shards > 0).then(|| ShardPlan::round_robin(w.params.n_parts, shards));
        let planner_config = PlannerConfig {
            workers,
            faults: (fault > 0.0).then(|| SimFaults::at_rate(fault, seed)),
            shards: plan.map(|p| ShardSpec::proportional(p, &w, workers)),
            ..PlannerConfig::default()
        };
        let mut obs = Observer::disabled();
        let result = run_simulation_observed(&w, &strategy, &planner_config, &mut obs);
        prop_assert_eq!(result.records.len(), n, "every change must resolve");
        prop_assert!(audit_green(&w, &result).is_ok(), "mainline went red");
        prop_assert!(audit_rejections_justified(&w, &result).is_ok());
        prop_assert_eq!(count_wrongful_rejections(&w, &result), 0);
        // Skip accounting stays consistent whenever the planner kept it.
        if let Some(report) = result.lean {
            prop_assert_eq!(report.skip_hits + report.skip_misses, report.skipped);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Property 3: same-seed lean runs export byte-identical metrics.
    #[test]
    fn same_seed_lean_runs_export_byte_identical_metrics(
        seed in 0u64..1000,
        config in arb_config(),
    ) {
        let w = workload(seed, 250.0, 20);
        let planner_config = PlannerConfig {
            workers: 30,
            faults: Some(SimFaults::at_rate(0.05, seed)),
            ..PlannerConfig::default()
        };
        let run = || {
            let strategy = SqStrategy::lean_with(predictor().clone(), config);
            let mut obs = Observer::new();
            let result = run_simulation_observed(&w, &strategy, &planner_config, &mut obs);
            (obs.to_json(), result)
        };
        let (json_a, result_a) = run();
        let (json_b, result_b) = run();
        prop_assert_eq!(json_a, json_b, "same-seed observed exports diverged");
        prop_assert_eq!(result_a.lean, result_b.lean);
        // And the lean counters export idempotently, per the workspace's
        // periodic-export discipline.
        if let Some(report) = result_a.lean {
            sq_obs::check::assert_idempotent_export(|m| report.record_into(m));
        }
    }
}

fn spec(files: u32, targets: u32, n_parts: usize, graph: bool, presubmit: bool) -> ChangeSpec {
    ChangeSpec {
        id: ChangeId(1),
        submit_time: SimTime::ZERO,
        build_duration: SimDuration::from_mins(30),
        developer: DevId(0),
        revision: 1,
        revision_attempt: 0,
        has_revert_plan: false,
        has_test_plan: true,
        files_changed: files,
        lines_added: 10,
        lines_removed: 2,
        git_commits: 1,
        affected_targets: targets,
        presubmit_passed: presubmit,
        parts: (0..n_parts as u32).map(PartId).collect(),
        alters_build_graph: graph,
        emergency: false,
        intrinsic_success: true,
        intrinsic_success_prob: 0.9,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Property 2: bypass eligibility is a deterministic, footprint-
    /// monotone predicate.
    #[test]
    fn bypass_eligibility_is_deterministic_and_footprint_monotone(
        (files, targets, n_parts) in (0u32..20, 0u32..20, 0usize..4),
        (graph, presubmit, emergency) in (any::<bool>(), any::<bool>(), any::<bool>()),
        (shrink_files, shrink_targets, shrink_parts) in (0u32..20, 0u32..20, 0usize..4),
    ) {
        let policy = BypassPolicy::standard();
        let mut c = spec(files, targets, n_parts, graph, presubmit);
        c.emergency = emergency;
        // Deterministic: same change, same verdict.
        prop_assert_eq!(policy.eligible(&c), policy.eligible(&c.clone()));
        // Monotone: a change differing only by a smaller footprint can
        // only gain eligibility, never lose it.
        let mut smaller = c.clone();
        smaller.files_changed = c.files_changed.min(shrink_files);
        smaller.affected_targets = c.affected_targets.min(shrink_targets);
        smaller.parts.truncate(c.parts.len().min(shrink_parts));
        if policy.eligible(&c) {
            prop_assert!(policy.eligible(&smaller), "shrinking revoked eligibility");
        }
        // Emergencies are always eligible, whatever the footprint.
        let mut e = spec(400, 900, 3, true, false);
        e.emergency = true;
        prop_assert!(policy.eligible(&e));
    }
}
