//! Export-hygiene checks shared by exporter regression tests.
//!
//! The server exports metrics periodically, so every `record_*_into`
//! exporter in the workspace must be *idempotent*: handing the same
//! stats snapshot to the same registry twice must leave the export
//! byte-identical to handing it over once. Exporters that `add()` a
//! cumulative lifetime total break this — each export doubles the
//! counter — and the breakage is invisible in one-shot tests. The
//! checker here is the shared regression harness: it runs an exporter
//! twice against one registry and diffs the exports.

use crate::metrics::MetricsRegistry;

/// Run `export` twice against one registry and verify the second pass
/// changed nothing. Returns `Err` naming every counter, gauge, and
/// histogram field that drifted between the two passes.
///
/// `export` receives the registry each time, exactly like a periodic
/// exporter handing over the latest stats snapshot; the snapshot is
/// assumed unchanged between the two calls (callers should not mutate
/// the instrumented subsystem inside `export`).
pub fn exporter_idempotence(mut export: impl FnMut(&mut MetricsRegistry)) -> Result<(), String> {
    let mut m = MetricsRegistry::new();
    export(&mut m);
    let first = m.to_json();
    export(&mut m);
    let second = m.to_json();
    if first == second {
        return Ok(());
    }
    Err(diff_exports(&first, &second))
}

/// Assert-flavoured wrapper over [`exporter_idempotence`] for tests.
///
/// # Panics
///
/// Panics with the drift report when the exporter double-counts.
pub fn assert_idempotent_export(export: impl FnMut(&mut MetricsRegistry)) {
    if let Err(drift) = exporter_idempotence(export) {
        panic!("exporter is not idempotent across repeated exports:\n{drift}");
    }
}

/// Drift report: every flattened scalar field that changed between the
/// two exports, by dotted path (`counters.replication.ships`).
fn diff_exports(first: &str, second: &str) -> String {
    let a = flatten(first);
    let b = flatten(second);
    let mut out = String::new();
    for (path, vb) in &b {
        match a.iter().find(|(p, _)| p == path) {
            Some((_, va)) if va == vb => {}
            Some((_, va)) => {
                out.push_str(&format!(
                    "  {path}: first export {va} != second export {vb}\n"
                ));
            }
            None => out.push_str(&format!("  {path}: appeared only in second export: {vb}\n")),
        }
    }
    if out.is_empty() {
        out.push_str(&format!("  first:  {first}\n  second: {second}\n"));
    }
    out
}

/// Flatten the registry's sorted-key JSON export into dotted-path
/// scalar leaves. Objects nest into the path; arrays (histogram
/// buckets) are kept whole as one leaf value. Only needs to understand
/// the output of our own [`JsonWriter`](crate::json::JsonWriter) — no
/// whitespace, keys always quoted.
fn flatten(json: &str) -> Vec<(String, String)> {
    let b = json.as_bytes();
    let mut path: Vec<String> = Vec::new();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => {
                let (key, after) = read_string(json, i);
                i = after;
                if i >= b.len() || b[i] != b':' {
                    continue; // a string value, already consumed
                }
                i += 1;
                match b.get(i) {
                    Some(b'{') => {
                        path.push(key);
                        i += 1;
                    }
                    Some(b'"') => {
                        let (v, after) = read_string(json, i);
                        out.push((joined(&path, &key), format!("\"{v}\"")));
                        i = after;
                    }
                    Some(b'[') => {
                        let (v, after) = consume_balanced(json, i);
                        out.push((joined(&path, &key), v));
                        i = after;
                    }
                    _ => {
                        let start = i;
                        while i < b.len() && !matches!(b[i], b',' | b'}' | b']') {
                            i += 1;
                        }
                        out.push((joined(&path, &key), json[start..i].to_string()));
                    }
                }
            }
            b'}' => {
                path.pop();
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

fn joined(path: &[String], key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{}.{}", path.join("."), key)
    }
}

/// Read the quoted string starting at `i` (which must point at `"`);
/// returns (contents, index just past the closing quote).
fn read_string(json: &str, i: usize) -> (String, usize) {
    let b = json.as_bytes();
    let start = i + 1;
    let mut j = start;
    while j < b.len() && b[j] != b'"' {
        if b[j] == b'\\' {
            j += 1;
        }
        j += 1;
    }
    (
        json[start..j.min(json.len())].to_string(),
        (j + 1).min(json.len()),
    )
}

/// Consume a balanced `[...]` (or `{...}`) starting at `i`; returns
/// (the raw slice, index just past it).
fn consume_balanced(json: &str, i: usize) -> (String, usize) {
    let b = json.as_bytes();
    let mut depth = 0usize;
    let mut j = i;
    while j < b.len() {
        match b[j] {
            b'[' | b'{' => depth += 1,
            b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            b'"' => {
                let (_, after) = read_string(json, j);
                j = after;
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    (json[i..j.min(json.len())].to_string(), j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_exporter_passes() {
        // A correct exporter reconciles cumulative totals via
        // record_total and refreshes gauges in place.
        assert_idempotent_export(|m| {
            m.record_total("sub.ships", 42);
            m.set_gauge("sub.lag", 3.0);
        });
    }

    #[test]
    fn cumulative_add_exporter_is_caught() {
        let err = exporter_idempotence(|m| {
            m.add("sub.ships", 42); // classic double-counting bug
        })
        .unwrap_err();
        assert!(err.contains("counters.sub.ships"), "drift report: {err}");
        assert!(
            err.contains("42") && err.contains("84"),
            "drift report: {err}"
        );
    }

    #[test]
    fn repeated_observe_is_caught() {
        let err = exporter_idempotence(|m| {
            m.observe("sub.bytes", 100.0); // re-observed point-in-time value
        })
        .unwrap_err();
        assert!(err.contains("sub.bytes"), "drift report: {err}");
    }

    #[test]
    fn record_total_is_monotone_and_idempotent() {
        let mut m = MetricsRegistry::new();
        m.record_total("c", 7);
        m.record_total("c", 7);
        assert_eq!(m.counter("c"), 7);
        m.record_total("c", 9);
        assert_eq!(m.counter("c"), 9);
        // Never lowered: a smaller total is a caller bug, not a reset.
        m.record_total("c", 2);
        assert_eq!(m.counter("c"), 9);
    }

    #[test]
    fn flatten_paths_are_qualified() {
        let mut m = MetricsRegistry::new();
        m.add("a.x", 1);
        m.set_gauge("a.x", 2.0);
        let leaves = flatten(&m.to_json());
        assert!(leaves.iter().any(|(p, v)| p == "counters.a.x" && v == "1"));
        assert!(leaves.iter().any(|(p, v)| p == "gauges.a.x" && v == "2"));
    }
}
