//! A minimal deterministic JSON writer.
//!
//! The exports in this crate must be byte-identical across same-seed
//! runs, so serialization is owned here rather than delegated: keys are
//! emitted in the order the caller provides (the registry iterates
//! `BTreeMap`s), floats use Rust's shortest round-trip `Display` (with
//! non-finite values mapped to `null`, which JSON requires), and there
//! is no whitespace to vary.

use std::fmt::Write as _;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    Object { first: bool },
    Array { first: bool },
}

/// An append-only JSON writer with object/array nesting.
///
/// ```
/// use sq_obs::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("n");
/// w.value_u64(3);
/// w.key("xs");
/// w.begin_array();
/// w.value_f64(0.5);
/// w.value_str("a\"b");
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"n":3,"xs":[0.5,"a\"b"]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<Ctx>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn before_value(&mut self) {
        if let Some(Ctx::Array { first }) = self.stack.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
    }

    /// Open `{`.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(Ctx::Object { first: true });
    }

    /// Close `}`.
    pub fn end_object(&mut self) {
        debug_assert!(matches!(self.stack.last(), Some(Ctx::Object { .. })));
        self.stack.pop();
        self.out.push('}');
    }

    /// Open `[`.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(Ctx::Array { first: true });
    }

    /// Close `]`.
    pub fn end_array(&mut self) {
        debug_assert!(matches!(self.stack.last(), Some(Ctx::Array { .. })));
        self.stack.pop();
        self.out.push(']');
    }

    /// Emit an object key (must be inside an object; the next call must
    /// emit its value).
    pub fn key(&mut self, k: &str) {
        if let Some(Ctx::Object { first }) = self.stack.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        } else {
            debug_assert!(false, "key outside of object");
        }
        Self::push_escaped(&mut self.out, k);
        self.out.push(':');
    }

    /// Emit a string value.
    pub fn value_str(&mut self, s: &str) {
        self.before_value();
        Self::push_escaped(&mut self.out, s);
    }

    /// Emit an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.before_value();
        let _ = write!(self.out, "{v}");
    }

    /// Emit a float value; non-finite floats become `null`.
    pub fn value_f64(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Emit a boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Emit `null`.
    pub fn value_null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// Shorthand: `key` followed by a u64 value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.value_u64(v);
    }

    /// Shorthand: `key` followed by a float value.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.value_f64(v);
    }

    /// Shorthand: `key` followed by a string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_str(v);
    }

    /// Consume the writer, returning the JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON nesting");
        self.out
    }

    fn push_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.begin_object();
        w.field_u64("x", 1);
        w.end_object();
        w.value_u64(2);
        w.end_array();
        w.field_str("b", "ok");
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":[{"x":1},2],"b":"ok"}"#);
    }

    #[test]
    fn escaping_and_nonfinite() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.value_str("line\nbreak \"q\" \\ \u{1}");
        w.value_f64(f64::NAN);
        w.value_f64(f64::INFINITY);
        w.value_bool(true);
        w.value_null();
        w.end_array();
        assert_eq!(
            w.finish(),
            "[\"line\\nbreak \\\"q\\\" \\\\ \\u0001\",null,null,true,null]"
        );
    }

    #[test]
    fn float_formatting_is_shortest_roundtrip() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.value_f64(0.1);
        w.value_f64(1.0);
        w.value_f64(-2.5e-7);
        w.end_array();
        assert_eq!(w.finish(), "[0.1,1,-0.00000025]");
    }
}
