//! The metrics registry: named counters, gauges, and log-bucketed
//! histograms.
//!
//! Names are dotted paths (`planner.builds_started`); storage is
//! `BTreeMap`-keyed so exports iterate in sorted order — together with
//! the hand-rolled [`JsonWriter`](crate::json::JsonWriter), that makes
//! the export a pure function of the recorded values. Histograms use
//! logarithmic (power-of-two) buckets so one histogram covers
//! microsecond steps and hour-long builds alike with bounded memory,
//! the same shape Prometheus/OpenTelemetry exponential histograms use.

use crate::json::JsonWriter;
use std::collections::BTreeMap;

/// A histogram with power-of-two buckets over positive values.
///
/// Bucket `i` covers `(2^(i-1), 2^i]`; non-positive observations land
/// in a dedicated zero bucket. Exact count/sum/min/max are kept next to
/// the buckets, so means are exact and only percentiles are quantized
/// (to a factor-of-two upper bound — plenty for dashboards, and cheap
/// enough for per-event hot paths).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Bucket exponent → count. Exponent `i` means value ≤ 2^i.
    buckets: BTreeMap<i32, u64>,
    zero: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
            zero: 0,
        }
    }

    fn bucket_of(v: f64) -> i32 {
        // Smallest i with v <= 2^i. log2 is monotone; ceil ties are
        // resolved exactly for powers of two by the bit representation,
        // and a one-step fixup keeps boundaries exact otherwise.
        let mut i = v.log2().ceil() as i32;
        while 2f64.powi(i) < v {
            i += 1;
        }
        while i > i32::MIN && 2f64.powi(i - 1) >= v {
            i -= 1;
        }
        i
    }

    /// Record one observation. Non-finite values are ignored (a stray
    /// NaN must not poison the export).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v <= 0.0 {
            self.zero += 1;
        } else {
            *self.buckets.entry(Self::bucket_of(v)).or_insert(0) += 1;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as a bucket upper bound:
    /// exact min/max at the extremes, otherwise correct to within the
    /// factor-of-two bucket width. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.zero;
        if rank <= seen {
            return Some(0.0);
        }
        for (&exp, &n) in &self.buckets {
            seen += n;
            if rank <= seen {
                return Some(2f64.powi(exp).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Write the histogram as a JSON object (summary + buckets).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("count", self.count);
        w.field_f64("sum", self.sum);
        if self.count > 0 {
            w.field_f64("min", self.min);
            w.field_f64("max", self.max);
            w.field_f64("mean", self.sum / self.count as f64);
            w.field_f64("p50", self.quantile(0.50).unwrap_or(0.0));
            w.field_f64("p95", self.quantile(0.95).unwrap_or(0.0));
            w.field_f64("p99", self.quantile(0.99).unwrap_or(0.0));
        }
        w.key("buckets");
        w.begin_array();
        if self.zero > 0 {
            w.begin_array();
            w.value_f64(0.0);
            w.value_u64(self.zero);
            w.end_array();
        }
        for (&exp, &n) in &self.buckets {
            w.begin_array();
            w.value_f64(2f64.powi(exp)); // bucket upper bound
            w.value_u64(n);
            w.end_array();
        }
        w.end_array();
        w.end_object();
    }
}

/// Named counters, gauges, and histograms with deterministic export.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// A registry whose recording calls are all no-ops.
    pub fn disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            ..MetricsRegistry::new()
        }
    }

    /// True iff recording calls take effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `n`.
    pub fn add(&mut self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reconcile counter `name` against a *cumulative running total*
    /// maintained by the instrumented subsystem (e.g. a `*Stats`
    /// struct's lifetime totals). The counter is raised to `total` and
    /// never lowered, so periodic exporters can hand the same snapshot
    /// over and over without double counting: exporting a total of 7
    /// twice leaves the counter at 7, not 14. `add` is the wrong tool
    /// for such sources — it is reserved for per-event deltas.
    ///
    /// A `total` below the current counter value is left as-is rather
    /// than clamped down; cumulative sources are monotone, so a smaller
    /// total means the caller mixed two sources under one name.
    pub fn record_total(&mut self, name: &str, total: u64) {
        if !self.enabled {
            return;
        }
        match self.counters.get_mut(name) {
            Some(c) => *c = (*c).max(total),
            None => {
                self.counters.insert(name.to_string(), total);
            }
        }
    }

    /// Set gauge `name` to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert(name.to_string(), v);
    }

    /// Current value of gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record `v` into histogram `name` (created on first use).
    pub fn observe(&mut self, name: &str, v: f64) {
        if !self.enabled {
            return;
        }
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = LogHistogram::new();
                h.observe(v);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// The histogram named `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Write the registry as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (k, &v) in &self.counters {
            w.field_u64(k, v);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (k, &v) in &self.gauges {
            w.field_f64(k, v);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (k, h) in &self.histograms {
            w.key(k);
            h.write_json(w);
        }
        w.end_object();
        w.end_object();
    }

    /// The registry as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 2);
        m.inc("b");
        m.set_gauge("g", 1.5);
        m.set_gauge("g", 2.5);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("b"), 1);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        for (v, exp) in [
            (1.0, 0),
            (1.5, 1),
            (2.0, 1),
            (2.1, 2),
            (4.0, 2),
            (1024.0, 10),
            (0.5, -1),
            (0.25, -2),
            (0.3, -1),
        ] {
            assert_eq!(LogHistogram::bucket_of(v), exp, "v = {v}");
        }
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = LogHistogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            h.observe(v);
        }
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(22.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(100.0));
        // p50: rank 3 → value 3.0 lives in (2,4] → upper bound 4.
        assert_eq!(h.quantile(0.5), Some(4.0));
        // Extremes are exact.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        // The top bucket's bound is clamped to the true max.
        assert_eq!(h.quantile(0.99), Some(100.0));
    }

    #[test]
    fn histogram_zero_and_negative_observations() {
        let mut h = LogHistogram::new();
        h.observe(0.0);
        h.observe(-5.0);
        h.observe(8.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(-5.0));
        assert_eq!(h.quantile(0.5), Some(0.0));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn export_is_sorted_and_deterministic() {
        let mut m = MetricsRegistry::new();
        m.inc("z.last");
        m.inc("a.first");
        m.observe("h", 3.0);
        m.set_gauge("g", 0.5);
        let j = m.to_json();
        assert!(j.find("a.first").unwrap() < j.find("z.last").unwrap());
        assert_eq!(j, m.clone().to_json());
        assert!(j.starts_with("{\"counters\":{"));
    }

    #[test]
    fn disabled_registry_is_inert() {
        let mut m = MetricsRegistry::disabled();
        m.inc("c");
        m.observe("h", 1.0);
        m.set_gauge("g", 1.0);
        assert_eq!(m.counter("c"), 0);
        assert!(m.histogram("h").is_none());
        assert_eq!(m.gauge("g"), None);
    }
}
