//! # sq-obs — deterministic observability
//!
//! The paper's entire evaluation (Section 8) is a set of measurements —
//! turnaround CDFs, builds-per-change, worker utilization — and Uber's
//! follow-up work (*CI at Scale: Lean, Green, and Fast*) attributes the
//! SubmitQueue-era wins to per-stage instrumentation of exactly those
//! quantities. This crate is the measurement substrate for the
//! reproduction:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and log-bucketed
//!   histograms ([`LogHistogram`]), with deterministic JSON export
//!   (keys sorted, no wall-clock anywhere).
//! * [`Tracer`] — structured spans and events stamped with **simulated
//!   time** ([`sq_sim::SimTime`]), so traces from two same-seed runs are
//!   bit-identical; also exported as JSON.
//! * [`Observer`] — the pair of them, as passed through the planner and
//!   executor hot paths. A disabled observer costs one branch per call
//!   site, so the uninstrumented configurations stay honest baselines.
//! * [`check`] — the exporter-hygiene harness: periodic exporters must
//!   be idempotent (same snapshot exported twice == exported once), and
//!   [`check::exporter_idempotence`] is the shared regression check
//!   every `record_*_into` in the workspace runs under.
//! * [`json`] — the tiny hand-rolled JSON writer both exports share. No
//!   external dependency: exports must stay byte-stable across runs, so
//!   the serializer is owned here and floats go through Rust's shortest
//!   round-trip formatting.
//!
//! Everything is deterministic given deterministic inputs: the registry
//! stores names in `BTreeMap`s, the tracer records in call order, and
//! simulated time comes from the caller. The acceptance test for the
//! whole layer is byte equality of exports across same-seed reruns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod json;
pub mod metrics;
pub mod trace;

pub use check::{assert_idempotent_export, exporter_idempotence};
pub use json::JsonWriter;
pub use metrics::{LogHistogram, MetricsRegistry};
pub use trace::{SpanId, Tracer};

use sq_sim::SimTime;

/// A metrics registry and a tracer travelling together through the
/// instrumented hot paths.
#[derive(Debug, Clone, Default)]
pub struct Observer {
    /// Counters, gauges, histograms.
    pub metrics: MetricsRegistry,
    /// Sim-time spans and events.
    pub tracer: Tracer,
}

impl Observer {
    /// An enabled observer: metrics and traces are recorded.
    pub fn new() -> Self {
        Observer {
            metrics: MetricsRegistry::new(),
            tracer: Tracer::new(),
        }
    }

    /// A disabled observer: every recording call is a cheap no-op.
    /// [`run`](Self::is_enabled)-style call sites need no `Option`
    /// plumbing — pass a disabled observer instead.
    pub fn disabled() -> Self {
        Observer {
            metrics: MetricsRegistry::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// True iff the metrics side records (the tracer may still be off).
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled()
    }

    /// Record a point event on the tracer (no-op when disabled).
    pub fn event(&mut self, name: &str, at: SimTime, fields: &[(&str, f64)]) {
        self.tracer.event(name, at, fields);
    }

    /// Export metrics and trace as one JSON object:
    /// `{"metrics": {...}, "trace": {...}}`. Deterministic byte-for-byte
    /// for deterministic inputs.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("metrics");
        self.metrics.write_json(&mut w);
        w.key("trace");
        self.tracer.write_json(&mut w);
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_records_nothing() {
        let mut o = Observer::disabled();
        o.metrics.inc("c");
        o.metrics.set_gauge("g", 1.0);
        o.metrics.observe("h", 2.0);
        let s = o.tracer.start_span("s", SimTime::ZERO);
        o.tracer.end_span(s, SimTime::from_secs(1));
        o.event("e", SimTime::ZERO, &[("k", 1.0)]);
        assert!(!o.is_enabled());
        assert_eq!(o.metrics.counter("c"), 0);
        assert_eq!(o.tracer.spans().len(), 0);
        assert_eq!(o.tracer.events().len(), 0);
    }

    #[test]
    fn combined_export_is_valid_shape() {
        let mut o = Observer::new();
        o.metrics.inc("planner.commits");
        o.event("commit", SimTime::from_secs(3), &[("change", 7.0)]);
        let j = o.to_json();
        assert!(j.starts_with("{\"metrics\":"));
        assert!(j.contains("\"trace\":"));
        assert!(j.contains("planner.commits"));
    }

    #[test]
    fn exports_are_reproducible() {
        let build = || {
            let mut o = Observer::new();
            for i in 0..100u64 {
                o.metrics.add("c", i);
                o.metrics.observe("h", (i as f64) * 0.37);
                let s = o.tracer.start_span("build", SimTime::from_micros(i));
                o.tracer.end_span(s, SimTime::from_micros(i + 10));
            }
            o.metrics.set_gauge("g", 0.123456789);
            o.to_json()
        };
        assert_eq!(build(), build());
    }
}
