//! Sim-time tracing: structured spans and point events.
//!
//! Spans are intervals on the simulated timeline (a speculative build
//! from schedule to completion/abort); events are points (a commit, an
//! infra retry). Both carry numeric fields — simulation quantities are
//! ids, counts and durations, so a uniform `f64` field keeps the API
//! and export trivial. Timestamps come from [`sq_sim::SimTime`], never
//! from the wall clock, so two same-seed runs produce byte-identical
//! trace exports (the acceptance test of the observability layer).

use crate::json::JsonWriter;
use sq_sim::SimTime;

/// Handle to a span started on a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The id of a disabled tracer's spans; ending it is a no-op.
    const NONE: SpanId = SpanId(u64::MAX);
}

/// An interval on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span id (dense, in start order).
    pub id: u64,
    /// Span name (e.g. `"build"`).
    pub name: String,
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval; `None` while open.
    pub end: Option<SimTime>,
    /// Numeric fields attached at start or via [`Tracer::span_field`].
    pub fields: Vec<(String, f64)>,
}

/// A point on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (e.g. `"commit"`).
    pub name: String,
    /// When it happened.
    pub at: SimTime,
    /// Numeric fields.
    pub fields: Vec<(String, f64)>,
}

/// Recorder of spans and events.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    spans: Vec<Span>,
    events: Vec<TraceEvent>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// An enabled, empty tracer.
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            spans: Vec::new(),
            events: Vec::new(),
        }
    }

    /// A tracer whose recording calls are all no-ops.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            ..Tracer::new()
        }
    }

    /// True iff recording calls take effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span at `start`.
    pub fn start_span(&mut self, name: &str, start: SimTime) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let id = self.spans.len() as u64;
        self.spans.push(Span {
            id,
            name: name.to_string(),
            start,
            end: None,
            fields: Vec::new(),
        });
        SpanId(id)
    }

    /// Attach a numeric field to an open (or closed) span.
    pub fn span_field(&mut self, span: SpanId, key: &str, value: f64) {
        if !self.enabled || span == SpanId::NONE {
            return;
        }
        if let Some(s) = self.spans.get_mut(span.0 as usize) {
            s.fields.push((key.to_string(), value));
        }
    }

    /// Close a span at `end`. Closing twice keeps the first end time.
    pub fn end_span(&mut self, span: SpanId, end: SimTime) {
        if !self.enabled || span == SpanId::NONE {
            return;
        }
        if let Some(s) = self.spans.get_mut(span.0 as usize) {
            if s.end.is_none() {
                s.end = Some(end);
            }
        }
    }

    /// Record a point event with numeric fields.
    pub fn event(&mut self, name: &str, at: SimTime, fields: &[(&str, f64)]) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            name: name.to_string(),
            at,
            fields: fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// All recorded spans, in start order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All recorded events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Write the trace as a JSON object:
    /// `{"spans": [...], "events": [...]}` with microsecond timestamps.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("spans");
        w.begin_array();
        for s in &self.spans {
            w.begin_object();
            w.field_u64("id", s.id);
            w.field_str("name", &s.name);
            w.field_u64("start_us", s.start.as_micros());
            match s.end {
                Some(e) => w.field_u64("end_us", e.as_micros()),
                None => {
                    w.key("end_us");
                    w.value_null();
                }
            }
            w.key("fields");
            w.begin_object();
            for (k, v) in &s.fields {
                w.field_f64(k, *v);
            }
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.key("events");
        w.begin_array();
        for e in &self.events {
            w.begin_object();
            w.field_str("name", &e.name);
            w.field_u64("at_us", e.at.as_micros());
            w.key("fields");
            w.begin_object();
            for (k, v) in &e.fields {
                w.field_f64(k, *v);
            }
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    /// The trace as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_open_close_and_export() {
        let mut t = Tracer::new();
        let a = t.start_span("build", SimTime::from_secs(1));
        t.span_field(a, "subject", 7.0);
        let b = t.start_span("build", SimTime::from_secs(2));
        t.end_span(a, SimTime::from_secs(5));
        t.end_span(a, SimTime::from_secs(9)); // ignored: already closed
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.spans()[0].end, Some(SimTime::from_secs(5)));
        assert_eq!(t.spans()[1].end, None);
        let _ = b;
        let j = t.to_json();
        assert!(j.contains("\"start_us\":1000000"));
        assert!(j.contains("\"end_us\":null"));
        assert!(j.contains("\"subject\":7"));
    }

    #[test]
    fn events_record_in_order() {
        let mut t = Tracer::new();
        t.event("commit", SimTime::from_secs(3), &[("change", 1.0)]);
        t.event("reject", SimTime::from_secs(4), &[("change", 2.0)]);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].name, "commit");
        assert!(t.to_json().contains("\"at_us\":3000000"));
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::disabled();
        let s = t.start_span("x", SimTime::ZERO);
        t.span_field(s, "k", 1.0);
        t.end_span(s, SimTime::from_secs(1));
        t.event("e", SimTime::ZERO, &[]);
        assert!(t.spans().is_empty());
        assert!(t.events().is_empty());
    }
}
