//! The storage abstraction under the journal and snapshot files.
//!
//! Two backends:
//!
//! * [`FsStorage`] — real `std::fs` under a root directory, with
//!   fsync-on-request and atomic replace via write-to-temp + rename.
//! * [`MemStorage`] — a deterministic in-memory map with seeded
//!   **crash-point injection** ([`CrashPlan`]): any mutating operation
//!   can "kill the process" mid-write, leaving either a torn prefix
//!   (strictly fewer bytes than were written) or the full bytes with
//!   the acknowledgement lost. Once crashed, the backend refuses every
//!   further operation until [`MemStorage::revive`] — exactly the
//!   discipline a real crash imposes, so recovery code cannot cheat by
//!   touching post-crash state.
//!
//! The trait is object-safe-free and generic-friendly; share one
//! backend between a service and a test harness by wrapping it in
//! `Arc<Mutex<_>>` (the blanket impl below), which is how the chaos
//! suite keeps hold of the "disk" across simulated process deaths.

use crate::fault::{CrashKind, CrashPlan};
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Errors from the durability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O failure from the real filesystem backend.
    Io(String),
    /// The simulated process died at this mutating-operation ordinal.
    /// The storage contents reflect the crash point; reopen and replay.
    Crashed {
        /// The mutating-operation ordinal the crash landed on.
        op: u64,
    },
    /// A journal record failed validation away from the torn tail —
    /// silent data damage, not an interrupted append.
    CorruptJournal {
        /// Byte offset of the bad record.
        offset: u64,
        /// What failed (header checksum, payload checksum, magic).
        detail: String,
    },
    /// The snapshot file failed validation.
    CorruptSnapshot {
        /// What failed.
        detail: String,
    },
    /// A replication message failed validation (bad magic, checksum
    /// mismatch, non-contiguous LSNs) — damage on the "wire", refused
    /// before any byte reaches the follower's journal.
    CorruptShip {
        /// What failed.
        detail: String,
    },
    /// An append or snapshot install carried a stale epoch: the sender
    /// was deposed by a promotion it has not yet learned about. The
    /// fenced party must stop accepting work (no split-brain).
    Fenced {
        /// The receiver's (current) epoch.
        ours: u64,
        /// The stale sender's epoch.
        theirs: u64,
    },
    /// A shipped batch does not continue the receiver's journal: the
    /// leader must fall back to a snapshot + suffix resync.
    ReplicaGap {
        /// The LSN the receiver expected next.
        expected: u64,
        /// The first LSN the batch actually carried.
        got: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Crashed { op } => write!(f, "simulated crash at storage op {op}"),
            StoreError::CorruptJournal { offset, detail } => {
                write!(f, "corrupt journal record at byte {offset}: {detail}")
            }
            StoreError::CorruptSnapshot { detail } => write!(f, "corrupt snapshot: {detail}"),
            StoreError::CorruptShip { detail } => write!(f, "corrupt ship batch: {detail}"),
            StoreError::Fenced { ours, theirs } => {
                write!(f, "fenced: stale epoch {theirs} refused at epoch {ours}")
            }
            StoreError::ReplicaGap { expected, got } => {
                write!(
                    f,
                    "replica gap: expected lsn {expected}, batch starts at {got}"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// A keyed byte store: the minimal surface a write-ahead journal needs.
///
/// `append`/`write_atomic`/`truncate` are the mutating operations; a
/// crash-injecting backend may fail any of them with
/// [`StoreError::Crashed`]. `sync` makes previous writes durable (a
/// counter hook on the real backend; the simulated backend persists
/// appends immediately and models data loss as torn appends instead).
pub trait Storage {
    /// Full contents of `name`, or `None` if it does not exist.
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, StoreError>;
    /// Append bytes to `name`, creating it if missing.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;
    /// Truncate `name` to `len` bytes (no-op if already shorter).
    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError>;
    /// Replace `name` with `bytes` atomically: afterwards the file holds
    /// either the old contents or the new, never a mixture.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;
    /// Delete `name` (no-op if it does not exist). Removal is atomic:
    /// after a crash the file is either fully present or fully gone.
    fn remove(&mut self, name: &str) -> Result<(), StoreError>;
    /// Flush `name` to the durable medium.
    fn sync(&mut self, name: &str) -> Result<(), StoreError>;
}

/// Share one backend between an owner and a harness: the chaos tests
/// keep an `Arc<Mutex<MemStorage>>` "disk" alive across simulated
/// process deaths while each service generation owns a clone.
impl<S: Storage> Storage for Arc<Mutex<S>> {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.lock().expect("storage lock").read(name)
    }
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.lock().expect("storage lock").append(name, bytes)
    }
    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError> {
        self.lock().expect("storage lock").truncate(name, len)
    }
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.lock().expect("storage lock").write_atomic(name, bytes)
    }
    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        self.lock().expect("storage lock").remove(name)
    }
    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        self.lock().expect("storage lock").sync(name)
    }
}

/// Real files under a root directory. `Clone` shares the root: clones
/// address the same files, which is what a replication link needs to
/// reopen a follower over its surviving medium.
#[derive(Debug, Clone)]
pub struct FsStorage {
    root: PathBuf,
}

impl FsStorage {
    /// Open (creating if needed) a storage root.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FsStorage { root })
    }

    /// The root directory.
    pub fn root(&self) -> &PathBuf {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Storage for FsStorage {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(bytes)?;
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))?;
        if f.metadata()?.len() > len {
            f.set_len(len)?;
        }
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.path(&format!("{name}.tmp"));
        std::fs::write(&tmp, bytes)?;
        std::fs::File::open(&tmp)?.sync_all()?;
        std::fs::rename(&tmp, self.path(name))?;
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        // The file may legitimately not exist yet (sync after a no-op).
        match std::fs::File::open(self.path(name)) {
            Ok(f) => Ok(f.sync_all()?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Deterministic in-memory storage with crash-point injection.
#[derive(Debug, Clone)]
pub struct MemStorage {
    files: BTreeMap<String, Vec<u8>>,
    plan: CrashPlan,
    /// Mutating-operation ordinal; continues across [`Self::revive`] so
    /// one seed describes one complete multi-crash history.
    ops: u64,
    /// True between a crash and the next revive: every operation fails.
    dead: bool,
}

impl MemStorage {
    /// An empty store that never crashes.
    pub fn new() -> Self {
        Self::with_crashes(CrashPlan::none())
    }

    /// An empty store crashing per `plan`.
    pub fn with_crashes(plan: CrashPlan) -> Self {
        MemStorage {
            files: BTreeMap::new(),
            plan,
            ops: 0,
            dead: false,
        }
    }

    /// Bring a crashed store back to life (the "process restart"); the
    /// contents are whatever the crash left behind and the operation
    /// ordinal keeps counting, so the seeded crash schedule continues.
    pub fn revive(&mut self) {
        self.dead = false;
    }

    /// True between a crash and the next [`Self::revive`].
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Swap the crash plan (e.g. disable crashes for a final audit).
    pub fn set_plan(&mut self, plan: CrashPlan) {
        self.plan = plan;
    }

    /// Mutating operations issued so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Test hook: raw contents of `name`.
    pub fn file(&self, name: &str) -> Option<&Vec<u8>> {
        self.files.get(name)
    }

    /// Test hook: flip one bit in `name` (simulated silent bit rot).
    pub fn flip_bit(&mut self, name: &str, byte: usize, bit: u8) {
        let f = self.files.get_mut(name).expect("file exists");
        f[byte] ^= 1 << (bit % 8);
    }

    /// Test hook: drop the last `n` bytes of `name` (simulated torn
    /// tail beyond what the crash plan produces).
    pub fn chop(&mut self, name: &str, n: usize) {
        let f = self.files.get_mut(name).expect("file exists");
        let keep = f.len().saturating_sub(n);
        f.truncate(keep);
    }

    /// Decide whether the next mutating operation crashes. Returns the
    /// decision; the ordinal advances either way.
    fn mutating_op(&mut self) -> Result<Option<crate::fault::CrashDecision>, StoreError> {
        if self.dead {
            return Err(StoreError::Crashed { op: self.ops });
        }
        let op = self.ops;
        self.ops += 1;
        Ok(self.plan.decide(op).inspect(|_| {
            self.dead = true;
        }))
    }
}

impl Default for MemStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl Storage for MemStorage {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        if self.dead {
            return Err(StoreError::Crashed { op: self.ops });
        }
        Ok(self.files.get(name).cloned())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let crash = self.mutating_op()?;
        let file = self.files.entry(name.to_string()).or_default();
        match crash {
            None => {
                file.extend_from_slice(bytes);
                Ok(())
            }
            Some(d) => {
                let keep = match d.kind {
                    // A torn append persists a strict prefix: at least
                    // one byte is always lost, so a torn record can
                    // never masquerade as a complete valid one.
                    CrashKind::Torn => ((bytes.len() as f64 * d.torn_fraction) as usize)
                        .min(bytes.len().saturating_sub(1)),
                    CrashKind::AfterWrite => bytes.len(),
                };
                file.extend_from_slice(&bytes[..keep]);
                Err(StoreError::Crashed { op: self.ops - 1 })
            }
        }
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError> {
        let crash = self.mutating_op()?;
        match crash {
            None => {
                if let Some(f) = self.files.get_mut(name) {
                    let len = len as usize;
                    if f.len() > len {
                        f.truncate(len);
                    }
                }
                Ok(())
            }
            Some(d) => {
                // Truncation is atomic on any sane filesystem: the crash
                // lands either before or after it took effect.
                if d.kind == CrashKind::AfterWrite {
                    if let Some(f) = self.files.get_mut(name) {
                        let len = len as usize;
                        if f.len() > len {
                            f.truncate(len);
                        }
                    }
                }
                Err(StoreError::Crashed { op: self.ops - 1 })
            }
        }
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let crash = self.mutating_op()?;
        match crash {
            None => {
                self.files.insert(name.to_string(), bytes.to_vec());
                Ok(())
            }
            Some(d) => {
                // Atomic replace never tears: old or new, whole.
                if d.kind == CrashKind::AfterWrite {
                    self.files.insert(name.to_string(), bytes.to_vec());
                }
                Err(StoreError::Crashed { op: self.ops - 1 })
            }
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        let crash = self.mutating_op()?;
        match crash {
            None => {
                self.files.remove(name);
                Ok(())
            }
            Some(d) => {
                // Removal is atomic: the crash lands before or after.
                if d.kind == CrashKind::AfterWrite {
                    self.files.remove(name);
                }
                Err(StoreError::Crashed { op: self.ops - 1 })
            }
        }
    }

    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        if self.dead {
            return Err(StoreError::Crashed { op: self.ops });
        }
        let _ = name;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_round_trip() {
        let mut s = MemStorage::new();
        assert_eq!(s.read("j").unwrap(), None);
        s.append("j", b"abc").unwrap();
        s.append("j", b"def").unwrap();
        assert_eq!(s.read("j").unwrap().unwrap(), b"abcdef");
        s.truncate("j", 4).unwrap();
        assert_eq!(s.read("j").unwrap().unwrap(), b"abcd");
        s.write_atomic("snap", b"state").unwrap();
        assert_eq!(s.read("snap").unwrap().unwrap(), b"state");
        s.sync("j").unwrap();
    }

    #[test]
    fn torn_crash_keeps_a_strict_prefix_then_store_is_dead() {
        use crate::fault::CrashKind;
        let mut s = MemStorage::with_crashes(CrashPlan::at_op(1, CrashKind::Torn));
        s.append("j", b"first").unwrap(); // op 0
        let err = s.append("j", b"0123456789").unwrap_err(); // op 1: crash
        assert_eq!(err, StoreError::Crashed { op: 1 });
        let contents = s.file("j").unwrap().clone();
        assert!(
            contents.len() >= 5 && contents.len() < 15,
            "torn: {contents:?}"
        );
        assert!(s.is_dead());
        // Every operation refuses until revive.
        assert!(s.read("j").is_err());
        assert!(s.append("j", b"x").is_err());
        s.revive();
        assert_eq!(s.read("j").unwrap().unwrap(), contents);
    }

    #[test]
    fn after_write_crash_keeps_all_bytes() {
        use crate::fault::CrashKind;
        let mut s = MemStorage::with_crashes(CrashPlan::at_op(0, CrashKind::AfterWrite));
        let err = s.append("j", b"payload").unwrap_err();
        assert!(matches!(err, StoreError::Crashed { op: 0 }));
        s.revive();
        assert_eq!(s.read("j").unwrap().unwrap(), b"payload");
    }

    #[test]
    fn atomic_replace_never_tears_under_crash() {
        use crate::fault::CrashKind;
        for (kind, expect_new) in [(CrashKind::Torn, false), (CrashKind::AfterWrite, true)] {
            let mut s = MemStorage::with_crashes(CrashPlan::at_op(1, kind));
            s.write_atomic("snap", b"old").unwrap(); // op 0
            assert!(s.write_atomic("snap", b"new").is_err()); // op 1
            s.revive();
            let got = s.read("snap").unwrap().unwrap();
            assert_eq!(
                got,
                if expect_new {
                    b"new".to_vec()
                } else {
                    b"old".to_vec()
                }
            );
        }
    }

    #[test]
    fn same_seed_same_crash_history() {
        let run = || {
            let mut s = MemStorage::with_crashes(CrashPlan::at_rate(77, 0.3));
            let mut log = Vec::new();
            for i in 0..50u32 {
                match s.append("j", &i.to_le_bytes()) {
                    Ok(()) => log.push(Ok(())),
                    Err(e) => {
                        log.push(Err(e));
                        s.revive();
                    }
                }
            }
            (log, s.file("j").cloned())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fs_round_trip() {
        let root = std::env::temp_dir().join(format!("sq-store-fs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut s = FsStorage::open(&root).unwrap();
        assert_eq!(s.read("j").unwrap(), None);
        s.append("j", b"abc").unwrap();
        s.append("j", b"def").unwrap();
        s.sync("j").unwrap();
        assert_eq!(s.read("j").unwrap().unwrap(), b"abcdef");
        s.truncate("j", 2).unwrap();
        assert_eq!(s.read("j").unwrap().unwrap(), b"ab");
        s.write_atomic("snap", b"state-v1").unwrap();
        s.write_atomic("snap", b"state-v2").unwrap();
        assert_eq!(s.read("snap").unwrap().unwrap(), b"state-v2");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
