//! Snapshot encoding: one whole-state blob, checksummed and stamped
//! with the journal position it covers.
//!
//! Layout:
//!
//! ```text
//! "SQSNAP1\n"  [u64 lsn]  [u32 len]  [u32 crc]  [payload: len]
//! ```
//!
//! `crc` checksums `lsn ‖ payload` via the shared
//! [`checksum`](crate::checksum) module. Snapshots are written with
//! [`Storage::write_atomic`](crate::storage::Storage::write_atomic), so
//! a reader only ever sees a complete old snapshot or a complete new
//! one — any validation failure is therefore genuine corruption, never
//! a crash artifact, and decoding refuses rather than guesses.

use crate::checksum::Crc32;
use crate::storage::StoreError;

/// Snapshot file magic.
pub const MAGIC: &[u8; 8] = b"SQSNAP1\n";

/// Encode a snapshot of `payload` covering journal records up to and
/// including `lsn`.
pub fn encode(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("snapshot fits in u32");
    let mut crc = Crc32::new();
    crc.update(&lsn.to_le_bytes());
    crc.update(payload);
    let mut out = Vec::with_capacity(MAGIC.len() + 16 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode a snapshot file into `(covered lsn, payload)`.
pub fn decode(data: &[u8]) -> Result<(u64, Vec<u8>), StoreError> {
    let corrupt = |detail: &str| StoreError::CorruptSnapshot {
        detail: detail.to_string(),
    };
    if data.len() < MAGIC.len() + 16 {
        return Err(corrupt("shorter than header"));
    }
    if &data[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let lsn = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(data[16..20].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(data[20..24].try_into().expect("4 bytes"));
    let payload = &data[24..];
    if payload.len() != len {
        return Err(corrupt("length mismatch"));
    }
    let mut check = Crc32::new();
    check.update(&lsn.to_le_bytes());
    check.update(payload);
    if check.finish() != crc {
        return Err(corrupt("checksum mismatch"));
    }
    Ok((lsn, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let enc = encode(42, b"the whole service state");
        let (lsn, payload) = decode(&enc).unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(payload, b"the whole service state");
    }

    #[test]
    fn empty_payload_round_trips() {
        let enc = encode(0, b"");
        assert_eq!(decode(&enc).unwrap(), (0, Vec::new()));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let enc = encode(7, b"snapshot payload bytes");
        for byte in 0..enc.len() {
            let mut damaged = enc.clone();
            damaged[byte] ^= 1;
            assert!(
                decode(&damaged).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let enc = encode(7, b"snapshot payload");
        for cut in 0..enc.len() {
            assert!(decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }
}
