//! Seeded crash-point injection for the simulated storage backend.
//!
//! Same discipline as `exec::fault`: every decision is a pure function
//! of `(seed, operation ordinal)` via the SplitMix64 finalizer, so a
//! crash schedule is bit-identical across runs and independent of
//! thread interleaving. (The mixer is re-implemented here rather than
//! imported — `sq-store` sits below every other crate and stays
//! dependency-free.)

/// SplitMix64 finalizer — the same mixer `exec::fault` and the sim RNG
/// seeding use.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Map a 64-bit hash to a uniform fraction in `[0, 1)`.
pub fn fraction(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Where, relative to a mutating storage operation, the simulated
/// process dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// The write was torn: only a strict prefix of the bytes reached
    /// the medium before the process died.
    Torn,
    /// The write fully reached the medium, but the process died before
    /// it could acknowledge — the "journaled but never acked" window.
    AfterWrite,
}

/// A seeded schedule of crash points over mutating storage operations.
///
/// Operations are numbered in issue order (the ordinal survives
/// recovery: a revived [`MemStorage`](crate::storage::MemStorage) keeps
/// counting, so one seed describes one complete multi-crash history).
#[derive(Debug, Clone)]
pub enum CrashPlan {
    /// Never crash.
    None,
    /// Crash each mutating operation independently with probability
    /// `rate`; the crash kind and torn fraction are further seeded
    /// draws.
    Rate {
        /// Decision seed.
        seed: u64,
        /// Per-operation crash probability in `[0, 1]`.
        rate: f64,
    },
    /// Crash exactly at the given operation ordinal, with the given
    /// kind — for targeted tests ("kill between journal append and
    /// ack").
    AtOp {
        /// The mutating-operation ordinal (0-based) to crash on.
        op: u64,
        /// How the crash tears (or doesn't tear) the write.
        kind: CrashKind,
    },
}

impl CrashPlan {
    /// A plan that never crashes.
    pub fn none() -> Self {
        CrashPlan::None
    }

    /// A plan crashing each mutating operation with probability `rate`.
    /// Panics unless `rate` is a probability in `[0, 1]`.
    pub fn at_rate(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "crash rate must be in [0,1]");
        CrashPlan::Rate { seed, rate }
    }

    /// A plan crashing exactly on operation `op` with `kind`.
    pub fn at_op(op: u64, kind: CrashKind) -> Self {
        CrashPlan::AtOp { op, kind }
    }

    /// Decide whether mutating operation `op` (0-based ordinal) crashes,
    /// and how. Pure function of `(plan, op)`.
    pub fn decide(&self, op: u64) -> Option<CrashDecision> {
        match self {
            CrashPlan::None => None,
            CrashPlan::AtOp { op: at, kind } => (op == *at).then_some(CrashDecision {
                kind: *kind,
                torn_fraction: 0.5,
            }),
            CrashPlan::Rate { seed, rate } => {
                if *rate <= 0.0 {
                    return None;
                }
                let h = mix64(*seed ^ mix64(op));
                if fraction(h) >= *rate {
                    return None;
                }
                // Independent draws for the kind and the torn fraction.
                let k = mix64(h ^ 0x7EA2);
                let kind = if k & 1 == 0 {
                    CrashKind::Torn
                } else {
                    CrashKind::AfterWrite
                };
                Some(CrashDecision {
                    kind,
                    torn_fraction: fraction(mix64(h ^ 0xF417)),
                })
            }
        }
    }
}

/// The outcome of a crash decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashDecision {
    /// Torn or after-write.
    pub kind: CrashKind,
    /// For torn writes: the fraction of the bytes that survive (always
    /// strictly fewer than all of them — see
    /// [`MemStorage`](crate::storage::MemStorage)).
    pub torn_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_crashes() {
        let p = CrashPlan::none();
        assert!((0..1000).all(|op| p.decide(op).is_none()));
    }

    #[test]
    fn at_op_crashes_exactly_once() {
        let p = CrashPlan::at_op(7, CrashKind::Torn);
        let hits: Vec<u64> = (0..100).filter(|&op| p.decide(op).is_some()).collect();
        assert_eq!(hits, vec![7]);
        assert_eq!(p.decide(7).unwrap().kind, CrashKind::Torn);
    }

    #[test]
    fn rate_decisions_are_deterministic_and_seed_sensitive() {
        let a = CrashPlan::at_rate(42, 0.3);
        let b = CrashPlan::at_rate(42, 0.3);
        let c = CrashPlan::at_rate(43, 0.3);
        let seq = |p: &CrashPlan| (0..500).map(|op| p.decide(op)).collect::<Vec<_>>();
        assert_eq!(seq(&a), seq(&b));
        assert_ne!(seq(&a), seq(&c));
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let p = CrashPlan::at_rate(9, 0.2);
        let n = 20_000u64;
        let hits = (0..n).filter(|&op| p.decide(op).is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn both_crash_kinds_occur() {
        let p = CrashPlan::at_rate(5, 0.5);
        let kinds: Vec<CrashKind> = (0..200)
            .filter_map(|op| p.decide(op))
            .map(|d| d.kind)
            .collect();
        assert!(kinds.contains(&CrashKind::Torn));
        assert!(kinds.contains(&CrashKind::AfterWrite));
    }
}
