//! Write-ahead journal record framing: length-prefixed, CRC-checksummed
//! records with torn-tail truncation and corruption detection.
//!
//! File layout:
//!
//! ```text
//! "SQWAL1\r\n"                                      8-byte magic
//! record := [u32 len] [u32 hcrc] [u32 bcrc] [u64 lsn] [payload: len]
//! ```
//!
//! `hcrc` checksums the length prefix itself; `bcrc` checksums
//! `lsn ‖ payload`. All integers little-endian. Both checksums are
//! [`checksum::crc32`](crate::checksum::crc32) — the one shared
//! implementation.
//!
//! The distinction that makes recovery safe:
//!
//! * **Torn tail** — the file ends before a record completes (short
//!   header, or a full header whose body runs past EOF). This is what
//!   an interrupted append leaves behind; the scanner reports the valid
//!   prefix length so the opener can truncate and continue.
//! * **Corruption** — a record is *fully present* but a checksum
//!   disagrees. An append tears to a strict byte prefix, so this can
//!   never be the residue of a crash; it is silent damage and the scan
//!   refuses the file rather than guessing. Checksumming the length
//!   prefix separately means a bit flip in *any* byte of a complete
//!   record — including the framing itself — is detected rather than
//!   misread as a torn tail that would silently drop good records
//!   behind it.

use crate::checksum::{crc32, Crc32};
use crate::storage::StoreError;

/// Journal file magic: identifies the format and its version.
pub const MAGIC: &[u8; 8] = b"SQWAL1\r\n";

/// Fixed bytes before a record's body: len + hcrc + bcrc.
pub const HEADER_LEN: usize = 12;

/// Encode one record (header + lsn + payload) ready to append.
pub fn encode_record(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("journal payload fits in u32");
    let mut bcrc = Crc32::new();
    bcrc.update(&lsn.to_le_bytes());
    bcrc.update(payload);
    let mut out = Vec::with_capacity(HEADER_LEN + 8 + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(&len.to_le_bytes()).to_le_bytes());
    out.extend_from_slice(&bcrc.finish().to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One recovered record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Log sequence number (monotone, 1-based).
    pub lsn: u64,
    /// The payload as appended.
    pub payload: Vec<u8>,
}

/// Result of scanning a journal's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan {
    /// Every complete, checksum-valid record, in file order.
    pub records: Vec<Record>,
    /// Length of the valid prefix (magic + complete records); anything
    /// beyond it is a torn tail the opener should truncate away.
    pub valid_len: u64,
    /// Bytes past `valid_len` (0 for a clean file).
    pub torn_bytes: u64,
}

/// Scan journal bytes (including the magic) into records.
///
/// Returns `Err` only for *corruption* — a complete record failing its
/// checksums, or a damaged magic. A torn tail is a normal crash
/// artifact and is reported in the `Scan`, not as an error. A file
/// shorter than the magic is treated as a torn creation (no records).
pub fn scan(data: &[u8]) -> Result<Scan, StoreError> {
    if data.len() < MAGIC.len() {
        // Creation itself was interrupted: no record can exist yet.
        return Ok(Scan {
            records: Vec::new(),
            valid_len: 0,
            torn_bytes: data.len() as u64,
        });
    }
    if &data[..MAGIC.len()] != MAGIC {
        return Err(StoreError::CorruptJournal {
            offset: 0,
            detail: "bad magic".to_string(),
        });
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    loop {
        let rem = data.len() - pos;
        if rem == 0 {
            return Ok(Scan {
                records,
                valid_len: pos as u64,
                torn_bytes: 0,
            });
        }
        if rem < HEADER_LEN {
            // Short header: an append died inside the framing.
            return Ok(Scan {
                records,
                valid_len: pos as u64,
                torn_bytes: rem as u64,
            });
        }
        let word = |at: usize| {
            u32::from_le_bytes(data[pos + at..pos + at + 4].try_into().expect("4 bytes"))
        };
        let len_bytes = &data[pos..pos + 4];
        let len = word(0) as usize;
        let hcrc = word(4);
        let bcrc = word(8);
        if crc32(len_bytes) != hcrc {
            // The full header is present (torn appends leave strict
            // prefixes, caught above), so a bad header checksum is
            // damage, not a crash artifact.
            return Err(StoreError::CorruptJournal {
                offset: pos as u64,
                detail: "header checksum mismatch".to_string(),
            });
        }
        let body_len = 8 + len;
        if rem - HEADER_LEN < body_len {
            // Valid header, body runs past EOF: torn append.
            return Ok(Scan {
                records,
                valid_len: pos as u64,
                torn_bytes: rem as u64,
            });
        }
        let body = &data[pos + HEADER_LEN..pos + HEADER_LEN + body_len];
        if crc32(body) != bcrc {
            return Err(StoreError::CorruptJournal {
                offset: pos as u64,
                detail: "payload checksum mismatch".to_string(),
            });
        }
        let lsn = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        records.push(Record {
            lsn,
            payload: body[8..].to_vec(),
        });
        pos += HEADER_LEN + body_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_with(payloads: &[&[u8]]) -> Vec<u8> {
        let mut f = MAGIC.to_vec();
        for (i, p) in payloads.iter().enumerate() {
            f.extend_from_slice(&encode_record(i as u64 + 1, p));
        }
        f
    }

    #[test]
    fn encode_scan_round_trip() {
        let f = file_with(&[b"alpha", b"", b"gamma with spaces"]);
        let scan = scan(&f).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.valid_len, f.len() as u64);
        assert_eq!(
            scan.records,
            vec![
                Record {
                    lsn: 1,
                    payload: b"alpha".to_vec()
                },
                Record {
                    lsn: 2,
                    payload: Vec::new()
                },
                Record {
                    lsn: 3,
                    payload: b"gamma with spaces".to_vec()
                },
            ]
        );
    }

    #[test]
    fn torn_tail_is_reported_not_errored() {
        let full = file_with(&[b"first", b"second"]);
        let intact = file_with(&[b"first"]).len();
        // Cut anywhere inside the second record: the first survives.
        for cut in intact + 1..full.len() {
            let scan = scan(&full[..cut]).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len as usize, intact, "cut at {cut}");
            assert_eq!(scan.torn_bytes as usize, cut - intact, "cut at {cut}");
        }
    }

    #[test]
    fn torn_magic_yields_empty_scan() {
        for cut in 0..MAGIC.len() {
            let scan = scan(&MAGIC[..cut]).unwrap();
            assert!(scan.records.is_empty());
            assert_eq!(scan.valid_len, 0);
        }
    }

    #[test]
    fn wrong_magic_is_corruption() {
        let mut f = file_with(&[b"x"]);
        f[2] ^= 0x40;
        assert!(matches!(
            scan(&f),
            Err(StoreError::CorruptJournal { offset: 0, .. })
        ));
    }

    #[test]
    fn any_single_bit_flip_in_a_complete_record_is_detected() {
        let f = file_with(&[b"first record", b"second record"]);
        for byte in MAGIC.len()..f.len() {
            let mut damaged = f.clone();
            damaged[byte] ^= 1;
            assert!(
                matches!(scan(&damaged), Err(StoreError::CorruptJournal { .. })),
                "flip at byte {byte} went undetected"
            );
        }
    }
}
