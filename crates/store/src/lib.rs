//! # sq-store — durable state for the SubmitQueue
//!
//! The paper's SubmitQueue is a long-running service whose entire value
//! is a *guarantee about mainline state*; a reproduction that forgets
//! its pending queue and audit trail on process death cannot honestly
//! claim the guarantee. This crate is the durability substrate:
//!
//! * [`journal`] — a length-prefixed, CRC-checksummed **write-ahead
//!   journal**: torn tails (crash artifacts) are truncated on open,
//!   while checksum failures away from the tail (silent damage) refuse
//!   the file.
//! * [`snapshot`] — whole-state snapshots, written atomically and
//!   stamped with the journal position they cover, so recovery replays
//!   only the journal *suffix*.
//! * [`storage`] — the [`Storage`] backend trait: real files
//!   ([`FsStorage`]) or a deterministic in-memory medium
//!   ([`MemStorage`]) whose seeded [`CrashPlan`] can kill the simulated
//!   process mid-write (the `exec::fault` decision pattern, one layer
//!   down).
//! * [`checksum`] — the one CRC-32 implementation both encoders share.
//! * [`DurableStore`] — journal + snapshot over one backend: append,
//!   cadence-driven snapshotting, and crash-consistent recovery.
//!
//! The contract the chaos suite holds this crate to: after *any*
//! injected crash point, reopening yields exactly the acknowledged
//! prefix of history — nothing acknowledged is lost, nothing torn is
//! half-applied.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod codec;
pub mod fault;
pub mod journal;
pub mod replicate;
pub mod snapshot;
pub mod storage;

pub use codec::{CodecError, Decoder, Encoder};
pub use fault::{CrashKind, CrashPlan};
pub use replicate::{
    AckMode, Follower, Leader, LinkState, ReplicationConfig, ReplicationStats, ReplicationStatus,
    ShipBatch, ShipSamples,
};
pub use storage::{FsStorage, MemStorage, Storage, StoreError};

/// The write-ahead-log surface a durable service journals through.
///
/// Implemented by the single-node [`DurableStore`] and by the
/// replicating [`Leader`](replicate::Leader), so the service layer is
/// agnostic to whether appends are local-only or shipped to followers.
/// The contract every implementation upholds: a returned LSN means the
/// payload is durable per the implementation's ack discipline, and an
/// `Err` means the handle must be abandoned and recovery re-opened.
pub trait Wal {
    /// Append one payload as a journal record (write-ahead, synced).
    /// Returns the record's LSN.
    fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError>;
    /// True when the snapshot cadence says it is time to compact.
    fn should_snapshot(&self) -> bool;
    /// Snapshot the caller's current state and compact the journal.
    fn write_snapshot(&mut self, state: &[u8]) -> Result<(), StoreError>;
    /// The LSN the next append will carry.
    fn next_lsn(&self) -> u64;
    /// Operation counters of the local store.
    fn stats(&self) -> &StoreStats;
}

/// Configuration of a [`DurableStore`].
#[derive(Debug, Clone)]
pub struct DurableStoreConfig {
    /// Journal file name within the backend.
    pub journal_file: String,
    /// Snapshot file name within the backend.
    pub snapshot_file: String,
    /// Take a snapshot after this many journal appends (and truncate
    /// the absorbed journal prefix). `u64::MAX` disables snapshotting.
    pub snapshot_every: u64,
}

impl Default for DurableStoreConfig {
    fn default() -> Self {
        DurableStoreConfig {
            journal_file: "journal.wal".to_string(),
            snapshot_file: "snapshot.bin".to_string(),
            snapshot_every: 64,
        }
    }
}

impl DurableStoreConfig {
    /// Default file names with an explicit snapshot cadence.
    pub fn with_snapshot_every(snapshot_every: u64) -> Self {
        DurableStoreConfig {
            snapshot_every,
            ..Self::default()
        }
    }
}

/// Everything recovered by [`DurableStore::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// The latest snapshot payload, if one exists.
    pub snapshot: Option<Vec<u8>>,
    /// The journal position the snapshot covers (0 if none).
    pub snapshot_lsn: u64,
    /// Journal payloads *after* the snapshot, in append order — the
    /// suffix the caller must replay on top of the snapshot.
    pub events: Vec<Vec<u8>>,
    /// Torn-tail bytes truncated away during open (0 for a clean file).
    pub truncated_tail_bytes: u64,
}

impl Recovery {
    /// What this open did to reconstruct state — the operator-facing
    /// distinction between a clean open and a tail repair.
    pub fn replay_stats(&self) -> ReplayStats {
        ReplayStats {
            replayed_records: self.events.len() as u64,
            truncated_bytes: self.truncated_tail_bytes,
            snapshot_loaded: self.snapshot.is_some(),
        }
    }
}

/// How an open reconstructed state: records replayed, whether a
/// snapshot seeded the fold, and — the crash tell — how many torn-tail
/// bytes had to be truncated away. A clean shutdown always reopens with
/// `truncated_bytes == 0`; a nonzero count means the journal's tail was
/// repaired, which operators (and the chaos suite's uncrashed twin,
/// which asserts 0) use to distinguish clean opens from crash recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Journal records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Torn-tail bytes truncated during the open (0 = clean open).
    pub truncated_bytes: u64,
    /// True when a snapshot seeded the replay.
    pub snapshot_loaded: bool,
}

/// Operation counters for observability (exported into `sq-obs` by the
/// service layer; kept here as plain integers so the crate stays
/// dependency-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Journal records appended through this handle.
    pub appends: u64,
    /// Journal bytes appended (framing included).
    pub appended_bytes: u64,
    /// Sync (fsync) calls issued.
    pub fsyncs: u64,
    /// Snapshots written.
    pub snapshots: u64,
    /// Size of the most recent snapshot file, bytes.
    pub last_snapshot_bytes: u64,
    /// Journal records replayed by [`DurableStore::open`].
    pub replayed_records: u64,
    /// Torn-tail bytes truncated by [`DurableStore::open`].
    pub truncated_tail_bytes: u64,
    /// Wall-clock cost of the open-and-replay, microseconds. (The only
    /// non-deterministic field; exports that must be byte-stable omit
    /// it.)
    pub replay_micros: u64,
}

/// A write-ahead journal plus snapshots over one [`Storage`] backend.
#[derive(Debug)]
pub struct DurableStore<S: Storage> {
    storage: S,
    config: DurableStoreConfig,
    /// LSN the next append will carry (1-based, monotone across
    /// truncations and reopenings).
    next_lsn: u64,
    records_since_snapshot: u64,
    stats: StoreStats,
}

impl<S: Storage> DurableStore<S> {
    /// Open (or create) the store: load the snapshot, scan the journal,
    /// truncate any torn tail, and hand back the replay suffix.
    pub fn open(
        mut storage: S,
        config: DurableStoreConfig,
    ) -> Result<(Self, Recovery), StoreError> {
        let started = std::time::Instant::now();
        let (snapshot, snapshot_lsn) = match storage.read(&config.snapshot_file)? {
            None => (None, 0),
            Some(bytes) => {
                let (lsn, payload) = snapshot::decode(&bytes)?;
                (Some(payload), lsn)
            }
        };
        let journal_bytes = storage.read(&config.journal_file)?.unwrap_or_default();
        let scan = journal::scan(&journal_bytes)?;
        if scan.torn_bytes > 0 {
            storage.truncate(&config.journal_file, scan.valid_len)?;
        }
        if scan.valid_len == 0 {
            // Fresh (or torn-at-creation) journal: lay down the magic.
            storage.append(&config.journal_file, journal::MAGIC)?;
            storage.sync(&config.journal_file)?;
        }
        let max_lsn = scan
            .records
            .last()
            .map(|r| r.lsn)
            .unwrap_or(0)
            .max(snapshot_lsn);
        let events: Vec<Vec<u8>> = scan
            .records
            .into_iter()
            .filter(|r| r.lsn > snapshot_lsn)
            .map(|r| r.payload)
            .collect();
        let stats = StoreStats {
            replayed_records: events.len() as u64,
            truncated_tail_bytes: scan.torn_bytes,
            last_snapshot_bytes: snapshot.as_ref().map(|s| s.len() as u64).unwrap_or(0),
            replay_micros: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            ..StoreStats::default()
        };
        let store = DurableStore {
            storage,
            config,
            next_lsn: max_lsn + 1,
            records_since_snapshot: events.len() as u64,
            stats,
        };
        let recovery = Recovery {
            snapshot,
            snapshot_lsn,
            events,
            truncated_tail_bytes: store.stats.truncated_tail_bytes,
        };
        Ok((store, recovery))
    }

    /// Append one payload as a journal record and sync it. Returns the
    /// record's LSN. On error the owning process must treat itself as
    /// dead: the record may or may not have reached the medium, and
    /// only a fresh [`DurableStore::open`] can tell.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let lsn = self.next_lsn;
        let record = journal::encode_record(lsn, payload);
        self.storage.append(&self.config.journal_file, &record)?;
        self.storage.sync(&self.config.journal_file)?;
        self.next_lsn += 1;
        self.records_since_snapshot += 1;
        self.stats.appends += 1;
        self.stats.appended_bytes += record.len() as u64;
        self.stats.fsyncs += 1;
        Ok(lsn)
    }

    /// True when the snapshot cadence says it is time to compact.
    pub fn should_snapshot(&self) -> bool {
        self.records_since_snapshot >= self.config.snapshot_every
    }

    /// Write a snapshot of the caller's current state (which must
    /// reflect every appended record), then truncate the absorbed
    /// journal prefix. Crash-ordering: the snapshot lands atomically
    /// first; records up to its LSN that linger in the journal after a
    /// crash-before-truncate are skipped on replay by their LSN stamp.
    pub fn write_snapshot(&mut self, state: &[u8]) -> Result<(), StoreError> {
        let covered = self.next_lsn - 1;
        let encoded = snapshot::encode(covered, state);
        self.storage
            .write_atomic(&self.config.snapshot_file, &encoded)?;
        self.storage.sync(&self.config.snapshot_file)?;
        self.stats.fsyncs += 1;
        self.storage
            .truncate(&self.config.journal_file, journal::MAGIC.len() as u64)?;
        self.records_since_snapshot = 0;
        self.stats.snapshots += 1;
        self.stats.last_snapshot_bytes = encoded.len() as u64;
        Ok(())
    }

    /// The LSN the next append will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Operation counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &DurableStoreConfig {
        &self.config
    }

    /// Append a record at an *exact* LSN — the replication path, where
    /// the leader (not this store) owns LSN assignment. Refuses gaps
    /// and replays: the record must be the next one in sequence.
    pub fn append_at(&mut self, lsn: u64, payload: &[u8]) -> Result<(), StoreError> {
        if lsn != self.next_lsn {
            return Err(StoreError::ReplicaGap {
                expected: self.next_lsn,
                got: lsn,
            });
        }
        let record = journal::encode_record(lsn, payload);
        self.storage.append(&self.config.journal_file, &record)?;
        self.storage.sync(&self.config.journal_file)?;
        self.next_lsn += 1;
        self.records_since_snapshot += 1;
        self.stats.appends += 1;
        self.stats.appended_bytes += record.len() as u64;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Install a snapshot shipped from a leader, replacing whatever
    /// this store holds. Unlike [`write_snapshot`](Self::write_snapshot)
    /// the covered LSN comes from the *sender*, and the local position
    /// moves to it unconditionally — including backwards, which is how
    /// a rejoining deposed leader discards a divergent un-acked tail.
    pub fn install_snapshot(&mut self, lsn: u64, state: &[u8]) -> Result<(), StoreError> {
        let encoded = snapshot::encode(lsn, state);
        self.storage
            .write_atomic(&self.config.snapshot_file, &encoded)?;
        self.storage.sync(&self.config.snapshot_file)?;
        self.stats.fsyncs += 1;
        self.storage
            .truncate(&self.config.journal_file, journal::MAGIC.len() as u64)?;
        self.next_lsn = lsn + 1;
        self.records_since_snapshot = 0;
        self.stats.snapshots += 1;
        self.stats.last_snapshot_bytes = encoded.len() as u64;
        Ok(())
    }

    /// Erase this store back to empty (position 0) ahead of a full
    /// resync from a leader that has no snapshot to ship. Ordering
    /// matters for crash consistency: the journal is truncated *first*,
    /// then the snapshot removed — a crash in between leaves an empty
    /// journal over a stale snapshot, which is consistent (stale) state,
    /// never a journal replaying on top of the wrong base.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.storage
            .truncate(&self.config.journal_file, journal::MAGIC.len() as u64)?;
        self.storage.sync(&self.config.journal_file)?;
        self.stats.fsyncs += 1;
        self.storage.remove(&self.config.snapshot_file)?;
        self.next_lsn = 1;
        self.records_since_snapshot = 0;
        Ok(())
    }

    /// Read the current snapshot (covered LSN, payload) without
    /// mutating anything — what a leader ships to a lagging follower.
    pub fn read_snapshot(&mut self) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        match self.storage.read(&self.config.snapshot_file)? {
            None => Ok(None),
            Some(bytes) => Ok(Some(snapshot::decode(&bytes)?)),
        }
    }

    /// Read every journal record with LSN strictly greater than `lsn` —
    /// the suffix a leader ships to catch a follower up.
    pub fn read_records_after(&mut self, lsn: u64) -> Result<Vec<journal::Record>, StoreError> {
        let bytes = self
            .storage
            .read(&self.config.journal_file)?
            .unwrap_or_default();
        let scan = journal::scan(&bytes)?;
        Ok(scan.records.into_iter().filter(|r| r.lsn > lsn).collect())
    }
}

impl<S: Storage> Wal for DurableStore<S> {
    fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        DurableStore::append(self, payload)
    }
    fn should_snapshot(&self) -> bool {
        DurableStore::should_snapshot(self)
    }
    fn write_snapshot(&mut self, state: &[u8]) -> Result<(), StoreError> {
        DurableStore::write_snapshot(self, state)
    }
    fn next_lsn(&self) -> u64 {
        DurableStore::next_lsn(self)
    }
    fn stats(&self) -> &StoreStats {
        DurableStore::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    type Shared = Arc<Mutex<MemStorage>>;

    fn shared(plan: CrashPlan) -> Shared {
        Arc::new(Mutex::new(MemStorage::with_crashes(plan)))
    }

    fn open(s: &Shared, every: u64) -> (DurableStore<Shared>, Recovery) {
        DurableStore::open(s.clone(), DurableStoreConfig::with_snapshot_every(every)).unwrap()
    }

    #[test]
    fn append_reopen_replays_everything() {
        let s = shared(CrashPlan::none());
        let (mut store, rec) = open(&s, u64::MAX);
        assert_eq!(rec.events.len(), 0);
        for i in 0..10u8 {
            assert_eq!(store.append(&[i, i + 1]).unwrap(), u64::from(i) + 1);
        }
        let (_, rec) = open(&s, u64::MAX);
        assert_eq!(rec.snapshot, None);
        assert_eq!(
            rec.events,
            (0..10u8).map(|i| vec![i, i + 1]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn snapshot_absorbs_prefix_and_replay_uses_suffix() {
        let s = shared(CrashPlan::none());
        let (mut store, _) = open(&s, u64::MAX);
        for i in 0..5u8 {
            store.append(&[i]).unwrap();
        }
        store.write_snapshot(b"state@5").unwrap();
        store.append(&[100]).unwrap();
        store.append(&[101]).unwrap();
        let (store2, rec) = open(&s, u64::MAX);
        assert_eq!(rec.snapshot.as_deref(), Some(b"state@5".as_slice()));
        assert_eq!(rec.snapshot_lsn, 5);
        assert_eq!(rec.events, vec![vec![100], vec![101]]);
        // LSNs keep counting across the compaction.
        assert_eq!(store2.next_lsn(), 8);
    }

    #[test]
    fn cadence_drives_should_snapshot() {
        let s = shared(CrashPlan::none());
        let (mut store, _) = open(&s, 3);
        assert!(!store.should_snapshot());
        store.append(b"a").unwrap();
        store.append(b"b").unwrap();
        assert!(!store.should_snapshot());
        store.append(b"c").unwrap();
        assert!(store.should_snapshot());
        store.write_snapshot(b"abc").unwrap();
        assert!(!store.should_snapshot());
    }

    #[test]
    fn torn_append_is_truncated_and_store_continues() {
        // Ops: 0 = magic append, 1 = magic sync is NOT a mutating op...
        // sync is not counted; op 1 = first record append.
        let s = shared(CrashPlan::at_op(2, CrashKind::Torn));
        let (mut store, _) = open(&s, u64::MAX);
        store.append(b"survives").unwrap(); // op 1
        let err = store.append(b"torn away").unwrap_err(); // op 2
        assert!(matches!(err, StoreError::Crashed { .. }));
        s.lock().unwrap().revive();
        let (mut store, rec) = open(&s, u64::MAX);
        assert_eq!(rec.events, vec![b"survives".to_vec()]);
        assert!(rec.truncated_tail_bytes > 0);
        // The journal is clean again: appends pick up at the next LSN.
        assert_eq!(store.append(b"after recovery").unwrap(), 2);
        let (_, rec) = open(&s, u64::MAX);
        assert_eq!(
            rec.events,
            vec![b"survives".to_vec(), b"after recovery".to_vec()]
        );
    }

    #[test]
    fn after_write_crash_preserves_the_record() {
        let s = shared(CrashPlan::at_op(2, CrashKind::AfterWrite));
        let (mut store, _) = open(&s, u64::MAX);
        store.append(b"first").unwrap();
        assert!(store.append(b"acked-by-medium").is_err());
        s.lock().unwrap().revive();
        let (_, rec) = open(&s, u64::MAX);
        // The "journaled but never acked" record IS recovered.
        assert_eq!(
            rec.events,
            vec![b"first".to_vec(), b"acked-by-medium".to_vec()]
        );
        assert_eq!(rec.truncated_tail_bytes, 0);
    }

    #[test]
    fn crash_between_snapshot_and_truncate_skips_absorbed_records() {
        // Ops: 0 magic, 1..=3 appends, 4 snapshot write_atomic,
        // 5 journal truncate — crash there, before it applies.
        let s = shared(CrashPlan::at_op(5, CrashKind::Torn));
        let (mut store, _) = open(&s, u64::MAX);
        for p in [b"a".as_slice(), b"b", b"c"] {
            store.append(p).unwrap();
        }
        assert!(store.write_snapshot(b"state@3").is_err());
        s.lock().unwrap().revive();
        let (_, rec) = open(&s, u64::MAX);
        // Snapshot landed; the journal still holds records 1..=3 but
        // their LSNs are covered, so replay is empty.
        assert_eq!(rec.snapshot.as_deref(), Some(b"state@3".as_slice()));
        assert_eq!(rec.snapshot_lsn, 3);
        assert_eq!(rec.events, Vec::<Vec<u8>>::new());
    }

    #[test]
    fn bit_flip_in_mid_journal_is_refused_as_corruption() {
        let s = shared(CrashPlan::none());
        let (mut store, _) = open(&s, u64::MAX);
        store.append(b"one").unwrap();
        store.append(b"two").unwrap();
        // Flip a payload bit of the first record (offset: 8 magic + 20
        // header+lsn puts us in its payload).
        s.lock().unwrap().flip_bit("journal.wal", 8 + 20 + 1, 3);
        let err = DurableStore::open(s.clone(), DurableStoreConfig::default()).unwrap_err();
        assert!(matches!(err, StoreError::CorruptJournal { .. }));
    }

    #[test]
    fn stats_count_appends_fsyncs_snapshots() {
        let s = shared(CrashPlan::none());
        let (mut store, _) = open(&s, u64::MAX);
        store.append(b"abc").unwrap();
        store.append(b"defg").unwrap();
        store.write_snapshot(b"state").unwrap();
        let st = store.stats();
        assert_eq!(st.appends, 2);
        assert_eq!(st.fsyncs, 3); // 2 appends + 1 snapshot
        assert_eq!(st.snapshots, 1);
        assert!(st.appended_bytes > 7);
        assert!(st.last_snapshot_bytes > 5);
    }

    #[test]
    fn fs_backend_end_to_end() {
        let root = std::env::temp_dir().join(format!("sq-store-ds-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        {
            let fs = FsStorage::open(&root).unwrap();
            let (mut store, _) =
                DurableStore::open(fs, DurableStoreConfig::with_snapshot_every(2)).unwrap();
            store.append(b"one").unwrap();
            store.append(b"two").unwrap();
            assert!(store.should_snapshot());
            store.write_snapshot(b"state@2").unwrap();
            store.append(b"three").unwrap();
        }
        let fs = FsStorage::open(&root).unwrap();
        let (_, rec) = DurableStore::open(fs, DurableStoreConfig::default()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(b"state@2".as_slice()));
        assert_eq!(rec.events, vec![b"three".to_vec()]);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
