//! A minimal little-endian byte codec for journal payloads and
//! snapshots.
//!
//! Deliberately tiny and schema-free: callers write a fixed field order
//! and read it back in the same order. Strings and byte blobs are
//! `u32`-length-prefixed. Every decode is bounds-checked and returns
//! [`CodecError`] instead of panicking — a corrupted record must surface
//! as an error the recovery path can classify, never as a crash.

use std::fmt;

/// A malformed buffer was decoded (truncated field, bad UTF-8, oversized
/// length prefix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What was being decoded.
    pub what: &'static str,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed {} at byte {}", self.what, self.offset)
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder.
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the encoder, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed byte blob.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(u32::try_from(v.len()).expect("blob fits in u32"));
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True iff every byte was consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError {
                what,
                offset: self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len, "bytes")
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let offset = self.pos;
        let raw = self.bytes()?;
        std::str::from_utf8(raw).map_err(|_| CodecError {
            what: "utf-8 string",
            offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_kinds() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 3);
        e.put_str("héllo, wörld");
        e.put_bytes(&[0, 1, 2, 255]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.str().unwrap(), "héllo, wörld");
        assert_eq!(d.bytes().unwrap(), &[0, 1, 2, 255]);
        assert!(d.is_empty());
    }

    #[test]
    fn truncated_buffers_error_instead_of_panicking() {
        let mut e = Encoder::new();
        e.put_str("a long enough string");
        let buf = e.finish();
        for cut in 0..buf.len() {
            let mut d = Decoder::new(&buf[..cut]);
            assert!(d.str().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        // A length prefix claiming more bytes than the buffer holds.
        let mut e = Encoder::new();
        e.put_u32(1_000_000);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        let err = d.bytes().unwrap_err();
        assert_eq!(err.what, "bytes");
    }

    #[test]
    fn bad_utf8_is_a_codec_error() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xFF, 0xFE]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.str().unwrap_err().what, "utf-8 string");
    }
}
