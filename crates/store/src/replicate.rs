//! WAL-shipping replication: a [`Leader`] streams journal records to N
//! [`Follower`] replicas over the [`Storage`] abstraction.
//!
//! ## Wire format
//!
//! Records travel in [`ShipBatch`] frames:
//!
//! ```text
//! "SQSHIP1\n"            8-byte magic
//! [u64 epoch]            the shipping leader's fencing epoch
//! [u64 first_lsn]        LSN of the first record in the batch
//! [u32 count]            number of records
//! [u32 body_len]         bytes of body
//! [u32 crc]              CRC-32 over epoch ‖ first_lsn ‖ count ‖ body
//! body                   `count` journal-encoded records, contiguous LSNs
//! ```
//!
//! The outer CRC plus the per-record journal checksums mean any bit
//! flip or truncation anywhere in a frame is refused as
//! [`StoreError::CorruptShip`] before a single byte reaches the
//! follower's journal.
//!
//! ## Epoch fencing
//!
//! Every frame carries the leader's **epoch**, persisted in a small
//! atomic meta file next to the journal. Promotion bumps the epoch and
//! persists it *before* the new leader accepts work; a replica that has
//! adopted epoch E+1 answers any epoch-E frame with
//! [`StoreError::Fenced`], which deposes the stale leader (it marks
//! itself fenced and refuses all further appends). That is what makes
//! failover double-commit-free: the old leader can never ack work the
//! new timeline does not contain. Epoch *adoption* (batch epoch greater
//! than ours) is only legal when the batch extends our journal exactly;
//! otherwise the follower demands a resync, because a tail written
//! under a deposed epoch can diverge from the new leader's log and must
//! be discarded, never merged.
//!
//! ## Ack modes and graceful degradation
//!
//! Shipping is synchronous within [`Wal::append`]: local journal first
//! (write-ahead), then every live link. [`AckMode::Quorum`] counts the
//! leader plus followers as voters and records whether each append was
//! journaled on a majority before the caller was acked; when links are
//! down the append still succeeds — the guarantee degrades *visibly*
//! (`degraded_acks`, [`ReplicationStatus::Degraded`]) rather than
//! blocking the queue, matching the paper's always-on service bias.
//! [`AckMode::Async`] is explicit best-effort. Reconnect *scheduling*
//! (attempt caps, capped backoff) lives one layer up in
//! `core::failover`, which owns a `RetryPolicy`; this module only
//! exposes the mechanical [`Leader::reconnect`].

use crate::checksum::Crc32;
use crate::journal;
use crate::storage::{Storage, StoreError};
use crate::{DurableStore, DurableStoreConfig, Recovery};

/// Ship-frame magic: identifies the format and its version.
pub const SHIP_MAGIC: &[u8; 8] = b"SQSHIP1\n";

/// Replica meta-file magic (persisted epoch).
pub const META_MAGIC: &[u8; 8] = b"SQMETA1\n";

/// When does an append count as acknowledged?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Best-effort: the local journal alone acks; shipping failures
    /// only mark links down.
    Async,
    /// The append should be journaled on a majority of (leader +
    /// followers) before ack; shortfalls are recorded as
    /// `degraded_acks` and surface in [`ReplicationStatus::Degraded`]
    /// instead of blocking.
    Quorum,
}

/// Tuning for a [`Leader`] and its [`Follower`] links.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Acknowledgement discipline.
    pub ack_mode: AckMode,
    /// A link whose durable LSN trails the leader by more than this
    /// counts as *lagging* in [`ReplicationStatus::Degraded`].
    pub max_lag: u64,
    /// Resync suffixes are shipped in chunks of at most this many
    /// records per frame.
    pub batch_max_records: usize,
    /// Name of the epoch meta file within the backend.
    pub meta_file: String,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            ack_mode: AckMode::Quorum,
            max_lag: 64,
            batch_max_records: 32,
            meta_file: "replica.meta".to_string(),
        }
    }
}

impl ReplicationConfig {
    /// Defaults with an explicit ack mode.
    pub fn with_ack_mode(ack_mode: AckMode) -> Self {
        ReplicationConfig {
            ack_mode,
            ..Self::default()
        }
    }
}

fn encode_meta(epoch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(META_MAGIC.len() + 12);
    out.extend_from_slice(META_MAGIC);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&crate::checksum::crc32(&epoch.to_le_bytes()).to_le_bytes());
    out
}

fn decode_meta(bytes: &[u8]) -> Result<u64, StoreError> {
    let corrupt = |detail: &str| StoreError::CorruptSnapshot {
        detail: format!("replica meta: {detail}"),
    };
    if bytes.len() != META_MAGIC.len() + 12 {
        return Err(corrupt("wrong length"));
    }
    if &bytes[..META_MAGIC.len()] != META_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let epoch_bytes: [u8; 8] = bytes[8..16].try_into().expect("8 bytes");
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if crate::checksum::crc32(&epoch_bytes) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(u64::from_le_bytes(epoch_bytes))
}

/// One replication frame: a contiguous run of journal records stamped
/// with the shipping leader's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipBatch {
    /// The shipping leader's fencing epoch.
    pub epoch: u64,
    /// LSN of the first record (records are contiguous from here).
    pub first_lsn: u64,
    /// The records, in LSN order.
    pub records: Vec<journal::Record>,
}

impl ShipBatch {
    /// Frame a contiguous run of records (empty batches are legal and
    /// decode back to empty).
    pub fn new(epoch: u64, records: Vec<journal::Record>) -> Self {
        let first_lsn = records.first().map(|r| r.lsn).unwrap_or(0);
        ShipBatch {
            epoch,
            first_lsn,
            records,
        }
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        for r in &self.records {
            body.extend_from_slice(&journal::encode_record(r.lsn, &r.payload));
        }
        let count = u32::try_from(self.records.len()).expect("batch count fits in u32");
        let body_len = u32::try_from(body.len()).expect("batch body fits in u32");
        let mut crc = Crc32::new();
        crc.update(&self.epoch.to_le_bytes());
        crc.update(&self.first_lsn.to_le_bytes());
        crc.update(&count.to_le_bytes());
        crc.update(&body);
        let mut out = Vec::with_capacity(SHIP_MAGIC.len() + 28 + body.len());
        out.extend_from_slice(SHIP_MAGIC);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.first_lsn.to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        out.extend_from_slice(&body_len.to_le_bytes());
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parse and fully validate wire bytes. Any truncation, bit flip,
    /// count mismatch, or LSN discontinuity is [`StoreError::CorruptShip`]:
    /// a frame either arrives exactly as framed or is refused whole.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let corrupt = |detail: &str| StoreError::CorruptShip {
            detail: detail.to_string(),
        };
        const HEAD: usize = 8 + 8 + 8 + 4 + 4 + 4;
        if bytes.len() < HEAD {
            return Err(corrupt("short header"));
        }
        if &bytes[..SHIP_MAGIC.len()] != SHIP_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let epoch = u64_at(8);
        let first_lsn = u64_at(16);
        let count = u32_at(24) as usize;
        let body_len = u32_at(28) as usize;
        let crc = u32_at(32);
        let body = &bytes[HEAD..];
        if body.len() != body_len {
            return Err(corrupt("body length mismatch"));
        }
        let mut check = Crc32::new();
        check.update(&epoch.to_le_bytes());
        check.update(&first_lsn.to_le_bytes());
        check.update(&(count as u32).to_le_bytes());
        check.update(body);
        if check.finish() != crc {
            return Err(corrupt("frame checksum mismatch"));
        }
        // The body is journal framing without the file magic; re-frame
        // it and reuse the hardened journal scanner. A "torn tail" in a
        // fully-delivered frame is damage, not a crash artifact.
        let mut framed = journal::MAGIC.to_vec();
        framed.extend_from_slice(body);
        let scan = match journal::scan(&framed) {
            Ok(scan) => scan,
            Err(StoreError::CorruptJournal { detail, .. }) => {
                return Err(corrupt(&format!("record: {detail}")))
            }
            Err(e) => return Err(e),
        };
        if scan.torn_bytes > 0 {
            return Err(corrupt("torn record framing"));
        }
        if scan.records.len() != count {
            return Err(corrupt("record count mismatch"));
        }
        for (i, r) in scan.records.iter().enumerate() {
            if r.lsn != first_lsn + i as u64 {
                return Err(corrupt("non-contiguous lsns"));
            }
        }
        Ok(ShipBatch {
            epoch,
            first_lsn,
            records: scan.records,
        })
    }
}

/// A replica: a [`DurableStore`] that accepts shipped frames instead of
/// assigning its own LSNs, plus the persisted fencing epoch.
#[derive(Debug)]
pub struct Follower<S: Storage> {
    store: DurableStore<S>,
    epoch: u64,
    meta_file: String,
}

impl<S: Storage> Follower<S> {
    /// Open (or create) a replica over `storage`, recovering whatever
    /// the medium holds — including truncating a torn tail left by a
    /// crash mid-ship.
    pub fn open(
        storage: S,
        store_config: DurableStoreConfig,
        replication: &ReplicationConfig,
    ) -> Result<(Self, Recovery), StoreError> {
        let (mut store, recovery) = DurableStore::open(storage, store_config)?;
        let epoch = match store.storage.read(&replication.meta_file)? {
            None => 0,
            Some(bytes) => decode_meta(&bytes)?,
        };
        Ok((
            Follower {
                store,
                epoch,
                meta_file: replication.meta_file.clone(),
            },
            recovery,
        ))
    }

    /// The persisted fencing epoch (0 = never led or followed anyone).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Highest LSN durably journaled here.
    pub fn durable_lsn(&self) -> u64 {
        self.store.next_lsn() - 1
    }

    /// The underlying store (read-only).
    pub fn store(&self) -> &DurableStore<S> {
        &self.store
    }

    fn persist_epoch(&mut self, epoch: u64) -> Result<(), StoreError> {
        let bytes = encode_meta(epoch);
        self.store.storage.write_atomic(&self.meta_file, &bytes)?;
        self.store.storage.sync(&self.meta_file)?;
        self.epoch = epoch;
        Ok(())
    }

    /// The fence lives on the *medium*, not in this handle: a promotion
    /// may have gone through another handle over the same storage (the
    /// deposed-leader-still-holds-a-link case), so every receive path
    /// re-reads the persisted epoch before judging the sender's.
    fn refresh_epoch(&mut self) -> Result<(), StoreError> {
        if let Some(bytes) = self.store.storage.read(&self.meta_file)? {
            self.epoch = self.epoch.max(decode_meta(&bytes)?);
        }
        Ok(())
    }

    /// Decode and apply one wire frame; returns the new durable LSN.
    pub fn append_encoded(&mut self, bytes: &[u8]) -> Result<u64, StoreError> {
        let batch = ShipBatch::decode(bytes)?;
        self.append_batch(&batch)
    }

    /// Apply one frame. Stale epochs are [`StoreError::Fenced`]; newer
    /// epochs are adopted only when the frame extends our journal
    /// exactly (anything else needs a leader-driven resync); re-shipped
    /// records at or below our durable LSN are skipped idempotently.
    pub fn append_batch(&mut self, batch: &ShipBatch) -> Result<u64, StoreError> {
        self.refresh_epoch()?;
        if batch.epoch < self.epoch {
            return Err(StoreError::Fenced {
                ours: self.epoch,
                theirs: batch.epoch,
            });
        }
        let durable = self.durable_lsn();
        if batch.epoch > self.epoch {
            if !batch.records.is_empty() && batch.first_lsn != durable + 1 {
                // Our tail was written under a deposed epoch and may
                // diverge; refuse to graft the new timeline onto it.
                return Err(StoreError::ReplicaGap {
                    expected: durable + 1,
                    got: batch.first_lsn,
                });
            }
            self.persist_epoch(batch.epoch)?;
        }
        let mut applied = self.durable_lsn();
        for r in &batch.records {
            if r.lsn <= applied {
                continue;
            }
            self.store.append_at(r.lsn, &r.payload)?;
            applied = r.lsn;
        }
        Ok(applied)
    }

    /// Install a leader-shipped snapshot, replacing local state (the
    /// catch-up path when the suffix we miss was already compacted, and
    /// the rebase path for a rejoining deposed leader).
    pub fn install_snapshot(
        &mut self,
        epoch: u64,
        lsn: u64,
        state: &[u8],
    ) -> Result<(), StoreError> {
        self.refresh_epoch()?;
        if epoch < self.epoch {
            return Err(StoreError::Fenced {
                ours: self.epoch,
                theirs: epoch,
            });
        }
        if epoch > self.epoch {
            self.persist_epoch(epoch)?;
        }
        self.store.install_snapshot(lsn, state)
    }

    /// Erase local state and adopt `epoch`, ahead of a full resync from
    /// a leader with no snapshot to ship.
    pub(crate) fn reset_to_epoch(&mut self, epoch: u64) -> Result<(), StoreError> {
        self.refresh_epoch()?;
        if epoch < self.epoch {
            return Err(StoreError::Fenced {
                ours: self.epoch,
                theirs: epoch,
            });
        }
        self.store.reset()?;
        if epoch > self.epoch {
            self.persist_epoch(epoch)?;
        }
        Ok(())
    }

    /// Claim leadership at exactly `epoch` (must exceed ours), persisting
    /// it *before* returning — the fence is durable before the new
    /// leader accepts any work. The coordinator (`core::failover`)
    /// passes max-known-epoch + 1 so successive leaders never collide.
    pub fn promote_to(&mut self, epoch: u64) -> Result<u64, StoreError> {
        self.refresh_epoch()?;
        if epoch <= self.epoch {
            return Err(StoreError::Fenced {
                ours: self.epoch,
                theirs: epoch,
            });
        }
        self.persist_epoch(epoch)?;
        Ok(epoch)
    }

    /// Claim leadership at our epoch + 1 (single-coordinator shortcut).
    pub fn promote(&mut self) -> Result<u64, StoreError> {
        self.promote_to(self.epoch + 1)
    }

    /// Surrender the handle, keeping the medium (to reopen as a
    /// [`Leader`] after promotion).
    pub fn into_storage(self) -> S {
        self.store.storage
    }
}

/// Per-link snapshot for status and observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkState {
    /// True when the link is down (follower unreachable since the last
    /// failed ship; [`Leader::reconnect`] revives it).
    pub down: bool,
    /// Highest LSN known durable on the follower.
    pub durable_lsn: u64,
    /// LSN delta behind the leader.
    pub lag: u64,
}

/// Replication health, coarsest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationStatus {
    /// Every link up and within `max_lag`.
    Healthy,
    /// Serving, but the durability guarantee is weaker than configured.
    Degraded {
        /// Links currently down.
        down: usize,
        /// Links (up or down) trailing by more than `max_lag`.
        lagging: usize,
        /// Whether live replicas still form a majority of voters.
        quorum_ok: bool,
    },
    /// A newer epoch exists: this leader is deposed and refuses all
    /// appends until it rejoins as a follower.
    Fenced {
        /// Our (stale) epoch.
        epoch: u64,
        /// The newer epoch that refused us.
        newer: u64,
    },
}

/// Shipping and failover counters (plain integers; exported into
/// `sq-obs` by `core::failover`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Frames shipped successfully (appends and resync chunks).
    pub ships: u64,
    /// Records shipped successfully.
    pub shipped_records: u64,
    /// Wire bytes shipped successfully.
    pub shipped_bytes: u64,
    /// Appends journaled on a majority before ack (Quorum mode).
    pub acked_quorum: u64,
    /// Appends acked *without* a majority (Quorum mode only).
    pub degraded_acks: u64,
    /// Ship failures that marked a link down.
    pub link_drops: u64,
    /// Times a follower refused us with a newer epoch.
    pub fence_refusals: u64,
    /// Resyncs performed (attach and reconnect).
    pub resyncs: u64,
    /// Snapshots installed on followers during resync or compaction.
    pub snapshots_installed: u64,
    /// Successful reconnects of a down link.
    pub reconnects: u64,
    /// Torn-tail bytes truncated while opening followers (crash
    /// residue on replica media, repaired during resync).
    pub follower_truncated_bytes: u64,
}

/// Per-frame samples for observability histograms, drained by the
/// service layer via [`Leader::take_ship_samples`]. `batch_records` and
/// `batch_bytes` are deterministic functions of the operation sequence;
/// `ack_micros` (wall-clock append-to-ack latency) is the only
/// non-deterministic series — byte-stable exports must omit it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShipSamples {
    /// Records per successfully shipped frame. `u64` so no batch size
    /// is ever clamped: an earlier revision narrowed to `u32` with a
    /// silent `min(u32::MAX)`, which would misreport exactly the
    /// oversized batches worth alarming on.
    pub batch_records: Vec<u64>,
    /// Wire bytes per successfully shipped frame (unclamped, as above).
    pub batch_bytes: Vec<u64>,
    /// Wall-clock append-to-ack latency per append, microseconds.
    pub ack_micros: Vec<u64>,
}

/// Retain at most this many samples between drains (drop beyond: the
/// histograms these feed are about shape, not census).
const SAMPLE_CAP: usize = 65_536;

impl ShipSamples {
    fn push_frame(&mut self, records: usize, bytes: usize) {
        if self.batch_records.len() < SAMPLE_CAP {
            self.batch_records.push(records as u64);
            self.batch_bytes.push(bytes as u64);
        }
    }

    fn push_ack(&mut self, micros: u64) {
        if self.ack_micros.len() < SAMPLE_CAP {
            self.ack_micros.push(micros);
        }
    }
}

#[derive(Debug)]
struct Link<S: Storage> {
    storage: S,
    store_config: DurableStoreConfig,
    follower: Option<Follower<S>>,
    last_durable: u64,
}

/// A [`DurableStore`] that ships every append to its followers.
///
/// `S: Clone` must alias the same medium (true of [`FsStorage`]
/// (shared root) and `Arc<Mutex<MemStorage>>`): the leader keeps a
/// clone per link so a down follower can be reopened over its
/// surviving medium.
///
/// [`FsStorage`]: crate::FsStorage
#[derive(Debug)]
pub struct Leader<S: Storage + Clone> {
    local: DurableStore<S>,
    epoch: u64,
    config: ReplicationConfig,
    links: Vec<Link<S>>,
    stats: ReplicationStats,
    samples: ShipSamples,
    fenced: Option<(u64, u64)>,
}

impl<S: Storage + Clone> Leader<S> {
    /// Open (or create) a leader with no links yet. A fresh medium
    /// starts at epoch 1; a promoted or recovering one resumes the
    /// epoch persisted in its meta file.
    pub fn open(
        storage: S,
        store_config: DurableStoreConfig,
        config: ReplicationConfig,
    ) -> Result<(Self, Recovery), StoreError> {
        let (mut local, recovery) = DurableStore::open(storage, store_config)?;
        let epoch = match local.storage.read(&config.meta_file)? {
            Some(bytes) => decode_meta(&bytes)?,
            None => {
                let bytes = encode_meta(1);
                local.storage.write_atomic(&config.meta_file, &bytes)?;
                local.storage.sync(&config.meta_file)?;
                1
            }
        };
        Ok((
            Leader {
                local,
                epoch,
                config,
                links: Vec::new(),
                stats: ReplicationStats::default(),
                samples: ShipSamples::default(),
                fenced: None,
            },
            recovery,
        ))
    }

    /// Our fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The local store (read-only).
    pub fn local(&self) -> &DurableStore<S> {
        &self.local
    }

    /// Replication configuration.
    pub fn config(&self) -> &ReplicationConfig {
        &self.config
    }

    /// Shipping and failover counters.
    pub fn replication_stats(&self) -> &ReplicationStats {
        &self.stats
    }

    /// Drain the per-frame observability samples accumulated since the
    /// last drain.
    pub fn take_ship_samples(&mut self) -> ShipSamples {
        std::mem::take(&mut self.samples)
    }

    /// Number of links (up or down).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Highest LSN durably journaled locally.
    pub fn durable_lsn(&self) -> u64 {
        self.local.next_lsn() - 1
    }

    /// Per-link health and lag, in attach order.
    pub fn link_states(&self) -> Vec<LinkState> {
        let durable = self.durable_lsn();
        self.links
            .iter()
            .map(|l| LinkState {
                down: l.follower.is_none(),
                durable_lsn: l.last_durable,
                lag: durable.saturating_sub(l.last_durable),
            })
            .collect()
    }

    /// Attach a follower over `storage` and synchronize it to our
    /// state, whatever the medium holds — fresh, lagging, or a deposed
    /// leader's divergent history. Returns the link index.
    pub fn attach_follower(
        &mut self,
        storage: S,
        store_config: DurableStoreConfig,
    ) -> Result<usize, StoreError> {
        let (mut follower, recovery) =
            Follower::open(storage.clone(), store_config.clone(), &self.config)?;
        self.stats.follower_truncated_bytes += recovery.truncated_tail_bytes;
        let durable = resync(
            &mut self.local,
            self.epoch,
            &self.config,
            &mut self.stats,
            &mut self.samples,
            &mut follower,
        )?;
        self.links.push(Link {
            storage,
            store_config,
            follower: Some(follower),
            last_durable: durable,
        });
        Ok(self.links.len() - 1)
    }

    /// Reopen a down link over its surviving medium and resync it.
    /// Scheduling (attempt caps, backoff) is the caller's job; each
    /// call is one attempt and errors if the medium is still dead.
    pub fn reconnect(&mut self, idx: usize) -> Result<(), StoreError> {
        let link = &mut self.links[idx];
        let (mut follower, recovery) = Follower::open(
            link.storage.clone(),
            link.store_config.clone(),
            &self.config,
        )?;
        self.stats.follower_truncated_bytes += recovery.truncated_tail_bytes;
        let durable = resync(
            &mut self.local,
            self.epoch,
            &self.config,
            &mut self.stats,
            &mut self.samples,
            &mut follower,
        )?;
        let link = &mut self.links[idx];
        link.follower = Some(follower);
        link.last_durable = durable;
        self.stats.reconnects += 1;
        Ok(())
    }

    /// Current replication health.
    pub fn status(&self) -> ReplicationStatus {
        if let Some((epoch, newer)) = self.fenced {
            return ReplicationStatus::Fenced { epoch, newer };
        }
        let durable = self.durable_lsn();
        let mut down = 0usize;
        let mut lagging = 0usize;
        let mut live = 1usize; // the leader votes for itself
        for link in &self.links {
            if link.follower.is_none() {
                down += 1;
            } else {
                live += 1;
            }
            if durable.saturating_sub(link.last_durable) > self.config.max_lag {
                lagging += 1;
            }
        }
        if down == 0 && lagging == 0 {
            ReplicationStatus::Healthy
        } else {
            let voters = 1 + self.links.len();
            ReplicationStatus::Degraded {
                down,
                lagging,
                quorum_ok: live > voters / 2,
            }
        }
    }

    fn ship_to_links(&mut self, lsn: u64, payload: &[u8]) -> Result<(), StoreError> {
        let batch = ShipBatch::new(
            self.epoch,
            vec![journal::Record {
                lsn,
                payload: payload.to_vec(),
            }],
        );
        let bytes = batch.encode();
        let mut acked = 1usize; // local journal already holds it
        for link in &mut self.links {
            let Some(follower) = link.follower.as_mut() else {
                continue;
            };
            match follower.append_encoded(&bytes) {
                Ok(durable) => {
                    link.last_durable = durable;
                    acked += 1;
                    self.stats.ships += 1;
                    self.stats.shipped_records += 1;
                    self.stats.shipped_bytes += bytes.len() as u64;
                    self.samples.push_frame(1, bytes.len());
                }
                Err(StoreError::Fenced { ours, theirs }) => {
                    // `ours` is the follower's (newer) epoch: we are
                    // the stale party. Depose ourselves durably-enough
                    // (in memory; our epoch on disk is already stale)
                    // and refuse this and every future append.
                    self.stats.fence_refusals += 1;
                    self.fenced = Some((theirs, ours));
                    link.follower = None;
                    return Err(StoreError::Fenced { ours, theirs });
                }
                Err(_) => {
                    link.follower = None;
                    self.stats.link_drops += 1;
                }
            }
        }
        if self.config.ack_mode == AckMode::Quorum {
            let voters = 1 + self.links.len();
            if acked > voters / 2 {
                self.stats.acked_quorum += 1;
            } else {
                self.stats.degraded_acks += 1;
            }
        }
        Ok(())
    }
}

/// Bring one follower to the leader's exact state. Same epoch and a
/// journal within ours: ship the missing suffix. Anything else — a
/// different epoch (its tail cannot be trusted) or a journal whose
/// suffix we already compacted — rebase it on our snapshot (or erase it
/// when we have none) and ship everything after, chunked.
fn resync<S: Storage>(
    local: &mut DurableStore<S>,
    epoch: u64,
    config: &ReplicationConfig,
    stats: &mut ReplicationStats,
    samples: &mut ShipSamples,
    follower: &mut Follower<S>,
) -> Result<u64, StoreError> {
    if follower.epoch() > epoch {
        return Err(StoreError::Fenced {
            ours: follower.epoch(),
            theirs: epoch,
        });
    }
    let leader_durable = local.next_lsn() - 1;
    let snapshot = local.read_snapshot()?;
    let snapshot_lsn = snapshot.as_ref().map(|(lsn, _)| *lsn).unwrap_or(0);
    let same_stream = follower.epoch() == epoch && follower.durable_lsn() <= leader_durable;
    let from = if same_stream && follower.durable_lsn() >= snapshot_lsn {
        follower.durable_lsn()
    } else if let Some((lsn, state)) = snapshot {
        follower.install_snapshot(epoch, lsn, &state)?;
        stats.snapshots_installed += 1;
        lsn
    } else {
        follower.reset_to_epoch(epoch)?;
        0
    };
    let records = local.read_records_after(from)?;
    for chunk in records.chunks(config.batch_max_records.max(1)) {
        let batch = ShipBatch::new(epoch, chunk.to_vec());
        let bytes = batch.encode();
        follower.append_encoded(&bytes)?;
        stats.ships += 1;
        stats.shipped_records += chunk.len() as u64;
        stats.shipped_bytes += bytes.len() as u64;
        samples.push_frame(chunk.len(), bytes.len());
    }
    stats.resyncs += 1;
    Ok(follower.durable_lsn())
}

impl<S: Storage + Clone> crate::Wal for Leader<S> {
    /// Write-ahead locally, then ship to every live link. A fenced
    /// leader refuses outright; a local journal failure is fatal as for
    /// [`DurableStore`]; link failures degrade, they never fail the
    /// append — except a fence, which deposes us.
    fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        if let Some((epoch, newer)) = self.fenced {
            return Err(StoreError::Fenced {
                ours: newer,
                theirs: epoch,
            });
        }
        let started = std::time::Instant::now();
        let lsn = self.local.append(payload)?;
        self.ship_to_links(lsn, payload)?;
        self.samples
            .push_ack(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        Ok(lsn)
    }

    fn should_snapshot(&self) -> bool {
        self.local.should_snapshot()
    }

    /// Snapshot locally, then install it on every live follower so
    /// their journals compact in step with ours.
    fn write_snapshot(&mut self, state: &[u8]) -> Result<(), StoreError> {
        if let Some((epoch, newer)) = self.fenced {
            return Err(StoreError::Fenced {
                ours: newer,
                theirs: epoch,
            });
        }
        let covered = self.local.next_lsn() - 1;
        self.local.write_snapshot(state)?;
        for link in &mut self.links {
            let Some(follower) = link.follower.as_mut() else {
                continue;
            };
            match follower.install_snapshot(self.epoch, covered, state) {
                Ok(()) => self.stats.snapshots_installed += 1,
                Err(StoreError::Fenced { ours, theirs }) => {
                    self.stats.fence_refusals += 1;
                    self.fenced = Some((theirs, ours));
                    link.follower = None;
                    return Err(StoreError::Fenced { ours, theirs });
                }
                Err(_) => {
                    link.follower = None;
                    self.stats.link_drops += 1;
                }
            }
        }
        Ok(())
    }

    fn next_lsn(&self) -> u64 {
        self.local.next_lsn()
    }

    fn stats(&self) -> &crate::StoreStats {
        self.local.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{CrashKind, CrashPlan};
    use crate::{MemStorage, Wal};
    use std::sync::{Arc, Mutex};

    type Shared = Arc<Mutex<MemStorage>>;

    fn shared() -> Shared {
        Arc::new(Mutex::new(MemStorage::new()))
    }

    fn cfg(every: u64) -> DurableStoreConfig {
        DurableStoreConfig::with_snapshot_every(every)
    }

    fn leader(s: &Shared, every: u64, mode: AckMode) -> Leader<Shared> {
        Leader::open(
            s.clone(),
            cfg(every),
            ReplicationConfig::with_ack_mode(mode),
        )
        .unwrap()
        .0
    }

    fn replay_payloads(s: &Shared) -> Vec<Vec<u8>> {
        let (_, rec) = DurableStore::open(s.clone(), cfg(u64::MAX)).unwrap();
        rec.events
    }

    #[test]
    fn meta_round_trip_and_corruption_refused() {
        let bytes = encode_meta(42);
        assert_eq!(decode_meta(&bytes).unwrap(), 42);
        for byte in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[byte] ^= 1;
            assert!(decode_meta(&damaged).is_err(), "flip at {byte} undetected");
        }
        assert!(decode_meta(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn ship_batch_round_trip() {
        let records = vec![
            journal::Record {
                lsn: 7,
                payload: b"seven".to_vec(),
            },
            journal::Record {
                lsn: 8,
                payload: Vec::new(),
            },
            journal::Record {
                lsn: 9,
                payload: b"nine".to_vec(),
            },
        ];
        let batch = ShipBatch::new(3, records);
        assert_eq!(batch.first_lsn, 7);
        let decoded = ShipBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded, batch);
        // Empty batches are legal.
        let empty = ShipBatch::new(1, Vec::new());
        assert_eq!(ShipBatch::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn every_bit_flip_and_truncation_of_a_frame_is_refused() {
        let batch = ShipBatch::new(
            2,
            vec![
                journal::Record {
                    lsn: 1,
                    payload: b"alpha".to_vec(),
                },
                journal::Record {
                    lsn: 2,
                    payload: b"beta".to_vec(),
                },
            ],
        );
        let bytes = batch.encode();
        for byte in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[byte] ^= 1;
            assert!(
                matches!(
                    ShipBatch::decode(&damaged),
                    Err(StoreError::CorruptShip { .. })
                ),
                "flip at byte {byte} went undetected"
            );
        }
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    ShipBatch::decode(&bytes[..cut]),
                    Err(StoreError::CorruptShip { .. })
                ),
                "truncation to {cut} went undetected"
            );
        }
    }

    #[test]
    fn non_contiguous_lsns_are_refused() {
        let batch = ShipBatch::new(
            1,
            vec![
                journal::Record {
                    lsn: 1,
                    payload: b"a".to_vec(),
                },
                journal::Record {
                    lsn: 3,
                    payload: b"skip".to_vec(),
                },
            ],
        );
        assert!(matches!(
            ShipBatch::decode(&batch.encode()),
            Err(StoreError::CorruptShip { .. })
        ));
    }

    #[test]
    fn leader_ships_every_append_to_all_followers() {
        let (ls, f1, f2) = (shared(), shared(), shared());
        let mut leader = leader(&ls, u64::MAX, AckMode::Quorum);
        leader.attach_follower(f1.clone(), cfg(u64::MAX)).unwrap();
        leader.attach_follower(f2.clone(), cfg(u64::MAX)).unwrap();
        for i in 0..5u8 {
            assert_eq!(leader.append(&[i]).unwrap(), u64::from(i) + 1);
        }
        assert_eq!(leader.status(), ReplicationStatus::Healthy);
        assert_eq!(leader.replication_stats().acked_quorum, 5);
        assert_eq!(leader.replication_stats().degraded_acks, 0);
        let want: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i]).collect();
        assert_eq!(replay_payloads(&f1), want);
        assert_eq!(replay_payloads(&f2), want);
    }

    #[test]
    fn follower_attached_late_catches_up_via_suffix() {
        let (ls, fs) = (shared(), shared());
        let mut leader = leader(&ls, u64::MAX, AckMode::Async);
        for i in 0..7u8 {
            leader.append(&[i]).unwrap();
        }
        let idx = leader.attach_follower(fs.clone(), cfg(u64::MAX)).unwrap();
        assert_eq!(leader.link_states()[idx].durable_lsn, 7);
        assert_eq!(replay_payloads(&fs), replay_payloads(&ls));
    }

    #[test]
    fn follower_behind_a_compaction_catches_up_via_snapshot() {
        let (ls, fs) = (shared(), shared());
        let mut leader = leader(&ls, u64::MAX, AckMode::Async);
        for i in 0..4u8 {
            leader.append(&[i]).unwrap();
        }
        leader.write_snapshot(b"state@4").unwrap();
        leader.append(&[100]).unwrap();
        let idx = leader.attach_follower(fs.clone(), cfg(u64::MAX)).unwrap();
        assert_eq!(leader.link_states()[idx].durable_lsn, 5);
        assert_eq!(leader.replication_stats().snapshots_installed, 1);
        let (_, rec) = DurableStore::open(fs.clone(), cfg(u64::MAX)).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(b"state@4".as_slice()));
        assert_eq!(rec.snapshot_lsn, 4);
        assert_eq!(rec.events, vec![vec![100]]);
    }

    #[test]
    fn leader_snapshot_compacts_followers_in_step() {
        let (ls, fs) = (shared(), shared());
        let mut leader = leader(&ls, u64::MAX, AckMode::Quorum);
        leader.attach_follower(fs.clone(), cfg(u64::MAX)).unwrap();
        for i in 0..3u8 {
            leader.append(&[i]).unwrap();
        }
        leader.write_snapshot(b"state@3").unwrap();
        let (_, rec) = DurableStore::open(fs.clone(), cfg(u64::MAX)).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(b"state@3".as_slice()));
        assert!(rec.events.is_empty());
    }

    #[test]
    fn down_follower_degrades_then_reconnect_heals() {
        let (ls, f1, f2) = (shared(), shared(), shared());
        let mut leader = leader(&ls, u64::MAX, AckMode::Quorum);
        leader.attach_follower(f1.clone(), cfg(u64::MAX)).unwrap();
        let idx2 = leader.attach_follower(f2.clone(), cfg(u64::MAX)).unwrap();
        leader.append(b"both up").unwrap();
        // f2's medium dies mid-flight: the next ship tears and drops
        // the link, but the append still acks (leader + f1 = quorum).
        f2.lock()
            .unwrap()
            .set_plan(CrashPlan::at_op(1_000_000, CrashKind::Torn));
        let ops = f2.lock().unwrap().ops();
        f2.lock()
            .unwrap()
            .set_plan(CrashPlan::at_op(ops, CrashKind::Torn));
        leader.append(b"f2 dies here").unwrap();
        assert_eq!(leader.replication_stats().link_drops, 1);
        match leader.status() {
            ReplicationStatus::Degraded {
                down, quorum_ok, ..
            } => {
                assert_eq!(down, 1);
                assert!(quorum_ok);
            }
            other => panic!("expected degraded, got {other:?}"),
        }
        leader.append(b"still serving").unwrap();
        assert_eq!(leader.replication_stats().acked_quorum, 3);
        // Reconnect over the revived medium: the torn tail is repaired
        // and the suffix re-shipped.
        f2.lock().unwrap().revive();
        f2.lock().unwrap().set_plan(CrashPlan::none());
        leader.reconnect(idx2).unwrap();
        assert_eq!(leader.status(), ReplicationStatus::Healthy);
        assert_eq!(replay_payloads(&f2), replay_payloads(&ls));
        assert!(leader.replication_stats().reconnects == 1);
    }

    #[test]
    fn losing_quorum_degrades_but_never_blocks() {
        let (ls, f1) = (shared(), shared());
        let mut leader = leader(&ls, u64::MAX, AckMode::Quorum);
        leader.attach_follower(f1.clone(), cfg(u64::MAX)).unwrap();
        let ops = f1.lock().unwrap().ops();
        f1.lock()
            .unwrap()
            .set_plan(CrashPlan::at_op(ops, CrashKind::Torn));
        leader.append(b"follower lost").unwrap();
        leader.append(b"alone now").unwrap();
        assert_eq!(leader.replication_stats().degraded_acks, 2);
        match leader.status() {
            ReplicationStatus::Degraded { quorum_ok, .. } => assert!(!quorum_ok),
            other => panic!("expected degraded, got {other:?}"),
        }
    }

    #[test]
    fn promoted_follower_fences_the_old_leader() {
        let (ls, fs) = (shared(), shared());
        let mut old = leader(&ls, u64::MAX, AckMode::Quorum);
        old.attach_follower(fs.clone(), cfg(u64::MAX)).unwrap();
        old.append(b"acked before the coup").unwrap();
        // Promote the follower out-of-band (as failover would).
        let (mut promoted, _) =
            Follower::open(fs.clone(), cfg(u64::MAX), &ReplicationConfig::default()).unwrap();
        assert_eq!(promoted.epoch(), 1);
        assert_eq!(promoted.promote().unwrap(), 2);
        // The old leader's next append is refused and deposes it.
        let err = old.append(b"split brain attempt").unwrap_err();
        assert!(matches!(err, StoreError::Fenced { ours: 2, theirs: 1 }));
        assert!(matches!(
            old.status(),
            ReplicationStatus::Fenced { epoch: 1, newer: 2 }
        ));
        // ... and it stays deposed even without touching the link.
        assert!(old.append(b"again").is_err());
        assert_eq!(old.replication_stats().fence_refusals, 1);
    }

    #[test]
    fn deposed_leader_rejoins_and_discards_divergent_tail() {
        let (a, b) = (shared(), shared());
        let mut old = leader(&a, u64::MAX, AckMode::Quorum);
        old.attach_follower(b.clone(), cfg(u64::MAX)).unwrap();
        old.append(b"replicated").unwrap();
        // The link to b dies; a keeps appending un-replicated records.
        let ops = b.lock().unwrap().ops();
        b.lock()
            .unwrap()
            .set_plan(CrashPlan::at_op(ops, CrashKind::Torn));
        old.append(b"un-replicated tail 1").unwrap();
        b.lock().unwrap().revive();
        b.lock().unwrap().set_plan(CrashPlan::none());
        // b is promoted and serves new writes; a's tail has diverged.
        let (mut bf, _) =
            Follower::open(b.clone(), cfg(u64::MAX), &ReplicationConfig::default()).unwrap();
        bf.promote().unwrap();
        let mut new = Leader::open(b.clone(), cfg(u64::MAX), ReplicationConfig::default())
            .unwrap()
            .0;
        assert_eq!(new.epoch(), 2);
        new.append(b"new timeline").unwrap();
        // a rejoins as a follower: its divergent tail is discarded and
        // it converges on the new timeline, byte for byte.
        new.attach_follower(a.clone(), cfg(u64::MAX)).unwrap();
        assert_eq!(replay_payloads(&a), replay_payloads(&b));
        assert_eq!(
            replay_payloads(&b),
            vec![b"replicated".to_vec(), b"new timeline".to_vec()]
        );
    }

    #[test]
    fn follower_refuses_stale_epoch_and_gap_on_adoption() {
        let fs = shared();
        let (mut f, _) =
            Follower::open(fs.clone(), cfg(u64::MAX), &ReplicationConfig::default()).unwrap();
        // Adopt epoch 2 with a clean extension.
        let one = ShipBatch::new(
            2,
            vec![journal::Record {
                lsn: 1,
                payload: b"one".to_vec(),
            }],
        );
        assert_eq!(f.append_batch(&one).unwrap(), 1);
        assert_eq!(f.epoch(), 2);
        // Stale epoch refused.
        let stale = ShipBatch::new(
            1,
            vec![journal::Record {
                lsn: 2,
                payload: b"stale".to_vec(),
            }],
        );
        assert!(matches!(
            f.append_batch(&stale),
            Err(StoreError::Fenced { ours: 2, theirs: 1 })
        ));
        // Newer epoch with a gap demands a resync.
        let gap = ShipBatch::new(
            3,
            vec![journal::Record {
                lsn: 5,
                payload: b"gap".to_vec(),
            }],
        );
        assert!(matches!(
            f.append_batch(&gap),
            Err(StoreError::ReplicaGap {
                expected: 2,
                got: 5
            })
        ));
        // Same epoch, re-shipped prefix: idempotent skip.
        let reship = ShipBatch::new(
            2,
            vec![
                journal::Record {
                    lsn: 1,
                    payload: b"one".to_vec(),
                },
                journal::Record {
                    lsn: 2,
                    payload: b"two".to_vec(),
                },
            ],
        );
        assert_eq!(f.append_batch(&reship).unwrap(), 2);
        assert_eq!(replay_payloads(&fs), vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn promote_to_requires_a_strictly_newer_epoch() {
        let fs = shared();
        let (mut f, _) =
            Follower::open(fs.clone(), cfg(u64::MAX), &ReplicationConfig::default()).unwrap();
        f.promote_to(3).unwrap();
        assert!(matches!(f.promote_to(3), Err(StoreError::Fenced { .. })));
        assert!(matches!(f.promote_to(2), Err(StoreError::Fenced { .. })));
        assert_eq!(f.promote_to(7).unwrap(), 7);
        // The epoch survives a reopen.
        drop(f);
        let (f2, _) =
            Follower::open(fs.clone(), cfg(u64::MAX), &ReplicationConfig::default()).unwrap();
        assert_eq!(f2.epoch(), 7);
    }

    #[test]
    fn follower_crash_mid_ship_leaves_prefix_and_resync_repairs() {
        let (ls, fs) = (shared(), shared());
        let mut leader = leader(&ls, u64::MAX, AckMode::Async);
        let idx = leader.attach_follower(fs.clone(), cfg(u64::MAX)).unwrap();
        leader.append(b"safe").unwrap();
        let ops = fs.lock().unwrap().ops();
        fs.lock()
            .unwrap()
            .set_plan(CrashPlan::at_op(ops, CrashKind::Torn));
        leader.append(b"torn on the follower").unwrap(); // link drops
        leader.append(b"while down").unwrap();
        fs.lock().unwrap().revive();
        fs.lock().unwrap().set_plan(CrashPlan::none());
        leader.reconnect(idx).unwrap();
        // The torn record was repaired (counted) and everything
        // re-shipped: follower is byte-equal with the leader.
        assert!(leader.replication_stats().follower_truncated_bytes > 0);
        assert_eq!(replay_payloads(&fs), replay_payloads(&ls));
    }
}
