//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The single checksum implementation shared by the journal record
//! framing and the snapshot encoder — one table, one algorithm, unit
//! tested against the published check vectors, rather than a per-module
//! copy that could drift.
//!
//! CRC-32 is the right tool here: it detects every single-bit flip and
//! every burst error up to 32 bits, which covers the failure modes a
//! local journal actually sees (torn sectors, bit rot), and it is cheap
//! enough to run on every append. It is *not* cryptographic — content
//! addressing stays with SHA-256 in `sq-vcs`.

/// Generate the reflected CRC-32 lookup table at compile time.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Streaming CRC-32 hasher (for checksumming a record without first
/// concatenating its parts into a scratch buffer).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The checksum of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"length-prefixed, CRC-checksummed records";
        for split in 0..data.len() {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_always_change_the_checksum() {
        let base = b"journal record payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip {byte}.{bit}");
            }
        }
    }
}
