//! Property tests for WAL shipping and fenced promotion: any prefix of
//! shipped batches must replay to a valid (prefix-exact) replica state,
//! any truncation or bit flip of a ship frame must be refused as
//! corruption, and arbitrary interleavings of leader crashes and
//! coordinated promotions must never yield two leaders with the same
//! epoch whose appends are accepted.

use proptest::prelude::*;
use sq_store::{
    journal, AckMode, CrashPlan, DurableStore, DurableStoreConfig, Follower, Leader, MemStorage,
    ReplicationConfig, ShipBatch, StoreError,
};
use std::sync::{Arc, Mutex};

type Shared = Arc<Mutex<MemStorage>>;

fn fresh() -> Shared {
    Arc::new(Mutex::new(MemStorage::with_crashes(CrashPlan::none())))
}

fn store_cfg() -> DurableStoreConfig {
    DurableStoreConfig::with_snapshot_every(u64::MAX)
}

fn repl_cfg() -> ReplicationConfig {
    ReplicationConfig::with_ack_mode(AckMode::Quorum)
}

/// Replay a replica's journal from scratch and return the payloads.
fn replayed(storage: &Shared) -> Vec<Vec<u8>> {
    let (_, rec) = DurableStore::open(storage.clone(), store_cfg()).expect("reopen");
    rec.events
}

/// Arbitrary payloads partitioned into batches at arbitrary points.
fn arb_batched_payloads() -> impl Strategy<Value = Vec<Vec<Vec<u8>>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..6),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Shipping is prefix-closed: a follower that received only the
    /// first `k` batches of a stream holds exactly the payloads of
    /// those batches, survives reopen byte-identically, and keeps
    /// accepting the remaining batches afterwards.
    #[test]
    fn any_prefix_of_shipped_batches_replays_to_a_valid_state(
        batches in arb_batched_payloads(),
        k_seed in any::<u64>(),
    ) {
        // Frame the payload batches as contiguous-LSN ship batches.
        let mut lsn = 0u64;
        let frames: Vec<ShipBatch> = batches
            .iter()
            .map(|b| {
                let records = b
                    .iter()
                    .map(|p| {
                        lsn += 1;
                        journal::Record { lsn, payload: p.clone() }
                    })
                    .collect();
                ShipBatch::new(1, records)
            })
            .collect();
        let k = (k_seed as usize) % (frames.len() + 1);

        let storage = fresh();
        let (mut follower, _) =
            Follower::open(storage.clone(), store_cfg(), &repl_cfg()).expect("open");
        for frame in &frames[..k] {
            follower.append_batch(frame).expect("apply prefix");
        }
        let expected: Vec<Vec<u8>> =
            batches[..k].iter().flatten().cloned().collect();
        prop_assert_eq!(follower.durable_lsn(), expected.len() as u64);
        drop(follower);
        prop_assert_eq!(replayed(&storage), expected.clone());

        // The prefix is a valid resume point: the rest still applies.
        let (mut follower, _) =
            Follower::open(storage.clone(), store_cfg(), &repl_cfg()).expect("reopen");
        for frame in &frames[k..] {
            follower.append_batch(frame).expect("apply suffix");
        }
        drop(follower);
        let all: Vec<Vec<u8>> = batches.iter().flatten().cloned().collect();
        prop_assert_eq!(replayed(&storage), all);
    }

    /// A damaged frame — truncated anywhere, or with any single bit
    /// flipped — must be refused outright, never partially applied or
    /// misread as a shorter valid batch.
    #[test]
    fn truncated_or_bit_flipped_frames_are_refused(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..6),
        first_lsn in 1u64..1000,
        epoch in 1u64..100,
        pos in any::<u64>(),
        bit in 0u8..8,
        chop in any::<u64>(),
    ) {
        let records = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| journal::Record { lsn: first_lsn + i as u64, payload: p.clone() })
            .collect();
        let frame = ShipBatch::new(epoch, records).encode();
        prop_assert_eq!(ShipBatch::decode(&frame).expect("intact").first_lsn, first_lsn);

        let mut flipped = frame.clone();
        let byte = (pos as usize) % flipped.len();
        flipped[byte] ^= 1 << bit;
        let err = ShipBatch::decode(&flipped).unwrap_err();
        prop_assert!(matches!(err, StoreError::CorruptShip { .. }), "flip: got {err}");

        let cut = (chop as usize) % frame.len(); // strictly shorter
        let err = ShipBatch::decode(&frame[..cut]).unwrap_err();
        prop_assert!(matches!(err, StoreError::CorruptShip { .. }), "chop: got {err}");
    }

    /// Coordinated failover safety: across an arbitrary interleaving of
    /// leader crashes and promotions (fencing above the cluster-max
    /// epoch), claimed epochs are strictly increasing — no two leaders
    /// ever share one — every deposed leader's appends are refused
    /// once a successor exists, and all live replicas converge on the
    /// surviving leader's exact payload stream.
    #[test]
    fn interleaved_crash_promote_sequences_never_double_accept(
        script in proptest::collection::vec((0usize..3, 1usize..4), 1..6),
    ) {
        let cluster: Vec<Shared> = (0..3).map(|_| fresh()).collect();
        let (mut leader, _) =
            Leader::open(cluster[0].clone(), store_cfg(), repl_cfg()).expect("open");
        let mut leader_at = 0usize;
        for (i, s) in cluster.iter().enumerate() {
            if i != leader_at {
                leader.attach_follower(s.clone(), store_cfg()).expect("attach");
            }
        }
        let mut epochs = vec![leader.epoch()];
        let mut next_payload = 0u32;

        for (target, n_appends) in script {
            // The old leader "crashes": its handle survives as a zombie
            // that still owns its local medium (a partitioned stale
            // leader) and will try to keep serving below.
            let target = if target == leader_at { (target + 1) % 3 } else { target };
            let zombie_at = leader_at;
            let mut zombie = leader;

            // Coordinated promotion: fence above the cluster-max epoch
            // of the replicas reachable without the zombie's medium.
            let cluster_epoch = cluster
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != zombie_at)
                .map(|(_, s)| {
                    Follower::open(s.clone(), store_cfg(), &repl_cfg())
                        .expect("inspect")
                        .0
                        .epoch()
                })
                .max()
                .unwrap();
            let (mut f, _) =
                Follower::open(cluster[target].clone(), store_cfg(), &repl_cfg()).expect("open");
            let claimed = f.promote_to(cluster_epoch + 1).expect("promote");
            drop(f);
            prop_assert!(claimed > *epochs.last().unwrap(), "epochs must strictly increase");
            epochs.push(claimed);

            let (next, _) =
                Leader::open(cluster[target].clone(), store_cfg(), repl_cfg()).expect("reopen");
            prop_assert_eq!(next.epoch(), claimed);
            leader = next;
            leader_at = target;
            let third = (0..3).find(|i| *i != leader_at && *i != zombie_at).unwrap();
            leader
                .attach_follower(cluster[third].clone(), store_cfg())
                .expect("reattach survivor");

            // The stale leader tries to keep serving: its first ship
            // hits a replica that has seen the new epoch and is fenced
            // — the append is refused, not acked into a dead timeline.
            let err = sq_store::Wal::append(&mut zombie, b"stale").unwrap_err();
            prop_assert!(
                matches!(err, StoreError::Fenced { .. }),
                "zombie epoch {} got {err}",
                zombie.epoch()
            );
            // Once fenced, it stays fenced.
            let err = sq_store::Wal::append(&mut zombie, b"stale again").unwrap_err();
            prop_assert!(matches!(err, StoreError::Fenced { .. }));

            // The zombie process dies for real; only then does its
            // medium rejoin the cluster (resync discards the divergent
            // unacked tail and adopts the new epoch).
            drop(zombie);
            leader
                .attach_follower(cluster[zombie_at].clone(), store_cfg())
                .expect("reattach deposed");

            for _ in 0..n_appends {
                next_payload += 1;
                sq_store::Wal::append(&mut leader, format!("r{next_payload}").as_bytes())
                    .expect("current leader appends");
            }
        }

        // No two leaders ever claimed the same epoch.
        let mut unique = epochs.clone();
        unique.dedup();
        prop_assert_eq!(unique.len(), epochs.len());

        // Every replica converged on the survivor's exact stream.
        let reference = replayed(&cluster[leader_at]);
        drop(leader);
        for s in &cluster {
            prop_assert_eq!(&replayed(s), &reference);
        }
    }
}
