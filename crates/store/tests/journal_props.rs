//! Property tests for the write-ahead journal: arbitrary event
//! sequences must survive write → reopen → replay byte-identically, a
//! truncated tail must recover exactly the surviving record prefix (and
//! keep accepting appends), and any single-bit flip in a complete file
//! must be refused as corruption rather than replayed or misread as a
//! torn tail.

use proptest::prelude::*;
use sq_store::{journal, CrashPlan, DurableStore, DurableStoreConfig, MemStorage, StoreError};
use std::sync::{Arc, Mutex};

type Shared = Arc<Mutex<MemStorage>>;

fn fresh() -> Shared {
    Arc::new(Mutex::new(MemStorage::with_crashes(CrashPlan::none())))
}

fn open(storage: &Shared) -> (DurableStore<Shared>, sq_store::Recovery) {
    DurableStore::open(storage.clone(), DurableStoreConfig::default()).expect("open")
}

/// Arbitrary payload sequences: varied lengths including empty.
fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..12)
}

fn journal_len(storage: &Shared) -> usize {
    storage
        .lock()
        .unwrap()
        .file("journal.wal")
        .map(|f| f.len())
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn write_reopen_replay_is_identity(payloads in arb_payloads()) {
        let storage = fresh();
        let (mut store, _) = open(&storage);
        for p in &payloads {
            store.append(p).expect("append");
        }
        drop(store);
        let (_, rec) = open(&storage);
        prop_assert_eq!(rec.events, payloads);
        prop_assert_eq!(rec.truncated_tail_bytes, 0);
    }

    #[test]
    fn encode_scan_is_identity(payloads in arb_payloads()) {
        let mut file = journal::MAGIC.to_vec();
        for (i, p) in payloads.iter().enumerate() {
            file.extend_from_slice(&journal::encode_record(i as u64 + 1, p));
        }
        let scan = journal::scan(&file).expect("clean file scans");
        prop_assert_eq!(scan.torn_bytes, 0);
        prop_assert_eq!(scan.valid_len as usize, file.len());
        let got: Vec<Vec<u8>> = scan.records.into_iter().map(|r| r.payload).collect();
        prop_assert_eq!(got, payloads);
    }

    #[test]
    fn truncated_tail_recovers_a_prefix_and_appends_continue(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..10),
        cut in any::<u64>(),
    ) {
        let storage = fresh();
        let (mut store, _) = open(&storage);
        for p in &payloads {
            store.append(p).expect("append");
        }
        drop(store);
        // Chop an arbitrary number of tail bytes (possibly the whole
        // file, possibly zero).
        let len = journal_len(&storage);
        let chop = (cut as usize) % (len + 1);
        storage.lock().unwrap().chop("journal.wal", chop);
        let (mut store, rec) = open(&storage);
        // Whatever survives is a strict prefix of what was appended.
        let k = rec.events.len();
        prop_assert!(k <= payloads.len());
        prop_assert_eq!(&rec.events[..], &payloads[..k]);
        // The truncated journal is clean again: appends continue.
        store.append(b"post-recovery").expect("append after truncation");
        drop(store);
        let (_, rec) = open(&storage);
        prop_assert_eq!(rec.events.len(), k + 1);
        prop_assert_eq!(&rec.events[..k], &payloads[..k]);
        prop_assert_eq!(&rec.events[k][..], b"post-recovery".as_slice());
    }

    #[test]
    fn any_bit_flip_is_refused_as_corruption(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..8),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let storage = fresh();
        let (mut store, _) = open(&storage);
        for p in &payloads {
            store.append(p).expect("append");
        }
        drop(store);
        let len = journal_len(&storage);
        storage.lock().unwrap().flip_bit("journal.wal", (pos as usize) % len, bit);
        let err = DurableStore::open(storage.clone(), DurableStoreConfig::default()).unwrap_err();
        prop_assert!(matches!(err, StoreError::CorruptJournal { .. }), "got {err}");
    }
}
