//! The request loop: accept connections on TCP and Unix-domain
//! listeners, serve framed requests from a fixed worker pool, and land
//! changes through a background processor thread.
//!
//! ## Threading model
//!
//! No async runtime (the build is fully vendored, so no tokio): the
//! server runs `workers` connection threads — defaulting to one per
//! core with a floor of two — plus one acceptor thread per listener
//! and one processor thread that drives
//! [`DurableSubmitQueue::process_next`]. A connection occupies one
//! worker for its lifetime; concurrency is bounded by the pool size,
//! which is the point — the paper's queue is the throughput governor,
//! not the socket layer.
//!
//! ## Backpressure
//!
//! Bounded at three layers, each with an explicit refusal instead of
//! unbounded buffering:
//!
//! * **accept**: at most `max_pending_conns` connections may wait for a
//!   free worker; beyond that the acceptor writes one `Busy` frame and
//!   closes the socket.
//! * **per connection**: one in-flight request at a time — pipelined
//!   frames wait in the reader buffer and are answered in order, so
//!   frame boundaries and reply order are preserved exactly.
//! * **enqueue admission**: when the speculation queue holds
//!   `max_queue_depth` acked-but-unlanded changes, `Enqueue` gets a
//!   `Busy` reply (carrying the observed depth) rather than journaling
//!   more work the builders are behind on.
//!
//! ## Ack durability
//!
//! `Enqueue` is answered only after [`DurableSubmitQueue::submit`]
//! returns — the journal append (and quorum ship, when replicated) has
//! completed before the ack byte is written to the socket. A client
//! that reads an `Enqueued { ticket }` can crash, reconnect after a
//! server restart, and find the ticket again.
//!
//! ## Graceful drain
//!
//! [`Server::shutdown`] stops the acceptors, lets every in-flight
//! request finish, answers outstanding verdict subscriptions with
//! `Error { code: Draining }`, stops the processor after its current
//! build, and joins all threads. Acked-but-unprocessed enqueues stay
//! in the journal and resume on the next open — zero acked work is
//! lost across a drain/restart cycle (the `bench_server --smoke` gate).

use crate::protocol::{
    status_of, write_frame, ErrorCode, FramePoll, FrameReadError, FrameReader, Request, Response,
    WireTicketState, MAX_FRAME_BYTES,
};
use sq_core::durable::DurableSubmitQueue;
use sq_core::service::StepAction;
use sq_core::TicketId;
use sq_obs::MetricsRegistry;
use sq_store::Wal;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Where the server listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:0` (0 = ephemeral port).
    Tcp(String),
    /// A Unix-domain socket path (unlinked before bind and on drain).
    Uds(PathBuf),
}

/// Tunables for the request loop.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection worker threads. Defaults to one per core with a
    /// floor of two so a single-core host still overlaps a slow
    /// subscriber with an active submitter.
    pub workers: usize,
    /// Enqueue admission bound: above this many acked-but-unlanded
    /// changes, `Enqueue` answers `Busy`.
    pub max_queue_depth: usize,
    /// Accepted connections allowed to wait for a free worker before
    /// the acceptor answers `Busy` and closes.
    pub max_pending_conns: usize,
    /// Per-frame payload cap (both directions).
    pub max_frame_bytes: u32,
    /// Read-timeout granularity for shutdown polling.
    pub poll_interval: Duration,
    /// Run the processor thread that drives
    /// [`DurableSubmitQueue::process_next`]. `false` serves a queue
    /// something else drives (maintenance mode, admission-control
    /// tests): enqueues are acked and journaled but nothing lands.
    pub drive_queue: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = thread::available_parallelism().map_or(1, |n| n.get());
        ServerConfig {
            workers: cores.max(2),
            max_queue_depth: 256,
            max_pending_conns: 64,
            max_frame_bytes: MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(20),
            drive_queue: true,
        }
    }
}

/// One accepted connection, either transport.
enum Conn {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            Conn::Uds(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Uds(s) => s.flush(),
        }
    }
}

struct Shared<W: Wal> {
    queue: DurableSubmitQueue<W>,
    action: Box<StepAction>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    /// Set when the processor hit a store error; enqueues then refuse.
    store_failed: AtomicBool,
    pending: Mutex<VecDeque<Conn>>,
    pending_cv: Condvar,
    /// Bumped by the processor after every landed/rejected ticket;
    /// verdict subscribers wait on it instead of busy-polling.
    verdicts: Mutex<u64>,
    verdicts_cv: Condvar,
    /// Wakes the processor when an enqueue adds work.
    work: Mutex<()>,
    work_cv: Condvar,
    metrics: Mutex<MetricsRegistry>,
    /// Top-level directories ever exported as `server.shard.*` gauges —
    /// a shard whose queue empties must re-export as zero, not linger
    /// at its last depth.
    shard_dirs: Mutex<std::collections::BTreeSet<String>>,
}

impl<W: Wal> Shared<W> {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping without [`Server::shutdown`] aborts the
/// threads less gracefully (they still exit on the shutdown flag set
/// by `Drop`), so prefer an explicit shutdown.
pub struct Server<W: Wal + Send + 'static> {
    shared: Arc<Shared<W>>,
    threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl<W: Wal + Send + 'static> Server<W> {
    /// Bind every endpoint, spawn the thread pool, and serve.
    ///
    /// `action` is the build-step oracle handed to
    /// [`DurableSubmitQueue::process_next`] — tests pass a stub, a real
    /// deployment passes the executor bridge.
    pub fn start(
        queue: DurableSubmitQueue<W>,
        action: Box<StepAction>,
        cfg: ServerConfig,
        endpoints: &[Endpoint],
    ) -> io::Result<Server<W>> {
        let shared = Arc::new(Shared {
            queue,
            action,
            cfg: cfg.clone(),
            shutdown: AtomicBool::new(false),
            store_failed: AtomicBool::new(false),
            pending: Mutex::new(VecDeque::new()),
            pending_cv: Condvar::new(),
            verdicts: Mutex::new(0),
            verdicts_cv: Condvar::new(),
            work: Mutex::new(()),
            work_cv: Condvar::new(),
            shard_dirs: Mutex::new(Default::default()),
            metrics: Mutex::new(MetricsRegistry::new()),
        });
        let mut threads = Vec::new();
        let mut tcp_addr = None;
        let mut uds_path = None;
        for ep in endpoints {
            match ep {
                Endpoint::Tcp(addr) => {
                    let listener = TcpListener::bind(addr)?;
                    listener.set_nonblocking(true)?;
                    tcp_addr = Some(listener.local_addr()?);
                    let s = Arc::clone(&shared);
                    threads.push(thread::spawn(move || accept_tcp(&s, &listener)));
                }
                Endpoint::Uds(path) => {
                    let _ = std::fs::remove_file(path);
                    let listener = UnixListener::bind(path)?;
                    listener.set_nonblocking(true)?;
                    uds_path = Some(path.clone());
                    let s = Arc::clone(&shared);
                    threads.push(thread::spawn(move || accept_uds(&s, &listener)));
                }
            }
        }
        for _ in 0..cfg.workers.max(1) {
            let s = Arc::clone(&shared);
            threads.push(thread::spawn(move || worker_loop(&s)));
        }
        if cfg.drive_queue {
            let s = Arc::clone(&shared);
            threads.push(thread::spawn(move || processor_loop(&s)));
        }
        Ok(Server {
            shared,
            threads,
            tcp_addr,
            uds_path,
        })
    }

    /// The bound TCP address, when a TCP endpoint was requested.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-socket path, when a UDS endpoint was requested.
    pub fn uds_path(&self) -> Option<&Path> {
        self.uds_path.as_deref()
    }

    /// Snapshot of the server's metrics registry (request counters plus
    /// the store/replication exports refreshed on every `Stats` call).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics.lock().unwrap().to_json()
    }

    /// Graceful drain: stop accepting, finish in-flight requests,
    /// answer open subscriptions with `Draining`, stop the processor
    /// after its current build, join every thread, and hand back the
    /// queue (still open — acked work stays journaled) plus the final
    /// metrics registry.
    pub fn shutdown(self) -> (DurableSubmitQueue<W>, MetricsRegistry) {
        let shared = Arc::clone(&self.shared);
        // Drop performs the actual drain: sets the flag, wakes every
        // condvar, joins all threads, unlinks the UDS path.
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(s) => (s.queue, s.metrics.into_inner().unwrap()),
            Err(_) => unreachable!("all server threads joined, no Arc clones remain"),
        }
    }
}

impl<W: Wal + Send + 'static> Drop for Server<W> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.pending_cv.notify_all();
        self.shared.work_cv.notify_all();
        self.shared.verdicts_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn accept_tcp<W: Wal>(shared: &Shared<W>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => admit(shared, Conn::Tcp(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.draining() {
                    return;
                }
                thread::sleep(shared.cfg.poll_interval.min(Duration::from_millis(5)));
            }
            Err(_) => {
                if shared.draining() {
                    return;
                }
            }
        }
    }
}

fn accept_uds<W: Wal>(shared: &Shared<W>, listener: &UnixListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => admit(shared, Conn::Uds(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.draining() {
                    return;
                }
                thread::sleep(shared.cfg.poll_interval.min(Duration::from_millis(5)));
            }
            Err(_) => {
                if shared.draining() {
                    return;
                }
            }
        }
    }
}

/// Hand an accepted connection to the worker pool, or refuse it with
/// one `Busy` frame when the pending queue is at its bound.
fn admit<W: Wal>(shared: &Shared<W>, conn: Conn) {
    // The listener is non-blocking and accepted sockets inherit that
    // on some platforms; workers want blocking reads with a timeout.
    let _ = match &conn {
        Conn::Tcp(s) => s.set_nonblocking(false),
        Conn::Uds(s) => s.set_nonblocking(false),
    };
    if shared.draining() {
        refuse(conn, ErrorCode::Draining, "server is draining");
        return;
    }
    let mut pending = shared.pending.lock().unwrap();
    if pending.len() >= shared.cfg.max_pending_conns {
        drop(pending);
        shared.metrics.lock().unwrap().inc("server.conns.refused");
        let mut conn = conn;
        let _ = write_frame(
            &mut conn,
            &Response::Busy {
                queue_depth: shared.queue.queue_depth() as u64,
            }
            .encode(),
        );
        return;
    }
    pending.push_back(conn);
    drop(pending);
    shared.metrics.lock().unwrap().inc("server.conns.accepted");
    shared.pending_cv.notify_one();
}

fn refuse(mut conn: Conn, code: ErrorCode, detail: &str) {
    let _ = write_frame(
        &mut conn,
        &Response::Error {
            code,
            detail: detail.to_string(),
        }
        .encode(),
    );
}

fn worker_loop<W: Wal>(shared: &Shared<W>) {
    loop {
        let conn = {
            let mut pending = shared.pending.lock().unwrap();
            loop {
                if let Some(c) = pending.pop_front() {
                    break Some(c);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _) = shared
                    .pending_cv
                    .wait_timeout(pending, shared.cfg.poll_interval)
                    .unwrap();
                pending = guard;
            }
        };
        match conn {
            Some(c) => serve_conn(shared, c),
            None => return,
        }
    }
}

/// Serve one connection to completion: frames are answered strictly in
/// arrival order, one in flight at a time.
fn serve_conn<W: Wal>(shared: &Shared<W>, mut conn: Conn) {
    let _ = conn.set_read_timeout(Some(shared.cfg.poll_interval));
    let mut reader = FrameReader::new(shared.cfg.max_frame_bytes);
    loop {
        match reader.poll(&mut conn) {
            Ok(FramePoll::Frame(payload)) => {
                let reply = match Request::decode(&payload) {
                    Ok(req) => handle(shared, req),
                    Err(e) => {
                        // Refused whole; the stream is no longer
                        // trustworthy, so answer and hang up.
                        shared.metrics.lock().unwrap().inc("server.frames.refused");
                        let _ = write_frame(
                            &mut conn,
                            &Response::Error {
                                code: ErrorCode::Malformed,
                                detail: e.to_string(),
                            }
                            .encode(),
                        );
                        return;
                    }
                };
                if write_frame(&mut conn, &reply.encode()).is_err() {
                    return;
                }
                let _ = conn.flush();
            }
            Ok(FramePoll::Idle) => {
                // Between frames (or mid-frame on a slow peer): drain
                // closes idle connections; in-flight requests already
                // finished above.
                if shared.draining() && reader.buffered() == 0 {
                    return;
                }
            }
            Ok(FramePoll::Eof) => return,
            Err(FrameReadError::Frame(e)) => {
                shared.metrics.lock().unwrap().inc("server.frames.refused");
                let code = match e {
                    crate::protocol::FrameError::TooLarge { .. } => ErrorCode::TooLarge,
                    crate::protocol::FrameError::Corrupt { .. } => ErrorCode::Malformed,
                };
                let _ = write_frame(
                    &mut conn,
                    &Response::Error {
                        code,
                        detail: e.to_string(),
                    }
                    .encode(),
                );
                return;
            }
            Err(FrameReadError::Io(_)) => return,
        }
    }
}

fn handle<W: Wal>(shared: &Shared<W>, req: Request) -> Response {
    match req {
        Request::Enqueue {
            author,
            description,
            base,
            patch,
        } => {
            shared
                .metrics
                .lock()
                .unwrap()
                .inc("server.requests.enqueue");
            if shared.draining() {
                return Response::Error {
                    code: ErrorCode::Draining,
                    detail: "server is draining".into(),
                };
            }
            if shared.store_failed.load(Ordering::SeqCst) {
                return Response::Error {
                    code: ErrorCode::Store,
                    detail: "durable store previously failed; restart required".into(),
                };
            }
            let depth = shared.queue.queue_depth();
            if depth >= shared.cfg.max_queue_depth {
                shared.metrics.lock().unwrap().inc("server.busy_replies");
                return Response::Busy {
                    queue_depth: depth as u64,
                };
            }
            match shared.queue.submit(author, description, base, patch) {
                Ok(ticket) => {
                    // The journal append (and quorum ship) is durable;
                    // only now does the ack go to the wire.
                    shared.metrics.lock().unwrap().inc("server.enqueues.acked");
                    shared.work_cv.notify_one();
                    crate::protocol::enqueued(ticket)
                }
                Err(e) => Response::Error {
                    code: ErrorCode::for_store_error(&e),
                    detail: e.to_string(),
                },
            }
        }
        Request::Status { ticket } => {
            shared.metrics.lock().unwrap().inc("server.requests.status");
            status_of(shared.queue.status(TicketId(ticket)))
        }
        Request::SubscribeVerdict { ticket, timeout_ms } => {
            shared
                .metrics
                .lock()
                .unwrap()
                .inc("server.requests.subscribe");
            subscribe(shared, ticket, timeout_ms)
        }
        Request::Stats => {
            shared.metrics.lock().unwrap().inc("server.requests.stats");
            // Refresh the store/replication sections from the live
            // queue. These exporters reconcile cumulative totals
            // (idempotent), so periodic Stats calls do not inflate the
            // counters — the regression the double-counting fix covers.
            let mut m = shared.metrics.lock().unwrap();
            shared.queue.record_into(&mut m);
            m.set_gauge("server.queue_depth", shared.queue.queue_depth() as f64);
            // Per-shard depths (queued submissions grouped by patch
            // top-level directory): purely additive JSON keys, and a
            // shard that drained re-exports as zero rather than
            // lingering at its last depth.
            let by_dir = shared.queue.queue_depth_by_dir();
            let mut dirs = shared.shard_dirs.lock().unwrap();
            for known in dirs.iter() {
                m.set_gauge(&format!("server.shard.{known}.queue_depth"), 0.0);
            }
            for (dir, depth) in by_dir {
                m.set_gauge(&format!("server.shard.{dir}.queue_depth"), depth as f64);
                dirs.insert(dir);
            }
            drop(dirs);
            Response::StatsJson { json: m.to_json() }
        }
        Request::Head => {
            shared.metrics.lock().unwrap().inc("server.requests.head");
            Response::HeadIs {
                commit: shared.queue.head(),
            }
        }
    }
}

/// Long-poll a ticket until terminal, timeout, or drain.
fn subscribe<W: Wal>(shared: &Shared<W>, ticket: u64, timeout_ms: u32) -> Response {
    let deadline = if timeout_ms == 0 {
        None
    } else {
        Some(Instant::now() + Duration::from_millis(u64::from(timeout_ms)))
    };
    let mut gen = shared.verdicts.lock().unwrap();
    loop {
        match shared.queue.status(TicketId(ticket)) {
            None => {
                return Response::StatusIs { state: None };
            }
            Some(state) => {
                let wire = WireTicketState::from(state);
                if wire.is_terminal() {
                    return Response::Verdict {
                        ticket,
                        state: wire,
                    };
                }
            }
        }
        if shared.draining() {
            return Response::Error {
                code: ErrorCode::Draining,
                detail: "server draining before verdict".into(),
            };
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Response::VerdictTimeout { ticket };
            }
        }
        let (guard, _) = shared
            .verdicts_cv
            .wait_timeout(gen, shared.cfg.poll_interval)
            .unwrap();
        gen = guard;
    }
}

/// Drive the queue: process acked changes in order, waking verdict
/// subscribers after each one. Exits on drain (current build finishes
/// first) or on a store failure (flagged so enqueues refuse).
fn processor_loop<W: Wal>(shared: &Shared<W>) {
    loop {
        if shared.draining() {
            return;
        }
        match shared.queue.process_next(&shared.action) {
            Ok(Some(_)) => {
                let mut gen = shared.verdicts.lock().unwrap();
                *gen += 1;
                drop(gen);
                shared.verdicts_cv.notify_all();
                shared
                    .metrics
                    .lock()
                    .unwrap()
                    .inc("server.tickets.processed");
            }
            Ok(None) => {
                let guard = shared.work.lock().unwrap();
                let _ = shared
                    .work_cv
                    .wait_timeout(guard, shared.cfg.poll_interval)
                    .unwrap();
            }
            Err(e) => {
                shared.store_failed.store(true, Ordering::SeqCst);
                shared
                    .metrics
                    .lock()
                    .unwrap()
                    .set_gauge("server.store_failed", 1.0);
                // Subscribers would otherwise wait forever on a dead
                // processor.
                shared.verdicts_cv.notify_all();
                let _ = e;
                return;
            }
        }
    }
}
