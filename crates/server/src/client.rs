//! A small blocking client for the wire protocol.
//!
//! One connection, strict request/reply by default, with an explicit
//! pipelining split ([`Client::send`] / [`Client::recv`]) for the load
//! generator: replies come back in request order, so a pipelined
//! caller pairs them positionally.

use crate::protocol::{
    write_frame, FramePoll, FrameReadError, FrameReader, Request, Response, WireError,
    MAX_FRAME_BYTES,
};
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing died.
    Io(io::Error),
    /// The server's bytes violated framing.
    Frame(String),
    /// A well-framed payload was not a valid response.
    Wire(WireError),
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Frame(e) => write!(f, "framing: {e}"),
            ClientError::Wire(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

enum Transport {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl io::Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            Transport::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            Transport::Uds(s) => s.flush(),
        }
    }
}

/// One connection to a server.
pub struct Client {
    transport: Transport,
    reader: FrameReader,
}

impl Client {
    /// Connect over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        Ok(Client {
            transport: Transport::Tcp(s),
            reader: FrameReader::new(MAX_FRAME_BYTES),
        })
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_uds(path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client {
            transport: Transport::Uds(UnixStream::connect(path)?),
            reader: FrameReader::new(MAX_FRAME_BYTES),
        })
    }

    /// Write one request without waiting for its reply (pipelining).
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.transport, &req.encode())?;
        self.transport.flush()?;
        Ok(())
    }

    /// Write raw bytes straight to the transport, bypassing request
    /// encoding. For tests that need to send damaged frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.transport.write_all(bytes)?;
        self.transport.flush()?;
        Ok(())
    }

    /// Read the next reply (in request order).
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        loop {
            match self.reader.poll(&mut self.transport) {
                Ok(FramePoll::Frame(payload)) => return Ok(Response::decode(&payload)?),
                Ok(FramePoll::Idle) => {} // blocking socket: spurious
                Ok(FramePoll::Eof) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )));
                }
                Err(FrameReadError::Frame(e)) => return Err(ClientError::Frame(e.to_string())),
                Err(FrameReadError::Io(e)) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Strict request/reply round trip.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }
}
