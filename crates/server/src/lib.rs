//! # sq-server — the serving layer
//!
//! ROADMAP item 3 ("Serve it"): the paper's SubmitQueue is a service
//! thousands of engineers hit concurrently, so the reproduction fronts
//! [`DurableSubmitQueue`](sq_core::DurableSubmitQueue) with a real
//! socket instead of an in-process simulation loop.
//!
//! * [`protocol`] — the length-prefixed, CRC-framed binary protocol
//!   (`Enqueue`, `Status`, `SubscribeVerdict`, `Stats`, `Head`),
//!   reusing the journal's codec and checksum so a frame arrives
//!   exactly as framed or is refused whole.
//! * [`server`] — the thread-per-core request loop over TCP and
//!   Unix-domain listeners: bounded backpressure with explicit `Busy`
//!   replies, journal-before-ack enqueues, graceful drain that loses
//!   zero acked work across a restart.
//! * [`client`] — a blocking client with an explicit pipelining split,
//!   used by the `bench_server` load generator and the tests.
//!
//! The companion load generator lives in `sq-bench` as `bench_server`;
//! its `--smoke` gate (zero lost acks across a drain/restart,
//! byte-identical deterministic metrics subset) runs in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    decode_frame, encode_frame, ErrorCode, FrameError, FramePoll, FrameReadError, FrameReader,
    Request, Response, WireError, WireTicketState, MAX_FRAME_BYTES,
};
pub use server::{Endpoint, Server, ServerConfig};
