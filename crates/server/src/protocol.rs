//! The wire protocol: length-prefixed, CRC-framed binary messages.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! +----------------+----------------+=====================+
//! | len: u32 LE    | crc: u32 LE    | payload (len bytes) |
//! +----------------+----------------+=====================+
//! ```
//!
//! `crc` is CRC-32 (ISO-HDLC, the journal's polynomial) over the
//! payload bytes. The payload is `[tag: u8][body]` with the body in
//! [`Encoder`](sq_store::Encoder) wire format — the same codec the
//! journal events use, so a patch is encoded identically whether it is
//! crossing the socket or landing in the WAL.
//!
//! The framing discipline mirrors [`ShipBatch`](sq_store::ShipBatch)
//! and the journal: a frame arrives *exactly* as framed or is refused
//! whole. A length beyond the cap, a CRC mismatch, an unknown tag, or
//! trailing bytes after the body all reject the frame (and the server
//! closes the connection — once framing is untrusted there is no
//! resync point). Truncation is indistinguishable from "more bytes in
//! flight" until the peer hangs up, at which point the partial frame is
//! refused as torn.

use sq_core::durable::{decode_commit, decode_patch, encode_commit, encode_patch};
use sq_core::{TicketId, TicketState};
use sq_store::checksum::crc32;
use sq_store::{CodecError, Decoder, Encoder, StoreError};
use sq_vcs::{CommitId, Patch};
use std::io::{self, Read, Write};

/// Frame header size: `len` + `crc`.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Default cap on a single frame's payload. Patches are whole files,
/// so frames are allowed to be large — but a flipped bit in the length
/// field must not make the server try to buffer gigabytes.
pub const MAX_FRAME_BYTES: u32 = 8 << 20;

/// Why a frame (not a message) was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length field exceeds the negotiated cap.
    TooLarge {
        /// Claimed payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The frame is structurally broken (CRC mismatch, torn tail).
    Corrupt {
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap of {max}")
            }
            FrameError::Corrupt { what } => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Frame `payload` for the wire: header (length + CRC) then payload.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("frame payload fits in u32");
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Try to decode one frame from the front of `buf`.
///
/// Returns `Ok(Some((payload, consumed)))` for a complete, checksummed
/// frame; `Ok(None)` when `buf` holds only a prefix (read more);
/// `Err` when the bytes can never become a valid frame. Pipelined
/// frames decode one at a time: callers drain `consumed` bytes and call
/// again, and frame boundaries are preserved exactly — a decoder never
/// reads past `consumed` into the next frame.
pub fn decode_frame(buf: &[u8], max: u32) -> Result<Option<(Vec<u8>, usize)>, FrameError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let total = FRAME_HEADER_BYTES + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[FRAME_HEADER_BYTES..total];
    if crc32(payload) != crc {
        return Err(FrameError::Corrupt {
            what: "payload checksum mismatch",
        });
    }
    Ok(Some((payload.to_vec(), total)))
}

/// One poll step of a [`FrameReader`].
#[derive(Debug)]
pub enum FramePoll {
    /// A complete frame's payload.
    Frame(Vec<u8>),
    /// The read timed out with no complete frame; check for shutdown
    /// and poll again.
    Idle,
    /// The peer closed cleanly on a frame boundary.
    Eof,
}

/// A frame-read failure: the connection is beyond recovery.
#[derive(Debug)]
pub enum FrameReadError {
    /// The byte stream violated framing.
    Frame(FrameError),
    /// The transport failed.
    Io(io::Error),
}

impl From<FrameError> for FrameReadError {
    fn from(e: FrameError) -> Self {
        FrameReadError::Frame(e)
    }
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Frame(e) => write!(f, "{e}"),
            FrameReadError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

/// Incremental frame reader over any blocking `Read`.
///
/// Buffers partial frames across reads, so it works with read timeouts
/// (the server's shutdown poll) and with pipelined peers that pack many
/// frames into one TCP segment.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max: u32,
}

impl FrameReader {
    /// A reader enforcing the `max` payload cap.
    pub fn new(max: u32) -> Self {
        FrameReader {
            buf: Vec::new(),
            max,
        }
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Read until one complete frame, a timeout, EOF, or an error.
    pub fn poll(&mut self, r: &mut impl Read) -> Result<FramePoll, FrameReadError> {
        loop {
            if let Some((payload, consumed)) = decode_frame(&self.buf, self.max)? {
                self.buf.drain(..consumed);
                return Ok(FramePoll::Frame(payload));
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(FramePoll::Eof)
                    } else {
                        Err(FrameError::Corrupt {
                            what: "connection closed mid-frame (torn tail)",
                        }
                        .into())
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(FramePoll::Idle);
                }
                Err(e) => return Err(FrameReadError::Io(e)),
            }
        }
    }
}

/// Frame and write `payload` to `w` in one syscall-friendly buffer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(payload))
}

/// Why a well-framed payload was refused as a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The body violated the codec (short read, bad UTF-8, bad path).
    Codec {
        /// What the codec refused.
        what: &'static str,
    },
    /// The leading tag byte names no known message.
    UnknownTag {
        /// The offending tag.
        tag: u8,
    },
    /// Bytes remained after the message body: the frame was not
    /// exactly one message, so it is refused whole.
    TrailingBytes {
        /// How many bytes trailed.
        count: usize,
    },
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec { what: e.what }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Codec { what } => write!(f, "malformed message body: {what}"),
            WireError::UnknownTag { tag } => write!(f, "unknown message tag {tag}"),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after message body")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A client-to-server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a change; acked only after the enqueue is journaled (and
    /// quorum-shipped when replication is configured).
    Enqueue {
        /// Submitting developer.
        author: String,
        /// Change description.
        description: String,
        /// Mainline commit the patch was authored against.
        base: CommitId,
        /// The change itself.
        patch: Patch,
    },
    /// Point-in-time state of a ticket.
    Status {
        /// The ticket to look up.
        ticket: u64,
    },
    /// Long-poll until the ticket reaches a terminal state, the
    /// timeout elapses, or the server drains.
    SubscribeVerdict {
        /// The ticket to watch.
        ticket: u64,
        /// Max wait in milliseconds; 0 waits until drain.
        timeout_ms: u32,
    },
    /// The server's metrics registry as sorted-key JSON.
    Stats,
    /// Current mainline HEAD (what new patches should be based on).
    Head,
}

const REQ_ENQUEUE: u8 = 1;
const REQ_STATUS: u8 = 2;
const REQ_SUBSCRIBE: u8 = 3;
const REQ_STATS: u8 = 4;
const REQ_HEAD: u8 = 5;

impl Request {
    /// Encode as a frame payload (`[tag][body]`).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Request::Enqueue {
                author,
                description,
                base,
                patch,
            } => {
                enc.put_u8(REQ_ENQUEUE);
                enc.put_str(author);
                enc.put_str(description);
                encode_commit(&mut enc, *base);
                encode_patch(&mut enc, patch);
            }
            Request::Status { ticket } => {
                enc.put_u8(REQ_STATUS);
                enc.put_u64(*ticket);
            }
            Request::SubscribeVerdict { ticket, timeout_ms } => {
                enc.put_u8(REQ_SUBSCRIBE);
                enc.put_u64(*ticket);
                enc.put_u32(*timeout_ms);
            }
            Request::Stats => enc.put_u8(REQ_STATS),
            Request::Head => enc.put_u8(REQ_HEAD),
        }
        enc.finish()
    }

    /// Decode a frame payload; refuses unknown tags and trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut dec = Decoder::new(payload);
        let req = match dec.u8()? {
            REQ_ENQUEUE => Request::Enqueue {
                author: dec.str()?.to_string(),
                description: dec.str()?.to_string(),
                base: decode_commit(&mut dec)?,
                patch: decode_patch(&mut dec)?,
            },
            REQ_STATUS => Request::Status { ticket: dec.u64()? },
            REQ_SUBSCRIBE => Request::SubscribeVerdict {
                ticket: dec.u64()?,
                timeout_ms: dec.u32()?,
            },
            REQ_STATS => Request::Stats,
            REQ_HEAD => Request::Head,
            tag => return Err(WireError::UnknownTag { tag }),
        };
        if !dec.is_empty() {
            return Err(WireError::TrailingBytes {
                count: dec.remaining(),
            });
        }
        Ok(req)
    }
}

/// Ticket state as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireTicketState {
    /// Acked and waiting (or building).
    Queued,
    /// Landed on mainline as this commit.
    Landed(CommitId),
    /// Rejected with this reason.
    Rejected(String),
}

impl From<TicketState> for WireTicketState {
    fn from(s: TicketState) -> Self {
        match s {
            TicketState::Queued => WireTicketState::Queued,
            TicketState::Landed(c) => WireTicketState::Landed(c),
            TicketState::Rejected(r) => WireTicketState::Rejected(r),
        }
    }
}

impl WireTicketState {
    /// True for landed/rejected, false for queued.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, WireTicketState::Queued)
    }

    fn encode(&self, enc: &mut Encoder) {
        match self {
            WireTicketState::Queued => enc.put_u8(0),
            WireTicketState::Landed(c) => {
                enc.put_u8(1);
                encode_commit(enc, *c);
            }
            WireTicketState::Rejected(reason) => {
                enc.put_u8(2);
                enc.put_str(reason);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(match dec.u8()? {
            0 => WireTicketState::Queued,
            1 => WireTicketState::Landed(decode_commit(dec)?),
            2 => WireTicketState::Rejected(dec.str()?.to_string()),
            tag => return Err(WireError::UnknownTag { tag }),
        })
    }
}

/// Protocol-level error classes, mirroring [`StoreError`] semantics so
/// a client can tell a refused frame from a dying store from a fenced
/// stale leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or message was refused whole (framing/codec).
    Malformed,
    /// The frame exceeded the size cap.
    TooLarge,
    /// The durable store failed the operation (journal/storage).
    Store,
    /// This server was fenced by a higher-epoch leader; clients must
    /// rediscover the current leader.
    Fenced,
    /// The server is draining for shutdown and accepts no new work.
    Draining,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::TooLarge => 2,
            ErrorCode::Store => 3,
            ErrorCode::Fenced => 4,
            ErrorCode::Draining => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::TooLarge,
            3 => ErrorCode::Store,
            4 => ErrorCode::Fenced,
            5 => ErrorCode::Draining,
            tag => return Err(WireError::UnknownTag { tag }),
        })
    }

    /// Classify a store failure for the wire.
    pub fn for_store_error(e: &StoreError) -> ErrorCode {
        match e {
            StoreError::Fenced { .. } => ErrorCode::Fenced,
            _ => ErrorCode::Store,
        }
    }
}

/// A server-to-client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The enqueue is durable; this ticket is the ack.
    Enqueued {
        /// The assigned ticket.
        ticket: u64,
    },
    /// Answer to `Status`; `None` when the ticket is unknown.
    StatusIs {
        /// The state, if the ticket exists.
        state: Option<WireTicketState>,
    },
    /// Answer to `SubscribeVerdict`: the ticket reached this state.
    Verdict {
        /// The watched ticket.
        ticket: u64,
        /// Its (typically terminal) state.
        state: WireTicketState,
    },
    /// Answer to `SubscribeVerdict`: the wait timed out first.
    VerdictTimeout {
        /// The watched ticket.
        ticket: u64,
    },
    /// Answer to `Stats`: the registry export.
    StatsJson {
        /// Sorted-key JSON document.
        json: String,
    },
    /// Answer to `Head`.
    HeadIs {
        /// Current mainline HEAD.
        commit: CommitId,
    },
    /// Backpressure: the in-flight window is full; retry later.
    Busy {
        /// Queue depth observed when the request was refused.
        queue_depth: u64,
    },
    /// The request failed; see the code for the class.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

const RESP_ENQUEUED: u8 = 1;
const RESP_STATUS_IS: u8 = 2;
const RESP_VERDICT: u8 = 3;
const RESP_VERDICT_TIMEOUT: u8 = 4;
const RESP_STATS_JSON: u8 = 5;
const RESP_HEAD_IS: u8 = 6;
const RESP_BUSY: u8 = 7;
const RESP_ERROR: u8 = 8;

impl Response {
    /// Encode as a frame payload (`[tag][body]`).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Response::Enqueued { ticket } => {
                enc.put_u8(RESP_ENQUEUED);
                enc.put_u64(*ticket);
            }
            Response::StatusIs { state } => {
                enc.put_u8(RESP_STATUS_IS);
                match state {
                    None => enc.put_u8(0),
                    Some(s) => {
                        enc.put_u8(1);
                        s.encode(&mut enc);
                    }
                }
            }
            Response::Verdict { ticket, state } => {
                enc.put_u8(RESP_VERDICT);
                enc.put_u64(*ticket);
                state.encode(&mut enc);
            }
            Response::VerdictTimeout { ticket } => {
                enc.put_u8(RESP_VERDICT_TIMEOUT);
                enc.put_u64(*ticket);
            }
            Response::StatsJson { json } => {
                enc.put_u8(RESP_STATS_JSON);
                enc.put_str(json);
            }
            Response::HeadIs { commit } => {
                enc.put_u8(RESP_HEAD_IS);
                encode_commit(&mut enc, *commit);
            }
            Response::Busy { queue_depth } => {
                enc.put_u8(RESP_BUSY);
                enc.put_u64(*queue_depth);
            }
            Response::Error { code, detail } => {
                enc.put_u8(RESP_ERROR);
                enc.put_u8(code.to_u8());
                enc.put_str(detail);
            }
        }
        enc.finish()
    }

    /// Decode a frame payload; refuses unknown tags and trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut dec = Decoder::new(payload);
        let resp = match dec.u8()? {
            RESP_ENQUEUED => Response::Enqueued { ticket: dec.u64()? },
            RESP_STATUS_IS => Response::StatusIs {
                state: match dec.u8()? {
                    0 => None,
                    1 => Some(WireTicketState::decode(&mut dec)?),
                    tag => return Err(WireError::UnknownTag { tag }),
                },
            },
            RESP_VERDICT => Response::Verdict {
                ticket: dec.u64()?,
                state: WireTicketState::decode(&mut dec)?,
            },
            RESP_VERDICT_TIMEOUT => Response::VerdictTimeout { ticket: dec.u64()? },
            RESP_STATS_JSON => Response::StatsJson {
                json: dec.str()?.to_string(),
            },
            RESP_HEAD_IS => Response::HeadIs {
                commit: decode_commit(&mut dec)?,
            },
            RESP_BUSY => Response::Busy {
                queue_depth: dec.u64()?,
            },
            RESP_ERROR => Response::Error {
                code: ErrorCode::from_u8(dec.u8()?)?,
                detail: dec.str()?.to_string(),
            },
            tag => return Err(WireError::UnknownTag { tag }),
        };
        if !dec.is_empty() {
            return Err(WireError::TrailingBytes {
                count: dec.remaining(),
            });
        }
        Ok(resp)
    }
}

/// Convenience: the wire form of a ticket lookup against the queue.
pub fn status_of(state: Option<TicketState>) -> Response {
    Response::StatusIs {
        state: state.map(WireTicketState::from),
    }
}

/// Convenience: an enqueue ack for `ticket`.
pub fn enqueued(ticket: TicketId) -> Response {
    Response::Enqueued { ticket: ticket.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_vcs::{ObjectId, RepoPath};

    fn commit(b: u8) -> CommitId {
        CommitId(ObjectId::from_raw([b; 32]))
    }

    fn sample_patch() -> Patch {
        Patch::write(RepoPath::new("lib/l.rs").unwrap(), "pub fn l() {}")
    }

    #[test]
    fn frame_roundtrip_and_pipelining() {
        let a = encode_frame(b"alpha");
        let b = encode_frame(b"");
        let c = encode_frame(&[0xFF; 300]);
        let mut wire = Vec::new();
        wire.extend_from_slice(&a);
        wire.extend_from_slice(&b);
        wire.extend_from_slice(&c);
        let (p1, n1) = decode_frame(&wire, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(p1, b"alpha");
        let (p2, n2) = decode_frame(&wire[n1..], MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(p2, b"");
        let (p3, n3) = decode_frame(&wire[n1 + n2..], MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(p3, vec![0xFF; 300]);
        assert_eq!(n1 + n2 + n3, wire.len());
    }

    #[test]
    fn truncated_frame_is_incomplete_not_corrupt() {
        let f = encode_frame(b"payload");
        for cut in 0..f.len() {
            assert_eq!(decode_frame(&f[..cut], MAX_FRAME_BYTES).unwrap(), None);
        }
    }

    #[test]
    fn oversized_length_is_refused() {
        let mut f = encode_frame(b"x");
        f[0..4].copy_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&f, MAX_FRAME_BYTES),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn payload_corruption_is_refused() {
        let mut f = encode_frame(b"payload");
        let last = f.len() - 1;
        f[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&f, MAX_FRAME_BYTES),
            Err(FrameError::Corrupt { .. })
        ));
    }

    #[test]
    fn all_requests_roundtrip() {
        let reqs = [
            Request::Enqueue {
                author: "alice".into(),
                description: "v1".into(),
                base: commit(7),
                patch: sample_patch(),
            },
            Request::Status { ticket: 42 },
            Request::SubscribeVerdict {
                ticket: 42,
                timeout_ms: 1500,
            },
            Request::Stats,
            Request::Head,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn all_responses_roundtrip() {
        let resps = [
            Response::Enqueued { ticket: 9 },
            Response::StatusIs { state: None },
            Response::StatusIs {
                state: Some(WireTicketState::Queued),
            },
            Response::Verdict {
                ticket: 9,
                state: WireTicketState::Landed(commit(3)),
            },
            Response::Verdict {
                ticket: 9,
                state: WireTicketState::Rejected("merge conflict".into()),
            },
            Response::VerdictTimeout { ticket: 9 },
            Response::StatsJson {
                json: "{\"counters\":{}}".into(),
            },
            Response::HeadIs { commit: commit(1) },
            Response::Busy { queue_depth: 128 },
            Response::Error {
                code: ErrorCode::Fenced,
                detail: "epoch 3 fenced this leader".into(),
            },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn trailing_bytes_are_refused_whole() {
        let mut p = Request::Status { ticket: 1 }.encode();
        p.push(0);
        assert!(matches!(
            Request::decode(&p),
            Err(WireError::TrailingBytes { count: 1 })
        ));
        let mut p = Response::Enqueued { ticket: 1 }.encode();
        p.push(9);
        assert!(matches!(
            Response::decode(&p),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn unknown_tags_are_refused() {
        assert!(matches!(
            Request::decode(&[200]),
            Err(WireError::UnknownTag { tag: 200 })
        ));
        assert!(matches!(
            Response::decode(&[0]),
            Err(WireError::UnknownTag { tag: 0 })
        ));
    }
}
