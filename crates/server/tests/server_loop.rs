//! End-to-end tests of the request loop over real loopback sockets:
//! journal-before-ack enqueues, long-poll verdicts, admission-control
//! `Busy` replies, refused-whole malformed frames, idempotent `Stats`
//! exports, and the graceful-drain/restart zero-loss guarantee.

use sq_core::durable::DurableSubmitQueue;
use sq_core::service::StepAction;
use sq_core::{RecoveryConfig, TicketState};
use sq_exec::StepOutcome;
use sq_server::protocol::encode_frame;
use sq_server::{
    Client, Endpoint, ErrorCode, Request, Response, Server, ServerConfig, WireTicketState,
};
use sq_store::{DurableStore, DurableStoreConfig, MemStorage};
use sq_vcs::{Patch, RepoPath, Repository};
use std::sync::{Arc, Mutex};
use std::time::Duration;

type Shared = Arc<Mutex<MemStorage>>;
type Queue = DurableSubmitQueue<DurableStore<Shared>>;

fn shared() -> Shared {
    Arc::new(Mutex::new(MemStorage::new()))
}

fn demo_repo() -> Repository {
    Repository::init([
        ("lib/BUILD", "library(name = \"lib\", srcs = [\"l.rs\"])"),
        ("lib/l.rs", "pub fn l() {}"),
    ])
    .unwrap()
}

fn lib_patch(v: u32) -> Patch {
    Patch::write(
        RepoPath::new("lib/l.rs").unwrap(),
        format!("pub fn l() {{ /* v{v} */ }}"),
    )
}

/// Per-ticket disjoint patches: same-base submissions that don't
/// conflict, so every acked enqueue can land.
fn disjoint_patch(v: u32) -> Patch {
    Patch::write(
        RepoPath::new(format!("lib/gen_{v}.rs")).unwrap(),
        format!("pub fn gen_{v}() {{}}"),
    )
}

fn open_queue(repo: Repository, storage: &Shared) -> Queue {
    DurableSubmitQueue::open(
        repo,
        2,
        RecoveryConfig::disabled(),
        storage.clone(),
        DurableStoreConfig::with_snapshot_every(u64::MAX),
    )
    .unwrap()
}

fn always_pass() -> Box<StepAction> {
    Box::new(|_step, _tree| StepOutcome::Success)
}

fn fast_config() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

fn head_of(client: &mut Client) -> sq_vcs::CommitId {
    match client.call(&Request::Head).unwrap() {
        Response::HeadIs { commit } => commit,
        other => panic!("expected HeadIs, got {other:?}"),
    }
}

fn enqueue(client: &mut Client, author: &str, v: u32) -> u64 {
    let base = head_of(client);
    match client
        .call(&Request::Enqueue {
            author: author.into(),
            description: format!("v{v}"),
            base,
            patch: lib_patch(v),
        })
        .unwrap()
    {
        Response::Enqueued { ticket } => ticket,
        other => panic!("expected Enqueued, got {other:?}"),
    }
}

#[test]
fn enqueue_subscribe_status_over_tcp() {
    let storage = shared();
    let server = Server::start(
        open_queue(demo_repo(), &storage),
        always_pass(),
        fast_config(),
        &[Endpoint::Tcp("127.0.0.1:0".into())],
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();

    let head_before = head_of(&mut client);
    let ticket = enqueue(&mut client, "alice", 1);
    match client
        .call(&Request::SubscribeVerdict {
            ticket,
            timeout_ms: 10_000,
        })
        .unwrap()
    {
        Response::Verdict { state, .. } => assert!(matches!(state, WireTicketState::Landed(_))),
        other => panic!("expected Verdict, got {other:?}"),
    }
    match client.call(&Request::Status { ticket }).unwrap() {
        Response::StatusIs { state: Some(s) } => assert!(s.is_terminal()),
        other => panic!("expected terminal StatusIs, got {other:?}"),
    }
    assert_ne!(head_of(&mut client), head_before, "landing advanced HEAD");

    // Unknown tickets answer None, not an error.
    match client.call(&Request::Status { ticket: 999 }).unwrap() {
        Response::StatusIs { state: None } => {}
        other => panic!("expected unknown StatusIs, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn enqueue_lands_over_unix_socket() {
    let storage = shared();
    let path = std::env::temp_dir().join(format!("sq-server-test-{}.sock", std::process::id()));
    let server = Server::start(
        open_queue(demo_repo(), &storage),
        always_pass(),
        fast_config(),
        &[Endpoint::Uds(path.clone())],
    )
    .unwrap();
    let mut client = Client::connect_uds(server.uds_path().unwrap()).unwrap();
    let ticket = enqueue(&mut client, "bob", 2);
    match client
        .call(&Request::SubscribeVerdict {
            ticket,
            timeout_ms: 10_000,
        })
        .unwrap()
    {
        Response::Verdict { state, .. } => assert!(matches!(state, WireTicketState::Landed(_))),
        other => panic!("expected Verdict, got {other:?}"),
    }
    server.shutdown();
    assert!(!path.exists(), "drain unlinks the socket path");
}

#[test]
fn admission_control_answers_busy_at_the_queue_bound() {
    // No processor: the queue only fills, modelling builders that are
    // far behind the submit rate.
    let storage = shared();
    let server = Server::start(
        open_queue(demo_repo(), &storage),
        always_pass(),
        ServerConfig {
            max_queue_depth: 2,
            drive_queue: false,
            ..fast_config()
        },
        &[Endpoint::Tcp("127.0.0.1:0".into())],
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();
    let base = head_of(&mut client);
    let mut acked = 0;
    let mut busy = 0;
    for v in 0..4 {
        match client
            .call(&Request::Enqueue {
                author: "carol".into(),
                description: format!("v{v}"),
                base,
                patch: lib_patch(v),
            })
            .unwrap()
        {
            Response::Enqueued { .. } => acked += 1,
            Response::Busy { queue_depth } => {
                busy += 1;
                assert!(queue_depth >= 2);
            }
            other => panic!("expected Enqueued or Busy, got {other:?}"),
        }
    }
    assert_eq!(acked, 2, "exactly the window is admitted");
    assert_eq!(busy, 2, "the rest get explicit Busy replies");
    let (queue, metrics) = server.shutdown();
    assert_eq!(queue.queue_depth(), 2);
    assert_eq!(metrics.counter("server.busy_replies"), 2);
    assert_eq!(metrics.counter("server.enqueues.acked"), 2);
}

#[test]
fn malformed_frames_are_refused_whole_and_close_the_connection() {
    let storage = shared();
    let server = Server::start(
        open_queue(demo_repo(), &storage),
        always_pass(),
        fast_config(),
        &[Endpoint::Tcp("127.0.0.1:0".into())],
    )
    .unwrap();

    // Valid framing, garbage payload: Error { Malformed }, then EOF.
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();
    client.send_raw(&encode_frame(&[0xEE, 1, 2, 3])).unwrap();
    match client.recv().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Error, got {other:?}"),
    }
    assert!(client.recv().is_err(), "server hangs up after refusal");

    // Corrupt CRC: refused whole at the framing layer.
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();
    let mut frame = encode_frame(&Request::Stats.encode());
    let last = frame.len() - 1;
    frame[last] ^= 0x40;
    client.send_raw(&frame).unwrap();
    match client.recv().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Error, got {other:?}"),
    }

    // A fresh connection still works: refusal poisoned one connection,
    // not the server.
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();
    let ticket = enqueue(&mut client, "dave", 3);
    match client
        .call(&Request::SubscribeVerdict {
            ticket,
            timeout_ms: 10_000,
        })
        .unwrap()
    {
        Response::Verdict { state, .. } => assert!(matches!(state, WireTicketState::Landed(_))),
        other => panic!("expected Verdict, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn stats_export_is_idempotent_over_the_wire() {
    let storage = shared();
    let server = Server::start(
        open_queue(demo_repo(), &storage),
        always_pass(),
        fast_config(),
        &[Endpoint::Tcp("127.0.0.1:0".into())],
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();
    let ticket = enqueue(&mut client, "erin", 4);
    client
        .call(&Request::SubscribeVerdict {
            ticket,
            timeout_ms: 10_000,
        })
        .unwrap();

    let stats = |client: &mut Client| -> String {
        match client.call(&Request::Stats).unwrap() {
            Response::StatsJson { json } => json,
            other => panic!("expected StatsJson, got {other:?}"),
        }
    };
    // Two sequential Stats exports with no intervening queue work:
    // the store.* counters must be identical (the double-counting
    // regression), while the server's own request counters advance.
    let a = stats(&mut client);
    let b = stats(&mut client);
    let counter = |json: &str, name: &str| -> String {
        let key = format!("\"{name}\":");
        let at = json
            .find(&key)
            .unwrap_or_else(|| panic!("{name} in {json}"));
        json[at + key.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect()
    };
    assert_eq!(
        counter(&a, "store.journal.appends"),
        counter(&b, "store.journal.appends"),
        "periodic Stats must not double-count journal appends"
    );
    assert!(a.contains("server.requests.enqueue"));
    assert!(a.contains("server.enqueues.acked"));
    server.shutdown();
}

#[test]
fn graceful_drain_loses_no_acked_enqueues_across_restart() {
    let storage = shared();
    let repo = demo_repo();
    let server = Server::start(
        open_queue(repo.clone(), &storage),
        always_pass(),
        // No processor: every ack is still queued at drain time, the
        // worst case for durability.
        ServerConfig {
            drive_queue: false,
            ..fast_config()
        },
        &[Endpoint::Tcp("127.0.0.1:0".into())],
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();
    let base = head_of(&mut client);
    let mut tickets = Vec::new();
    for v in 0..3 {
        match client
            .call(&Request::Enqueue {
                author: "frank".into(),
                description: format!("v{v}"),
                base,
                patch: disjoint_patch(v),
            })
            .unwrap()
        {
            Response::Enqueued { ticket } => tickets.push(ticket),
            other => panic!("expected Enqueued, got {other:?}"),
        }
    }
    let (queue, _) = server.shutdown();
    let exported = queue.export_state_json();
    let repo_after = queue.repository();
    drop(queue);

    // "Restart": recover from the same storage, serve again.
    let recovered = open_queue(repo_after, &storage);
    assert_eq!(
        recovered.export_state_json(),
        exported,
        "recovery is byte-identical to the drained state"
    );
    let server = Server::start(
        recovered,
        always_pass(),
        fast_config(),
        &[Endpoint::Tcp("127.0.0.1:0".into())],
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();
    for &t in &tickets {
        match client
            .call(&Request::SubscribeVerdict {
                ticket: t,
                timeout_ms: 10_000,
            })
            .unwrap()
        {
            Response::Verdict { state, .. } => assert!(
                matches!(state, WireTicketState::Landed(_)),
                "acked ticket {t} must land after restart"
            ),
            other => panic!("expected Verdict, got {other:?}"),
        }
    }
    let (queue, _) = server.shutdown();
    assert_eq!(queue.queue_depth(), 0);
    for &t in &tickets {
        assert!(matches!(
            queue.status(sq_core::TicketId(t)),
            Some(TicketState::Landed(_))
        ));
    }
}

#[test]
fn subscribe_honours_its_timeout_when_nothing_lands() {
    let storage = shared();
    let server = Server::start(
        open_queue(demo_repo(), &storage),
        always_pass(),
        ServerConfig {
            drive_queue: false,
            ..fast_config()
        },
        &[Endpoint::Tcp("127.0.0.1:0".into())],
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();
    let base = head_of(&mut client);
    let ticket = match client
        .call(&Request::Enqueue {
            author: "gina".into(),
            description: "v0".into(),
            base,
            patch: lib_patch(0),
        })
        .unwrap()
    {
        Response::Enqueued { ticket } => ticket,
        other => panic!("expected Enqueued, got {other:?}"),
    };
    match client
        .call(&Request::SubscribeVerdict {
            ticket,
            timeout_ms: 50,
        })
        .unwrap()
    {
        Response::VerdictTimeout { ticket: t } => assert_eq!(t, ticket),
        other => panic!("expected VerdictTimeout, got {other:?}"),
    }
    server.shutdown();
}
