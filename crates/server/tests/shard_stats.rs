//! Stats round-trip for the per-shard queue-depth export: queued
//! submissions grouped by patch top-level directory surface as
//! `server.shard.<dir>.queue_depth` gauges — purely additive JSON keys
//! next to the existing `server.queue_depth` — and a shard that drains
//! re-exports as zero instead of lingering at its last depth.

use sq_core::durable::DurableSubmitQueue;
use sq_core::service::StepAction;
use sq_core::RecoveryConfig;
use sq_exec::StepOutcome;
use sq_server::{Client, Endpoint, Request, Response, Server, ServerConfig};
use sq_store::{DurableStore, DurableStoreConfig, MemStorage};
use sq_vcs::{FileOp, Patch, RepoPath, Repository};
use std::sync::{Arc, Mutex};
use std::time::Duration;

type Shared = Arc<Mutex<MemStorage>>;
type Queue = DurableSubmitQueue<DurableStore<Shared>>;

fn demo_repo() -> Repository {
    Repository::init([
        ("lib/BUILD", "library(name = \"lib\", srcs = [\"l.rs\"])"),
        ("lib/l.rs", "pub fn l() {}"),
        ("app/BUILD", "binary(name = \"app\", srcs = [\"main.rs\"])"),
        ("app/main.rs", "fn main() {}"),
    ])
    .unwrap()
}

fn open_queue(repo: Repository, storage: &Shared) -> Queue {
    DurableSubmitQueue::open(
        repo,
        2,
        RecoveryConfig::disabled(),
        storage.clone(),
        DurableStoreConfig::with_snapshot_every(u64::MAX),
    )
    .unwrap()
}

fn always_pass() -> Box<StepAction> {
    Box::new(|_step, _tree| StepOutcome::Success)
}

fn write(path: &str, content: &str) -> FileOp {
    FileOp::Write {
        path: RepoPath::new(path).unwrap(),
        content: content.into(),
    }
}

fn head_of(client: &mut Client) -> sq_vcs::CommitId {
    match client.call(&Request::Head).unwrap() {
        Response::HeadIs { commit } => commit,
        other => panic!("expected HeadIs, got {other:?}"),
    }
}

fn enqueue(client: &mut Client, desc: &str, patch: Patch) -> u64 {
    let base = head_of(client);
    match client
        .call(&Request::Enqueue {
            author: "shard-tester".into(),
            description: desc.into(),
            base,
            patch,
        })
        .unwrap()
    {
        Response::Enqueued { ticket } => ticket,
        other => panic!("expected Enqueued, got {other:?}"),
    }
}

fn stats(client: &mut Client) -> String {
    match client.call(&Request::Stats).unwrap() {
        Response::StatsJson { json } => json,
        other => panic!("expected StatsJson, got {other:?}"),
    }
}

/// Extract a numeric JSON value by key, or None when the key is absent.
fn number(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let at = json.find(&key)?;
    let raw: String = json[at + key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    Some(raw.parse().expect("numeric value"))
}

#[test]
fn stats_surface_per_shard_queue_depth_over_the_wire() {
    // No processor: the queue only fills, so the grouped depths are
    // deterministic when Stats reads them.
    let storage: Shared = Arc::new(Mutex::new(MemStorage::new()));
    let server = Server::start(
        open_queue(demo_repo(), &storage),
        always_pass(),
        ServerConfig {
            poll_interval: Duration::from_millis(5),
            drive_queue: false,
            ..ServerConfig::default()
        },
        &[Endpoint::Tcp("127.0.0.1:0".into())],
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();

    // Two lib-only submissions, one app-only, one straddling both
    // top-level directories (a cross-shard footprint).
    enqueue(
        &mut client,
        "lib-1",
        Patch::from_ops([write("lib/a.rs", "pub fn a() {}")]),
    );
    enqueue(
        &mut client,
        "lib-2",
        Patch::from_ops([write("lib/b.rs", "pub fn b() {}")]),
    );
    enqueue(
        &mut client,
        "app-1",
        Patch::from_ops([write("app/a.rs", "pub fn a() {}")]),
    );
    enqueue(
        &mut client,
        "wide",
        Patch::from_ops([
            write("lib/w.rs", "pub fn w() {}"),
            write("app/w.rs", "pub fn w() {}"),
        ]),
    );

    let json = stats(&mut client);
    // The pre-existing global key is untouched (backward compatible)…
    assert_eq!(number(&json, "server.queue_depth"), Some(4.0));
    // …and the per-shard keys are added next to it.
    assert_eq!(number(&json, "server.shard.lib.queue_depth"), Some(2.0));
    assert_eq!(number(&json, "server.shard.app.queue_depth"), Some(1.0));
    assert_eq!(number(&json, "server.shard.(cross).queue_depth"), Some(1.0));

    // The wire export matches the queue's own grouping exactly.
    let (queue, _) = server.shutdown();
    assert_eq!(
        queue.queue_depth_by_dir(),
        vec![
            ("(cross)".to_string(), 1),
            ("app".to_string(), 1),
            ("lib".to_string(), 2),
        ]
    );
}

#[test]
fn drained_shards_re_export_as_zero_not_stale_depths() {
    let storage: Shared = Arc::new(Mutex::new(MemStorage::new()));
    let server = Server::start(
        open_queue(demo_repo(), &storage),
        always_pass(),
        ServerConfig {
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
        &[Endpoint::Tcp("127.0.0.1:0".into())],
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.tcp_addr().unwrap()).unwrap();

    let ticket = enqueue(
        &mut client,
        "lib-1",
        Patch::from_ops([write("lib/a.rs", "pub fn a() {}")]),
    );
    // Export once while the submission may still be queued (seeds the
    // shard key set), then wait for it to land.
    let _ = stats(&mut client);
    match client
        .call(&Request::SubscribeVerdict {
            ticket,
            timeout_ms: 10_000,
        })
        .unwrap()
    {
        Response::Verdict { .. } => {}
        other => panic!("expected Verdict, got {other:?}"),
    }

    // After landing, any shard gauge present must read zero — never a
    // stale pre-drain depth.
    let json = stats(&mut client);
    assert_eq!(number(&json, "server.queue_depth"), Some(0.0));
    if let Some(depth) = number(&json, "server.shard.lib.queue_depth") {
        assert_eq!(depth, 0.0, "drained shard must re-export as zero");
    }
    server.shutdown();
}
