//! Property tests for the wire protocol, mirroring the store's
//! `replicate_props`: every message type round-trips bit-exactly, any
//! truncation yields "incomplete" (never a wrong frame), any single
//! bit flip is refused whole, and pipelined frame boundaries are
//! preserved exactly through both the pure decoder and the incremental
//! `FrameReader` under arbitrary read fragmentation.

use proptest::prelude::*;
use sq_server::protocol::{
    decode_frame, encode_frame, FramePoll, FrameReader, Request, Response, WireTicketState,
    MAX_FRAME_BYTES,
};
use sq_vcs::{CommitId, FileOp, ObjectId, Patch, RepoPath};
use std::io::Read;

fn commit_from(bytes: Vec<u8>) -> CommitId {
    let mut raw = [0u8; 32];
    for (i, b) in bytes.iter().take(32).enumerate() {
        raw[i] = *b;
    }
    CommitId(ObjectId::from_raw(raw))
}

fn arb_commit() -> impl Strategy<Value = CommitId> {
    proptest::collection::vec(any::<u8>(), 32..33).prop_map(commit_from)
}

/// Arbitrary unicode strings (the codec length-prefixes, so content is
/// unconstrained).
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<char>(), 0..16).prop_map(|cs| cs.into_iter().collect())
}

/// Patches over generated-but-valid repo paths with arbitrary file
/// content (write) or deletes.
fn arb_patch() -> impl Strategy<Value = Patch> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), arb_string()), 0..5).prop_map(|ops| {
        let mut patch = Patch::new();
        for (tag, path_seed, content) in ops {
            let path = RepoPath::new(format!("pkg{}/f{}.rs", path_seed % 7, path_seed))
                .expect("generated path is valid");
            if tag % 2 == 0 {
                patch.push(FileOp::Write { path, content });
            } else {
                patch.push(FileOp::Delete { path });
            }
        }
        patch
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (arb_string(), arb_string(), arb_commit(), arb_patch()).prop_map(
            |(author, description, base, patch)| Request::Enqueue {
                author,
                description,
                base,
                patch,
            }
        ),
        any::<u64>().prop_map(|ticket| Request::Status { ticket }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(ticket, timeout_ms)| { Request::SubscribeVerdict { ticket, timeout_ms } }),
        Just(Request::Stats),
        Just(Request::Head),
    ]
}

fn arb_state() -> impl Strategy<Value = WireTicketState> {
    prop_oneof![
        Just(WireTicketState::Queued),
        arb_commit().prop_map(WireTicketState::Landed),
        arb_string().prop_map(WireTicketState::Rejected),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u64>().prop_map(|ticket| Response::Enqueued { ticket }),
        prop_oneof![Just(None), arb_state().prop_map(Some)]
            .prop_map(|state| Response::StatusIs { state }),
        (any::<u64>(), arb_state()).prop_map(|(ticket, state)| Response::Verdict { ticket, state }),
        any::<u64>().prop_map(|ticket| Response::VerdictTimeout { ticket }),
        arb_string().prop_map(|json| Response::StatsJson { json }),
        arb_commit().prop_map(|commit| Response::HeadIs { commit }),
        any::<u64>().prop_map(|queue_depth| Response::Busy { queue_depth }),
    ]
}

/// A reader that hands out at most `chunk` bytes per read call,
/// exercising arbitrary fragmentation of the byte stream.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf
            .len()
            .min(self.chunk.max(1))
            .min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Encode/decode round-trip for every request type.
    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let payload = req.encode();
        prop_assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    /// Encode/decode round-trip for every response type.
    #[test]
    fn responses_roundtrip(resp in arb_response()) {
        let payload = resp.encode();
        prop_assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    /// A strict prefix of a frame never decodes to anything: it is
    /// "incomplete", not a smaller frame and not garbage.
    #[test]
    fn any_truncation_is_incomplete(req in arb_request(), cut_seed in any::<u64>()) {
        let frame = encode_frame(&req.encode());
        let cut = (cut_seed as usize) % frame.len();
        prop_assert_eq!(decode_frame(&frame[..cut], MAX_FRAME_BYTES).unwrap(), None);
    }

    /// Any single bit flip anywhere in a frame is refused whole: the
    /// decoder never yields a payload from a damaged frame. (A flip in
    /// the length field may also read as "incomplete" — what it can
    /// never do is produce a frame.)
    #[test]
    fn any_single_bit_flip_is_refused(req in arb_request(), flip_seed in any::<u64>()) {
        let mut frame = encode_frame(&req.encode());
        let bit = (flip_seed as usize) % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            !matches!(decode_frame(&frame, MAX_FRAME_BYTES), Ok(Some(_))),
            "bit flip {bit} yielded a frame"
        );
    }

    /// Pipelined frames decode one at a time with boundaries preserved
    /// exactly, via the pure decoder.
    #[test]
    fn pipelined_boundaries_are_preserved(reqs in proptest::collection::vec(arb_request(), 1..6)) {
        let mut wire = Vec::new();
        for r in &reqs {
            wire.extend_from_slice(&encode_frame(&r.encode()));
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while offset < wire.len() {
            let (payload, consumed) = decode_frame(&wire[offset..], MAX_FRAME_BYTES)
                .unwrap()
                .expect("complete frame");
            decoded.push(Request::decode(&payload).unwrap());
            offset += consumed;
        }
        prop_assert_eq!(offset, wire.len());
        prop_assert_eq!(decoded, reqs);
    }

    /// The incremental reader reassembles the same frames regardless of
    /// how the transport fragments its reads.
    #[test]
    fn frame_reader_survives_arbitrary_fragmentation(
        reqs in proptest::collection::vec(arb_request(), 1..6),
        chunk in 1usize..17,
    ) {
        let mut wire = Vec::new();
        for r in &reqs {
            wire.extend_from_slice(&encode_frame(&r.encode()));
        }
        let mut rd = ChunkedReader { data: wire, pos: 0, chunk };
        let mut reader = FrameReader::new(MAX_FRAME_BYTES);
        let mut decoded = Vec::new();
        loop {
            match reader.poll(&mut rd).expect("clean stream") {
                FramePoll::Frame(payload) => decoded.push(Request::decode(&payload).unwrap()),
                FramePoll::Eof => break,
                FramePoll::Idle => unreachable!("ChunkedReader never times out"),
            }
        }
        prop_assert_eq!(decoded, reqs);
    }

    /// A stream cut mid-frame is refused as torn when the peer hangs
    /// up, mirroring the journal's torn-tail discipline.
    #[test]
    fn torn_stream_tail_is_refused(req in arb_request(), cut_seed in any::<u64>()) {
        let frame = encode_frame(&req.encode());
        let cut = 1 + (cut_seed as usize) % (frame.len() - 1);
        let mut rd = ChunkedReader { data: frame[..cut].to_vec(), pos: 0, chunk: 7 };
        let mut reader = FrameReader::new(MAX_FRAME_BYTES);
        match reader.poll(&mut rd) {
            Err(_) => {}
            Ok(p) => prop_assert!(
                matches!(p, FramePoll::Eof) && cut == 0,
                "torn tail must error, got {p:?}"
            ),
        }
    }
}
