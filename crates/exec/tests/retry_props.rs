//! Property tests for the retry policy's backoff schedule: the failure
//! model's determinism guarantee hinges on backoffs being a pure
//! function of `(policy, seed, attempt)`, and charged delay growing
//! monotonically with attempt count.

use proptest::prelude::*;
use sq_exec::RetryPolicy;
use sq_sim::SimDuration;

fn policy(
    seed: u64,
    base_secs: u64,
    multiplier: f64,
    cap_secs: u64,
    max_attempts: u32,
) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base: SimDuration::from_secs(base_secs),
        multiplier,
        max_backoff: SimDuration::from_secs(cap_secs),
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn equal_seeds_give_identical_schedules(
        seed in 0u64..u64::MAX,
        base in 1u64..120,
        cap in 120u64..3_600,
        attempts in 1u32..16,
    ) {
        let a = policy(seed, base, 2.0, cap, attempts + 1);
        let b = policy(seed, base, 2.0, cap, attempts + 1);
        for k in 1..=attempts {
            prop_assert_eq!(a.backoff(k), b.backoff(k), "attempt {}", k);
        }
        prop_assert_eq!(a.total_backoff(attempts), b.total_backoff(attempts));
    }

    #[test]
    fn distinct_seeds_eventually_diverge(
        seed in 0u64..(u64::MAX / 2),
        base in 10u64..120,
    ) {
        let a = policy(seed, base, 2.0, 3_600, 8);
        let b = policy(seed + 1, base, 2.0, 3_600, 8);
        // Jitter is seed-keyed: across 8 attempts at least one backoff
        // must differ (collision of all 8 draws would defeat the point).
        let differs = (1..=8u32).any(|k| a.backoff(k) != b.backoff(k));
        prop_assert!(differs);
    }

    #[test]
    fn total_charged_delay_is_monotone_in_attempts(
        seed in 0u64..u64::MAX,
        base in 1u64..300,
        cap in 1u64..7_200,
        attempts in 1u32..20,
    ) {
        let p = policy(seed, base, 1.7, cap, attempts + 2);
        let mut prev = SimDuration::ZERO;
        for k in 1..=attempts {
            let total = p.total_backoff(k);
            prop_assert!(total >= prev, "total charged delay shrank at attempt {}", k);
            prev = total;
        }
    }

    #[test]
    fn each_backoff_respects_the_cap(
        seed in 0u64..u64::MAX,
        base in 1u64..600,
        cap in 1u64..600,
        attempt in 1u32..24,
    ) {
        let p = policy(seed, base, 2.0, cap, 32);
        prop_assert!(p.backoff(attempt) <= SimDuration::from_secs(cap));
    }
}
