//! Worker-pool capacity model for the discrete-event simulator.
//!
//! The paper's evaluation grid sweeps 100–500 workers against 100–500
//! changes/hour; a speculation build occupies one worker (a Mac Mini) for
//! its duration. This model does the corresponding bookkeeping: capacity,
//! occupancy, and utilization accounting over simulated time — both in
//! aggregate and **per worker**, so the observability layer can report
//! the fleet's load distribution, not just its mean.
//!
//! Two API levels coexist:
//!
//! * the indexed API ([`WorkerPool::acquire_worker`],
//!   [`WorkerPool::release_worker`]) identifies which worker a build
//!   occupies (lowest-index-idle assignment, deterministic), enabling
//!   per-worker busy-time attribution;
//! * the anonymous API ([`WorkerPool::acquire`], [`WorkerPool::release`])
//!   is the original capacity-only interface, kept for callers that only
//!   care about saturation; it delegates to the indexed one (LIFO
//!   release), so aggregate accounting is identical either way.

use sq_sim::{SimDuration, SimTime};

/// Per-worker occupancy state.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    /// When the current occupation started (`None` = idle).
    since: Option<SimTime>,
    /// Accumulated busy time over closed occupations, in microseconds.
    busy_us: u128,
}

/// A fixed pool of identical workers.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    slots: Vec<Slot>,
    busy: usize,
    /// Integral of busy workers over time (worker-microseconds), for
    /// utilization reporting.
    busy_integral: u128,
    last_update: SimTime,
    /// Workers acquired through the anonymous API, released LIFO.
    anon: Vec<usize>,
}

impl WorkerPool {
    /// A pool with `total` workers, all idle. Panics if `total == 0`.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "a worker pool needs at least one worker");
        WorkerPool {
            slots: vec![Slot::default(); total],
            busy: 0,
            busy_integral: 0,
            last_update: SimTime::ZERO,
            anon: Vec::new(),
        }
    }

    /// Total capacity.
    pub fn total(&self) -> usize {
        self.slots.len()
    }

    /// Currently occupied workers.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Currently idle workers.
    pub fn idle(&self) -> usize {
        self.total() - self.busy
    }

    /// True iff at least one worker is idle.
    pub fn has_capacity(&self) -> bool {
        self.busy < self.total()
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_update);
        self.busy_integral += dt.as_micros() as u128 * self.busy as u128;
        self.last_update = now;
    }

    /// Occupy the lowest-indexed idle worker at simulated time `now`,
    /// returning its index, or `None` when the pool is saturated.
    pub fn acquire_worker(&mut self, now: SimTime) -> Option<usize> {
        self.advance(now);
        let idx = self.slots.iter().position(|s| s.since.is_none())?;
        self.slots[idx].since = Some(now);
        self.busy += 1;
        Some(idx)
    }

    /// Release worker `idx` at simulated time `now`, crediting its busy
    /// time since acquisition.
    ///
    /// # Panics
    /// Panics if `idx` is out of range or idle — that is always a
    /// planner bug (double release loses capacity accounting silently
    /// otherwise).
    pub fn release_worker(&mut self, idx: usize, now: SimTime) {
        self.advance(now);
        let slot = &mut self.slots[idx];
        let since = slot
            .since
            .take()
            .expect("release_worker without matching acquire");
        slot.busy_us += now.since(since).as_micros() as u128;
        self.busy -= 1;
    }

    /// Occupy one worker at simulated time `now` (anonymous API).
    /// Returns `false` (and changes nothing) when the pool is saturated.
    pub fn acquire(&mut self, now: SimTime) -> bool {
        match self.acquire_worker(now) {
            Some(idx) => {
                self.anon.push(idx);
                true
            }
            None => false,
        }
    }

    /// Release one worker at simulated time `now` (anonymous API):
    /// the most recently anonymously-acquired worker, or the
    /// lowest-indexed busy one if the anonymous stack is empty.
    ///
    /// # Panics
    /// Panics if no worker is busy.
    pub fn release(&mut self, now: SimTime) {
        let idx = self.anon.pop().unwrap_or_else(|| {
            self.slots
                .iter()
                .position(|s| s.since.is_some())
                .expect("release without matching acquire")
        });
        self.release_worker(idx, now);
    }

    /// Mean utilization in [0, 1] over `[0, now]`.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        let elapsed = now.as_micros() as u128;
        if elapsed == 0 {
            return 0.0;
        }
        self.busy_integral as f64 / (elapsed as f64 * self.total() as f64)
    }

    /// Busy time of each worker over `[0, now]`, including any
    /// still-open occupation.
    pub fn per_worker_busy(&self, now: SimTime) -> Vec<SimDuration> {
        self.slots
            .iter()
            .map(|s| {
                let open = s
                    .since
                    .map(|t| now.since(t).as_micros() as u128)
                    .unwrap_or(0);
                let total = (s.busy_us + open).min(u64::MAX as u128) as u64;
                SimDuration::from_micros(total)
            })
            .collect()
    }

    /// Per-worker utilization in [0, 1] over `[0, now]` (all zeros at
    /// time zero).
    pub fn per_worker_utilization(&self, now: SimTime) -> Vec<f64> {
        let elapsed = now.as_micros() as f64;
        self.per_worker_busy(now)
            .into_iter()
            .map(|b| {
                if elapsed == 0.0 {
                    0.0
                } else {
                    b.as_micros() as f64 / elapsed
                }
            })
            .collect()
    }
}

/// Convenience: how long a build occupying one worker takes, given the
/// amount of incremental work and a floor for fixed overheads (fetch,
/// queueing, artifact upload). Used by the simulation-facing controller.
pub fn build_occupancy(work: SimDuration, overhead: SimDuration) -> SimDuration {
    work + overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut p = WorkerPool::new(2);
        let t0 = SimTime::ZERO;
        assert!(p.acquire(t0));
        assert!(p.acquire(t0));
        assert!(!p.acquire(t0));
        assert_eq!(p.busy(), 2);
        assert_eq!(p.idle(), 0);
        p.release(SimTime::from_secs(10));
        assert!(p.has_capacity());
        assert!(p.acquire(SimTime::from_secs(10)));
    }

    #[test]
    #[should_panic]
    fn release_without_acquire_panics() {
        let mut p = WorkerPool::new(1);
        p.release(SimTime::from_secs(1));
    }

    #[test]
    #[should_panic]
    fn release_worker_when_idle_panics() {
        let mut p = WorkerPool::new(2);
        p.release_worker(0, SimTime::from_secs(1));
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn utilization_integrates_occupancy() {
        let mut p = WorkerPool::new(2);
        // One worker busy for the first half of a 100s window, both idle
        // after: utilization = (1 × 50) / (2 × 100) = 0.25.
        assert!(p.acquire(SimTime::ZERO));
        p.release(SimTime::from_secs(50));
        let u = p.utilization(SimTime::from_secs(100));
        assert!((u - 0.25).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn utilization_full_load() {
        let mut p = WorkerPool::new(3);
        for _ in 0..3 {
            assert!(p.acquire(SimTime::ZERO));
        }
        let u = p.utilization(SimTime::from_secs(60));
        assert!((u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_at_time_zero_is_zero() {
        let mut p = WorkerPool::new(1);
        assert_eq!(p.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn indexed_acquire_assigns_lowest_idle() {
        let mut p = WorkerPool::new(3);
        assert_eq!(p.acquire_worker(SimTime::ZERO), Some(0));
        assert_eq!(p.acquire_worker(SimTime::ZERO), Some(1));
        p.release_worker(0, SimTime::from_secs(5));
        // Index 0 is idle again and is reassigned before index 2.
        assert_eq!(p.acquire_worker(SimTime::from_secs(5)), Some(0));
        assert_eq!(p.acquire_worker(SimTime::from_secs(5)), Some(2));
        assert_eq!(p.acquire_worker(SimTime::from_secs(5)), None);
    }

    #[test]
    fn per_worker_busy_attribution() {
        let mut p = WorkerPool::new(2);
        let w0 = p.acquire_worker(SimTime::ZERO).unwrap();
        let w1 = p.acquire_worker(SimTime::ZERO).unwrap();
        p.release_worker(w0, SimTime::from_secs(30));
        p.release_worker(w1, SimTime::from_secs(100));
        let busy = p.per_worker_busy(SimTime::from_secs(100));
        assert_eq!(busy[0], SimDuration::from_secs(30));
        assert_eq!(busy[1], SimDuration::from_secs(100));
        let util = p.per_worker_utilization(SimTime::from_secs(100));
        assert!((util[0] - 0.3).abs() < 1e-9);
        assert!((util[1] - 1.0).abs() < 1e-9);
        // Aggregate utilization agrees with the per-worker mean.
        let agg = p.utilization(SimTime::from_secs(100));
        assert!((agg - (0.3 + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn open_occupation_counts_toward_busy_time() {
        let mut p = WorkerPool::new(1);
        p.acquire_worker(SimTime::ZERO).unwrap();
        let busy = p.per_worker_busy(SimTime::from_secs(10));
        assert_eq!(busy[0], SimDuration::from_secs(10));
        // Still busy; querying did not mutate anything.
        assert_eq!(p.busy(), 1);
    }

    #[test]
    fn anonymous_release_is_lifo() {
        let mut p = WorkerPool::new(2);
        assert!(p.acquire(SimTime::ZERO)); // worker 0
        assert!(p.acquire(SimTime::ZERO)); // worker 1
        p.release(SimTime::from_secs(10)); // releases worker 1
        let busy = p.per_worker_busy(SimTime::from_secs(10));
        assert_eq!(busy[1], SimDuration::from_secs(10));
        assert_eq!(p.busy(), 1);
    }

    #[test]
    fn occupancy_helper() {
        assert_eq!(
            build_occupancy(SimDuration::from_mins(30), SimDuration::from_secs(90)),
            SimDuration::from_micros(30 * 60_000_000 + 90_000_000)
        );
    }
}
