//! Worker-pool capacity model for the discrete-event simulator.
//!
//! The paper's evaluation grid sweeps 100–500 workers against 100–500
//! changes/hour; a speculation build occupies one worker (a Mac Mini) for
//! its duration. This model does the corresponding bookkeeping: capacity,
//! occupancy, and utilization accounting over simulated time.

use sq_sim::{SimDuration, SimTime};

/// A fixed pool of identical workers.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    total: usize,
    busy: usize,
    /// Integral of busy workers over time (worker-microseconds), for
    /// utilization reporting.
    busy_integral: u128,
    last_update: SimTime,
}

impl WorkerPool {
    /// A pool with `total` workers, all idle. Panics if `total == 0`.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "a worker pool needs at least one worker");
        WorkerPool {
            total,
            busy: 0,
            busy_integral: 0,
            last_update: SimTime::ZERO,
        }
    }

    /// Total capacity.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Currently occupied workers.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Currently idle workers.
    pub fn idle(&self) -> usize {
        self.total - self.busy
    }

    /// True iff at least one worker is idle.
    pub fn has_capacity(&self) -> bool {
        self.busy < self.total
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_update);
        self.busy_integral += dt.as_micros() as u128 * self.busy as u128;
        self.last_update = now;
    }

    /// Occupy one worker at simulated time `now`. Returns `false` (and
    /// changes nothing) when the pool is saturated.
    pub fn acquire(&mut self, now: SimTime) -> bool {
        self.advance(now);
        if self.busy < self.total {
            self.busy += 1;
            true
        } else {
            false
        }
    }

    /// Release one worker at simulated time `now`.
    ///
    /// # Panics
    /// Panics if no worker is busy — that is always a planner bug
    /// (double release loses capacity accounting silently otherwise).
    pub fn release(&mut self, now: SimTime) {
        self.advance(now);
        assert!(self.busy > 0, "release without matching acquire");
        self.busy -= 1;
    }

    /// Mean utilization in [0, 1] over `[0, now]`.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        let elapsed = now.as_micros() as u128;
        if elapsed == 0 {
            return 0.0;
        }
        self.busy_integral as f64 / (elapsed as f64 * self.total as f64)
    }
}

/// Convenience: how long a build occupying one worker takes, given the
/// amount of incremental work and a floor for fixed overheads (fetch,
/// queueing, artifact upload). Used by the simulation-facing controller.
pub fn build_occupancy(work: SimDuration, overhead: SimDuration) -> SimDuration {
    work + overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut p = WorkerPool::new(2);
        let t0 = SimTime::ZERO;
        assert!(p.acquire(t0));
        assert!(p.acquire(t0));
        assert!(!p.acquire(t0));
        assert_eq!(p.busy(), 2);
        assert_eq!(p.idle(), 0);
        p.release(SimTime::from_secs(10));
        assert!(p.has_capacity());
        assert!(p.acquire(SimTime::from_secs(10)));
    }

    #[test]
    #[should_panic]
    fn release_without_acquire_panics() {
        let mut p = WorkerPool::new(1);
        p.release(SimTime::from_secs(1));
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn utilization_integrates_occupancy() {
        let mut p = WorkerPool::new(2);
        // One worker busy for the first half of a 100s window, both idle
        // after: utilization = (1 × 50) / (2 × 100) = 0.25.
        assert!(p.acquire(SimTime::ZERO));
        p.release(SimTime::from_secs(50));
        let u = p.utilization(SimTime::from_secs(100));
        assert!((u - 0.25).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn utilization_full_load() {
        let mut p = WorkerPool::new(3);
        for _ in 0..3 {
            assert!(p.acquire(SimTime::ZERO));
        }
        let u = p.utilization(SimTime::from_secs(60));
        assert!((u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_at_time_zero_is_zero() {
        let mut p = WorkerPool::new(1);
        assert_eq!(p.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn occupancy_helper() {
        assert_eq!(
            build_occupancy(SimDuration::from_mins(30), SimDuration::from_secs(90)),
            SimDuration::from_micros(30 * 60_000_000 + 90_000_000)
        );
    }
}
