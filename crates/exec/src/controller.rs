//! The build controller facade (paper Section 6).
//!
//! Ties the pieces together the way the production controller does:
//! *plan* the minimal step set against the artifact cache, *estimate*
//! the makespan via the duration-history load balancer, *execute* on the
//! worker pool, and *observe* real step durations back into the history
//! so the next estimate is better.

use crate::balance::{DurationModel, LoadBalancer};
use crate::cache::ArtifactCache;
use crate::executor::{ExecReport, RealExecutor, StepOutcome};
use crate::fault::RetryPolicy;
use crate::plan::BuildPlan;
use crate::step::BuildStep;
use parking_lot::Mutex;
use sq_build::{AffectedSet, BuildGraph, TargetHashes, TargetName};
use sq_sim::SimDuration;
use std::collections::HashSet;
use std::time::Instant;

/// Outcome of one controller-driven build.
#[derive(Debug)]
pub struct ControllerReport {
    /// Steps the plan contained (after cache elimination).
    pub planned_steps: usize,
    /// Steps skipped because of cache hits at planning time.
    pub cached_steps: usize,
    /// The balancer's predicted makespan for the plan.
    pub estimated_makespan: SimDuration,
    /// The execution report (per-step results, failures).
    pub exec: ExecReport,
    /// Wall-clock time the execution actually took.
    pub wall: std::time::Duration,
}

impl ControllerReport {
    /// True iff every step succeeded.
    pub fn is_success(&self) -> bool {
        self.exec.is_success()
    }

    /// Record planning counters, the execution report, and per-thread
    /// wall-clock utilization into `metrics`.
    pub fn record_into(&self, metrics: &mut sq_obs::MetricsRegistry) {
        metrics.add("controller.planned_steps", self.planned_steps as u64);
        metrics.add("controller.cached_steps", self.cached_steps as u64);
        metrics.observe(
            "controller.estimated_makespan_secs",
            self.estimated_makespan.as_secs_f64(),
        );
        metrics.observe("controller.wall_ms", self.wall.as_secs_f64() * 1e3);
        self.exec.record_into(metrics);
        for u in self.exec.worker_utilization(self.wall) {
            metrics.observe("exec.worker_utilization", u);
        }
    }
}

/// The build controller: owns the artifact cache and duration history
/// across builds.
pub struct BuildController {
    executor: RealExecutor,
    threads: usize,
    cache: Mutex<ArtifactCache>,
    durations: Mutex<DurationModel>,
    retry: RetryPolicy,
}

impl BuildController {
    /// A controller with `threads` parallel workers and no retries.
    pub fn new(threads: usize) -> Self {
        Self::with_retry_policy(threads, RetryPolicy::none())
    }

    /// A controller that retries infra-failed steps under `retry`.
    pub fn with_retry_policy(threads: usize, retry: RetryPolicy) -> Self {
        BuildController {
            executor: RealExecutor::new(threads),
            threads,
            cache: Mutex::new(ArtifactCache::new()),
            durations: Mutex::new(DurationModel::default()),
            retry,
        }
    }

    /// The retry policy governing infra failures.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Plan and execute the affected set of a change.
    ///
    /// `action` runs each step; observed durations feed the history the
    /// balancer uses for subsequent estimates.
    pub fn execute_affected<F>(
        &self,
        graph: &BuildGraph,
        hashes: &TargetHashes,
        delta: &AffectedSet,
        action: F,
    ) -> ControllerReport
    where
        F: Fn(&BuildStep) -> StepOutcome + Sync,
    {
        // 1. Plan: minimal steps given the cache.
        let plan = {
            let cache = self.cache.lock();
            BuildPlan::for_affected(graph, hashes, delta, &cache)
        };
        // 2. Estimate: balanced makespan under the duration history.
        let estimated_makespan = {
            let durations = self.durations.lock();
            LoadBalancer
                .assign(&plan.steps, &durations, self.threads)
                .makespan
        };
        // 3. Execute, observing real durations.
        let targets: HashSet<TargetName> = plan.steps.iter().map(|s| s.target.clone()).collect();
        let started = Instant::now();
        let exec = self.executor.execute_with_recovery(
            graph,
            &targets,
            hashes,
            &self.cache,
            &self.retry,
            |step| {
                let t0 = Instant::now();
                let out = action(step);
                self.durations.lock().observe(
                    &step.target,
                    step.kind,
                    SimDuration::from_secs_f64(t0.elapsed().as_secs_f64()),
                );
                out
            },
        );
        ControllerReport {
            planned_steps: plan.steps.len(),
            cached_steps: plan.cached_steps,
            estimated_makespan,
            exec,
            wall: started.elapsed(),
        }
    }

    /// Cache statistics (hits/misses/entries).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.lock().stats()
    }

    /// Current duration estimate for a step (from the observed history).
    pub fn estimate(&self, target: &TargetName, kind: crate::step::StepKind) -> SimDuration {
        self.durations.lock().estimate(target, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::StepKind;
    use sq_build::affected::SnapshotAnalysis;
    use sq_vcs::{ObjectStore, Patch, RepoPath, Tree};

    fn workspace() -> (Tree, ObjectStore) {
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        let files = [
            ("lib/BUILD", "library(name = \"lib\", srcs = [\"l.rs\"])"),
            ("lib/l.rs", "v1"),
            (
                "app/BUILD",
                "binary(name = \"app\", srcs = [\"m.rs\"], deps = [\"//lib:lib\"])",
            ),
            ("app/m.rs", "v1"),
        ];
        for (p, c) in files {
            let id = store.put(c.as_bytes().to_vec());
            tree.insert(RepoPath::new(p).unwrap(), id);
        }
        (tree, store)
    }

    fn delta_for(
        tree: &Tree,
        store: &mut ObjectStore,
        patch: &Patch,
    ) -> (SnapshotAnalysis, AffectedSet) {
        let base = SnapshotAnalysis::analyze(tree, store).unwrap();
        let new_tree = patch.apply(tree, store).unwrap();
        let new = SnapshotAnalysis::analyze(&new_tree, store).unwrap();
        let delta = AffectedSet::between(&base, &new);
        (new, delta)
    }

    #[test]
    fn executes_plan_and_learns_durations() {
        let (tree, mut store) = workspace();
        let patch = Patch::write(RepoPath::new("lib/l.rs").unwrap(), "v2");
        let (analysis, delta) = delta_for(&tree, &mut store, &patch);
        let controller = BuildController::new(2);
        let report = controller.execute_affected(&analysis.graph, &analysis.hashes, &delta, |_| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            StepOutcome::Success
        });
        assert!(report.is_success());
        // lib compile + app compile/link/package = 4 steps.
        assert_eq!(report.planned_steps, 4);
        assert_eq!(report.cached_steps, 0);
        // The history now knows these steps take ≥5ms.
        let lib = sq_build::TargetName::resolve("//lib:lib", "").unwrap();
        assert!(controller.estimate(&lib, StepKind::Compile).as_secs_f64() >= 0.004);
    }

    #[test]
    fn second_identical_build_is_fully_cached() {
        let (tree, mut store) = workspace();
        let patch = Patch::write(RepoPath::new("app/m.rs").unwrap(), "v2");
        let (analysis, delta) = delta_for(&tree, &mut store, &patch);
        let controller = BuildController::new(2);
        let r1 = controller.execute_affected(&analysis.graph, &analysis.hashes, &delta, |_| {
            StepOutcome::Success
        });
        assert_eq!(r1.planned_steps, 3); // app: compile + link + package
        let r2 = controller.execute_affected(&analysis.graph, &analysis.hashes, &delta, |_| {
            StepOutcome::Success
        });
        assert_eq!(r2.planned_steps, 0);
        assert_eq!(r2.cached_steps, 3);
        assert!(r2.is_success());
        assert!(controller.cache_stats().entries >= 3);
    }

    #[test]
    fn failure_surfaces_in_report() {
        let (tree, mut store) = workspace();
        let patch = Patch::write(RepoPath::new("lib/l.rs").unwrap(), "v3");
        let (analysis, delta) = delta_for(&tree, &mut store, &patch);
        let controller = BuildController::new(2);
        let report =
            controller.execute_affected(&analysis.graph, &analysis.hashes, &delta, |step| {
                if step.kind == StepKind::Link {
                    StepOutcome::Failure("linker error".into())
                } else {
                    StepOutcome::Success
                }
            });
        assert!(!report.is_success());
        let (step, reason) = report.exec.failure.as_ref().unwrap();
        assert_eq!(step.kind, StepKind::Link);
        assert_eq!(reason, "linker error");
    }

    #[test]
    fn controller_absorbs_flaky_steps_under_retry_policy() {
        use crate::fault::{InfraFault, InfraFaultKind, RetryPolicy};
        use std::collections::HashMap;
        let (tree, mut store) = workspace();
        let patch = Patch::write(RepoPath::new("lib/l.rs").unwrap(), "v5");
        let (analysis, delta) = delta_for(&tree, &mut store, &patch);
        let controller = BuildController::with_retry_policy(2, RetryPolicy::standard(3, 21));
        let attempts: Mutex<HashMap<BuildStep, u32>> = Mutex::new(HashMap::new());
        let report = controller.execute_affected(&analysis.graph, &analysis.hashes, &delta, |s| {
            let mut a = attempts.lock();
            let cnt = a.entry(s.clone()).or_insert(0);
            *cnt += 1;
            if *cnt == 1 {
                StepOutcome::InfraFailure(InfraFault {
                    kind: InfraFaultKind::Timeout,
                    attempt: 1,
                })
            } else {
                StepOutcome::Success
            }
        });
        assert!(report.is_success(), "{:?}", report.exec);
        assert_eq!(report.exec.infra_retries as usize, report.planned_steps);
        assert!(report.exec.charged_backoff > sq_sim::SimDuration::ZERO);
        assert!(controller.cache_stats().entries >= report.planned_steps);
    }

    #[test]
    fn controller_without_retries_surfaces_infra_red() {
        use crate::fault::{InfraFault, InfraFaultKind};
        let (tree, mut store) = workspace();
        let patch = Patch::write(RepoPath::new("lib/l.rs").unwrap(), "v6");
        let (analysis, delta) = delta_for(&tree, &mut store, &patch);
        let controller = BuildController::new(2);
        let report = controller.execute_affected(&analysis.graph, &analysis.hashes, &delta, |_| {
            StepOutcome::InfraFailure(InfraFault {
                kind: InfraFaultKind::WorkerCrash,
                attempt: 1,
            })
        });
        assert!(!report.is_success());
        assert!(report.exec.is_infra_red());
        assert!(report.exec.failure.is_none());
        // Nothing entered the cache.
        assert_eq!(controller.cache_stats().entries, 0);
    }

    #[test]
    fn estimated_makespan_reflects_history() {
        let (tree, mut store) = workspace();
        let patch = Patch::write(RepoPath::new("lib/l.rs").unwrap(), "v4");
        let (analysis, delta) = delta_for(&tree, &mut store, &patch);
        let controller = BuildController::new(1);
        // Cold start: estimate uses the default.
        let r1 = controller.execute_affected(&analysis.graph, &analysis.hashes, &delta, |_| {
            StepOutcome::Success
        });
        assert!(r1.estimated_makespan > SimDuration::ZERO);
    }
}
