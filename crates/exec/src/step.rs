//! Build steps.
//!
//! "A change comprises of a developer's code patch padded with some build
//! steps that need to succeed before the patch can be merged" (paper
//! Section 1). Each target's rule kind expands into a fixed pipeline of
//! steps: compiling, linking, running tests, generating artifacts — the
//! examples the paper gives for its iOS monorepo.

use serde::{Deserialize, Serialize};
use sq_build::{RuleKind, TargetName};
use std::fmt;

/// One kind of build action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StepKind {
    /// Compile the target's sources.
    Compile,
    /// Link a binary from compiled outputs.
    Link,
    /// Run the target's test suite.
    RunTests,
    /// Validate generated configuration.
    Validate,
    /// Package a signed artifact (the paper's "unsignable artifact" is a
    /// failure of this step).
    Package,
}

impl fmt::Display for StepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StepKind::Compile => "compile",
            StepKind::Link => "link",
            StepKind::RunTests => "run-tests",
            StepKind::Validate => "validate",
            StepKind::Package => "package",
        };
        f.write_str(s)
    }
}

/// The pipeline of step kinds for a rule kind, in execution order.
pub fn steps_for(kind: RuleKind) -> &'static [StepKind] {
    match kind {
        RuleKind::Library => &[StepKind::Compile],
        RuleKind::Binary => &[StepKind::Compile, StepKind::Link, StepKind::Package],
        RuleKind::Test => &[StepKind::Compile, StepKind::RunTests],
        RuleKind::Config => &[StepKind::Validate],
    }
}

/// One concrete build step: an action on a target.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BuildStep {
    /// The target being acted on.
    pub target: TargetName,
    /// The action.
    pub kind: StepKind,
}

impl BuildStep {
    /// Convenience constructor.
    pub fn new(target: TargetName, kind: StepKind) -> Self {
        BuildStep { target, kind }
    }
}

impl fmt::Display for BuildStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn pipelines_per_rule_kind() {
        assert_eq!(steps_for(RuleKind::Library), &[StepKind::Compile]);
        assert_eq!(
            steps_for(RuleKind::Binary),
            &[StepKind::Compile, StepKind::Link, StepKind::Package]
        );
        assert_eq!(
            steps_for(RuleKind::Test),
            &[StepKind::Compile, StepKind::RunTests]
        );
        assert_eq!(steps_for(RuleKind::Config), &[StepKind::Validate]);
    }

    #[test]
    fn every_pipeline_starts_deterministically() {
        // Compile-first for code rules; the pipeline order is the
        // execution order.
        for kind in [RuleKind::Library, RuleKind::Binary, RuleKind::Test] {
            assert_eq!(steps_for(kind)[0], StepKind::Compile);
        }
    }

    #[test]
    fn display_forms() {
        let t = TargetName::from_str("//a:b").unwrap();
        let s = BuildStep::new(t, StepKind::RunTests);
        assert_eq!(s.to_string(), "run-tests //a:b");
    }
}
