//! The artifact cache.
//!
//! "The build controller also leverages caching mechanisms that exist in
//! build systems to reuse generated artifacts, instead of building them
//! from scratch" (paper Section 6). Artifacts are keyed by the target's
//! Algorithm-1 hash plus the step kind: because the hash folds in the
//! full transitive input closure, a hit is always sound to reuse — the
//! hermeticity property of the build system.
//!
//! Soundness has a second leg under the failure model: an artifact may
//! only enter the cache if the step that produced it *finally*
//! succeeded. A step that infra-failed, or was retried and then failed,
//! produced either nothing or garbage; caching it would poison every
//! later build that hashes to the same key. [`ArtifactCache::insert_if_success`]
//! is the guarded entry point the executor uses.

use crate::executor::StepOutcome;
use crate::step::StepKind;
use sq_build::TargetHash;
use std::collections::HashMap;

/// Opaque identifier of a cached artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactId(pub u64);

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an artifact.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Artifacts currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Record these statistics into a metrics registry under the
    /// `cache.` namespace (counters plus a hit-rate gauge). `hits` and
    /// `misses` are cumulative lifetime totals, so they reconcile via
    /// [`record_total`](sq_obs::MetricsRegistry::record_total) — a
    /// periodic exporter handing the same snapshot over twice must not
    /// double-count.
    pub fn record_into(&self, metrics: &mut sq_obs::MetricsRegistry) {
        metrics.record_total("cache.hits", self.hits);
        metrics.record_total("cache.misses", self.misses);
        metrics.set_gauge("cache.entries", self.entries as f64);
        metrics.set_gauge("cache.hit_rate", self.hit_rate());
    }
}

/// A content-keyed artifact cache.
#[derive(Debug, Clone, Default)]
pub struct ArtifactCache {
    map: HashMap<(TargetHash, StepKind), ArtifactId>,
    next_id: u64,
    hits: u64,
    misses: u64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the artifact for `(hash, kind)`, recording hit/miss stats.
    pub fn lookup(&mut self, hash: TargetHash, kind: StepKind) -> Option<ArtifactId> {
        match self.map.get(&(hash, kind)) {
            Some(&id) => {
                self.hits += 1;
                Some(id)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching stats (used by planners to *estimate* work).
    pub fn contains(&self, hash: TargetHash, kind: StepKind) -> bool {
        self.map.contains_key(&(hash, kind))
    }

    /// Record a freshly built artifact, returning its id. Inserting an
    /// already-present key returns the existing id (builds are
    /// deterministic; the first result stands).
    pub fn insert(&mut self, hash: TargetHash, kind: StepKind) -> ArtifactId {
        if let Some(&id) = self.map.get(&(hash, kind)) {
            return id;
        }
        let id = ArtifactId(self.next_id);
        self.next_id += 1;
        self.map.insert((hash, kind), id);
        id
    }

    /// Record an artifact only if `outcome` is a final success; any
    /// other outcome leaves the cache untouched and returns `None`
    /// (the cache-poisoning guard of the failure model).
    pub fn insert_if_success(
        &mut self,
        hash: TargetHash,
        kind: StepKind,
        outcome: &StepOutcome,
    ) -> Option<ArtifactId> {
        if outcome.is_success() {
            Some(self.insert(hash, kind))
        } else {
            None
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
        }
    }

    /// Drop every entry (tests and long-running sims use this to bound
    /// memory; production would evict by LRU instead).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_build::{BuildGraph, RuleKind, Target, TargetHashes, TargetName};
    use sq_vcs::{ObjectStore, RepoPath, Tree};
    use std::str::FromStr;

    fn hash_of(content: &str) -> TargetHash {
        // Build a one-target graph whose source has `content` and read
        // the resulting Algorithm-1 hash.
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        let p = RepoPath::new("a/s.rs").unwrap();
        let id = store.put(content.as_bytes().to_vec());
        tree.insert(p.clone(), id);
        let graph = BuildGraph::from_targets([Target::new(
            TargetName::from_str("//a:a").unwrap(),
            RuleKind::Library,
            vec![p],
            vec![],
        )])
        .unwrap();
        let hashes = TargetHashes::compute(&graph, &tree, &store).unwrap();
        hashes.get(&TargetName::from_str("//a:a").unwrap()).unwrap()
    }

    #[test]
    fn miss_then_hit() {
        let mut cache = ArtifactCache::new();
        let h = hash_of("v1");
        assert!(cache.lookup(h, StepKind::Compile).is_none());
        let id = cache.insert(h, StepKind::Compile);
        assert_eq!(cache.lookup(h, StepKind::Compile), Some(id));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_step_kinds_are_distinct_entries() {
        let mut cache = ArtifactCache::new();
        let h = hash_of("v1");
        let a = cache.insert(h, StepKind::Compile);
        let b = cache.insert(h, StepKind::RunTests);
        assert_ne!(a, b);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn distinct_hashes_do_not_collide() {
        let mut cache = ArtifactCache::new();
        let h1 = hash_of("v1");
        let h2 = hash_of("v2");
        cache.insert(h1, StepKind::Compile);
        assert!(cache.lookup(h2, StepKind::Compile).is_none());
    }

    #[test]
    fn double_insert_is_idempotent() {
        let mut cache = ArtifactCache::new();
        let h = hash_of("v1");
        let a = cache.insert(h, StepKind::Compile);
        let b = cache.insert(h, StepKind::Compile);
        assert_eq!(a, b);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn contains_does_not_affect_stats() {
        let mut cache = ArtifactCache::new();
        let h = hash_of("v1");
        assert!(!cache.contains(h, StepKind::Compile));
        cache.insert(h, StepKind::Compile);
        assert!(cache.contains(h, StepKind::Compile));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn clear_empties() {
        let mut cache = ArtifactCache::new();
        let h = hash_of("v1");
        cache.insert(h, StepKind::Compile);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.lookup(h, StepKind::Compile).is_none());
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        let cache = ArtifactCache::new();
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn guarded_insert_refuses_non_success_outcomes() {
        use crate::fault::{InfraFault, InfraFaultKind};
        let mut cache = ArtifactCache::new();
        let h = hash_of("v1");
        let fault = StepOutcome::InfraFailure(InfraFault {
            kind: InfraFaultKind::WorkerCrash,
            attempt: 1,
        });
        assert!(cache
            .insert_if_success(h, StepKind::Compile, &fault)
            .is_none());
        let failed = StepOutcome::Failure("compile error".into());
        assert!(cache
            .insert_if_success(h, StepKind::Compile, &failed)
            .is_none());
        assert_eq!(cache.stats().entries, 0);
        assert!(!cache.contains(h, StepKind::Compile));
        // A final success does insert.
        assert!(cache
            .insert_if_success(h, StepKind::Compile, &StepOutcome::Success)
            .is_some());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn stats_export_is_idempotent_across_repeated_exports() {
        // Regression for the cumulative-total-into-counter bug class:
        // hits/misses are lifetime totals, so exporting the same
        // snapshot twice must equal exporting it once.
        let mut cache = ArtifactCache::new();
        let h = hash_of("v1");
        cache.lookup(h, StepKind::Compile); // miss
        cache.insert(h, StepKind::Compile);
        cache.lookup(h, StepKind::Compile); // hit
        let stats = cache.stats();
        sq_obs::assert_idempotent_export(|m| stats.record_into(m));
        let mut m = sq_obs::MetricsRegistry::new();
        stats.record_into(&mut m);
        stats.record_into(&mut m);
        assert_eq!(m.counter("cache.hits"), 1);
        assert_eq!(m.counter("cache.misses"), 1);
    }
}
