//! Load balancing of build steps across workers.
//!
//! "The build controller … maintains the history of build steps that were
//! performed, along with their average build durations. Based on this
//! data, the build controller assigns build steps to workers such that
//! every worker has an even amount of work" (paper Section 6).
//!
//! [`DurationModel`] is the history (an exponentially-weighted moving
//! average per `(target, step-kind)` with a per-kind fallback), and
//! [`LoadBalancer`] is the assignment policy: LPT (longest processing
//! time first) greedy onto the least-loaded worker, the standard 4/3-
//! approximation for minimum makespan.

use crate::step::{BuildStep, StepKind};
use sq_build::TargetName;
use sq_sim::SimDuration;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Historical duration estimates.
#[derive(Debug, Clone)]
pub struct DurationModel {
    /// EWMA per concrete step.
    per_step: HashMap<(TargetName, StepKind), f64>,
    /// Fallback for never-seen steps: per-kind (observation count, EWMA).
    /// The count drives a warm-up (effective alpha = max(alpha, 1/n)) so
    /// the kind average is not seeded wholesale from whichever target
    /// happens to report first.
    per_kind: HashMap<StepKind, (u64, f64)>,
    /// Smoothing factor in (0, 1]; weight of the newest observation.
    alpha: f64,
    /// Default estimate when nothing has been observed at all.
    default: SimDuration,
}

impl DurationModel {
    /// A model with smoothing factor `alpha` and a cold-start `default`.
    pub fn new(alpha: f64, default: SimDuration) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        DurationModel {
            per_step: HashMap::new(),
            per_kind: HashMap::new(),
            alpha,
            default,
        }
    }

    /// Record an observed duration for a completed step.
    pub fn observe(&mut self, target: &TargetName, kind: StepKind, duration: SimDuration) {
        let secs = duration.as_secs_f64();
        let update = |slot: &mut f64, alpha: f64| *slot += alpha * (secs - *slot);
        match self.per_step.entry((target.clone(), kind)) {
            std::collections::hash_map::Entry::Occupied(mut e) => update(e.get_mut(), self.alpha),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(secs);
            }
        }
        let (n, value) = self.per_kind.entry(kind).or_insert((0, 0.0));
        *n += 1;
        // Running mean while 1/n dominates, EWMA once enough history
        // has accumulated — early observations share weight instead of
        // the first one seeding the average outright.
        update(value, self.alpha.max(1.0 / *n as f64));
    }

    /// Estimated duration for a step: exact history, else per-kind
    /// history, else the cold-start default.
    pub fn estimate(&self, target: &TargetName, kind: StepKind) -> SimDuration {
        if let Some(&secs) = self.per_step.get(&(target.clone(), kind)) {
            return SimDuration::from_secs_f64(secs);
        }
        if let Some(&(_, secs)) = self.per_kind.get(&kind) {
            return SimDuration::from_secs_f64(secs);
        }
        self.default
    }
}

impl Default for DurationModel {
    fn default() -> Self {
        DurationModel::new(0.3, SimDuration::from_mins(1))
    }
}

/// An assignment of steps to workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `per_worker[w]` lists indices into the input step slice.
    pub per_worker: Vec<Vec<usize>>,
    /// The predicted completion time (load of the busiest worker).
    pub makespan: SimDuration,
}

/// The LPT greedy balancer.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadBalancer;

impl LoadBalancer {
    /// Distribute `steps` over `workers` workers so loads are even.
    ///
    /// Steps are sorted by descending estimated duration, then each is
    /// placed on the currently least-loaded worker. Panics if
    /// `workers == 0`.
    pub fn assign(&self, steps: &[BuildStep], model: &DurationModel, workers: usize) -> Assignment {
        assert!(workers > 0, "cannot balance onto zero workers");
        let mut order: Vec<(usize, SimDuration)> = steps
            .iter()
            .enumerate()
            .map(|(i, s)| (i, model.estimate(&s.target, s.kind)))
            .collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        // Min-heap of (load, worker index).
        let mut heap: BinaryHeap<Reverse<(SimDuration, usize)>> = (0..workers)
            .map(|w| Reverse((SimDuration::ZERO, w)))
            .collect();
        let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (idx, dur) in order {
            let Reverse((load, w)) = heap.pop().expect("workers > 0");
            per_worker[w].push(idx);
            heap.push(Reverse((load + dur, w)));
        }
        let makespan = heap
            .into_iter()
            .map(|Reverse((load, _))| load)
            .max()
            .unwrap_or(SimDuration::ZERO);
        Assignment {
            per_worker,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn t(s: &str) -> TargetName {
        TargetName::from_str(s).unwrap()
    }

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn estimate_falls_back_kind_then_default() {
        let mut m = DurationModel::new(0.5, mins(7));
        assert_eq!(m.estimate(&t("//a:a"), StepKind::Compile), mins(7));
        m.observe(&t("//b:b"), StepKind::Compile, mins(10));
        // Unknown target, known kind → kind average.
        assert_eq!(m.estimate(&t("//a:a"), StepKind::Compile), mins(10));
        // Known step → exact history.
        m.observe(&t("//a:a"), StepKind::Compile, mins(2));
        assert_eq!(m.estimate(&t("//a:a"), StepKind::Compile), mins(2));
    }

    #[test]
    fn kind_fallback_is_not_dominated_by_first_reporter() {
        // Two targets with very different durations: the per-kind
        // fallback must land near their mean regardless of which
        // finished first, not near the first reporter.
        let observe_in_order = |first: (&str, u64), second: (&str, u64)| {
            let mut m = DurationModel::new(0.3, mins(1));
            m.observe(
                &t(first.0),
                StepKind::Compile,
                SimDuration::from_secs(first.1),
            );
            m.observe(
                &t(second.0),
                StepKind::Compile,
                SimDuration::from_secs(second.1),
            );
            m.estimate(&t("//unseen:x"), StepKind::Compile)
                .as_secs_f64()
        };
        let slow_first = observe_in_order(("//a:slow", 100), ("//b:fast", 10));
        let fast_first = observe_in_order(("//b:fast", 10), ("//a:slow", 100));
        // With two observations the warm-up weight is 1/2: both orders
        // give the arithmetic mean, 55 seconds.
        assert!((slow_first - 55.0).abs() < 1e-9, "slow first: {slow_first}");
        assert!((fast_first - 55.0).abs() < 1e-9, "fast first: {fast_first}");
    }

    #[test]
    fn kind_fallback_warmup_hands_over_to_ewma() {
        // After many observations the effective alpha is the configured
        // one, so the fallback still tracks recent history.
        let mut m = DurationModel::new(0.5, mins(1));
        for i in 0..20 {
            m.observe(&t(&format!("//p:t{i}")), StepKind::Compile, mins(10));
        }
        for i in 20..40 {
            m.observe(&t(&format!("//p:t{i}")), StepKind::Compile, mins(2));
        }
        let est = m
            .estimate(&t("//unseen:x"), StepKind::Compile)
            .as_mins_f64();
        assert!((est - 2.0).abs() < 0.01, "est = {est}");
    }

    #[test]
    fn ewma_converges_toward_recent_observations() {
        let mut m = DurationModel::new(0.5, mins(1));
        let target = t("//a:a");
        m.observe(&target, StepKind::Compile, mins(10));
        for _ in 0..20 {
            m.observe(&target, StepKind::Compile, mins(2));
        }
        let est = m.estimate(&target, StepKind::Compile).as_mins_f64();
        assert!((est - 2.0).abs() < 0.01, "est = {est}");
    }

    #[test]
    fn assignment_covers_all_steps_exactly_once() {
        let model = DurationModel::default();
        let steps: Vec<BuildStep> = (0..10)
            .map(|i| BuildStep::new(t(&format!("//p:t{i}")), StepKind::Compile))
            .collect();
        let a = LoadBalancer.assign(&steps, &model, 3);
        let mut seen: Vec<usize> = a.per_worker.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn balanced_loads_with_uniform_steps() {
        let model = DurationModel::default();
        let steps: Vec<BuildStep> = (0..12)
            .map(|i| BuildStep::new(t(&format!("//p:t{i}")), StepKind::Compile))
            .collect();
        let a = LoadBalancer.assign(&steps, &model, 4);
        for w in &a.per_worker {
            assert_eq!(w.len(), 3);
        }
    }

    #[test]
    fn lpt_places_long_steps_first() {
        let mut model = DurationModel::new(0.5, mins(1));
        // One 60-minute step and six 10-minute steps over two workers:
        // optimal makespan is 60; naive round-robin could give 90.
        model.observe(&t("//p:big"), StepKind::Compile, mins(60));
        for i in 0..6 {
            model.observe(&t(&format!("//p:small{i}")), StepKind::Compile, mins(10));
        }
        let mut steps = vec![BuildStep::new(t("//p:big"), StepKind::Compile)];
        for i in 0..6 {
            steps.push(BuildStep::new(
                t(&format!("//p:small{i}")),
                StepKind::Compile,
            ));
        }
        let a = LoadBalancer.assign(&steps, &model, 2);
        assert_eq!(a.makespan, mins(60));
    }

    #[test]
    fn makespan_with_single_worker_is_total_work() {
        let mut model = DurationModel::new(0.5, mins(1));
        for i in 0..5 {
            model.observe(&t(&format!("//p:t{i}")), StepKind::Compile, mins(i + 1));
        }
        let steps: Vec<BuildStep> = (0..5)
            .map(|i| BuildStep::new(t(&format!("//p:t{i}")), StepKind::Compile))
            .collect();
        let a = LoadBalancer.assign(&steps, &model, 1);
        assert_eq!(a.makespan, mins(1 + 2 + 3 + 4 + 5));
    }

    #[test]
    fn empty_step_list() {
        let a = LoadBalancer.assign(&[], &DurationModel::default(), 3);
        assert_eq!(a.makespan, SimDuration::ZERO);
        assert!(a.per_worker.iter().all(|w| w.is_empty()));
    }

    #[test]
    #[should_panic]
    fn zero_workers_panics() {
        LoadBalancer.assign(&[], &DurationModel::default(), 0);
    }

    #[test]
    fn deterministic_assignment() {
        let model = DurationModel::default();
        let steps: Vec<BuildStep> = (0..7)
            .map(|i| BuildStep::new(t(&format!("//p:t{i}")), StepKind::Compile))
            .collect();
        let a1 = LoadBalancer.assign(&steps, &model, 3);
        let a2 = LoadBalancer.assign(&steps, &model, 3);
        assert_eq!(a1, a2);
    }
}
