//! Deterministic fault injection and infra-failure recovery.
//!
//! The paper's always-green argument (Section 4) implicitly assumes a
//! red build means a bad change. Production fleets violate that: Uber's
//! follow-up *CI at Scale* reports flaky tests and infrastructure
//! failures as the dominant source of wrongly-rejected changes. This
//! module supplies the two pieces needed to study the guarantee under
//! realistic noise:
//!
//! * [`FaultPlan`] / [`FaultInjector`] — a seeded model of *infra*
//!   failures (worker crashes, timeouts, transient tooling errors) that
//!   wraps any step action and injects [`StepOutcome::InfraFailure`]
//!   with configurable per-step probabilities. Decisions are a pure
//!   function of `(seed, target, step kind, attempt)`, so they are
//!   bit-identical across runs *and* independent of worker-thread
//!   interleaving — no shared RNG stream whose draw order could differ.
//! * [`RetryPolicy`] — bounded retries with deterministic exponential
//!   backoff, charged as build time. Genuine failures
//!   ([`StepOutcome::Failure`]) are never retried: retrying a
//!   compile error cannot turn a bad change good, it only hides the
//!   distinction the planner needs.
//!
//! [`StepOutcome::InfraFailure`]: crate::executor::StepOutcome::InfraFailure
//! [`StepOutcome::Failure`]: crate::executor::StepOutcome::Failure

use crate::executor::StepOutcome;
use crate::step::{BuildStep, StepKind};
use parking_lot::Mutex;
use sq_build::TargetName;
use sq_sim::SimDuration;
use std::collections::HashMap;
use std::fmt;

/// The taxonomy of infrastructure failures (change-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InfraFaultKind {
    /// The worker executing the step died (OOM-kill, hardware loss).
    WorkerCrash,
    /// The step exceeded its time budget for environmental reasons.
    Timeout,
    /// A transient tooling error (fetch failure, signing service blip).
    TransientTooling,
}

impl InfraFaultKind {
    /// All kinds, in the order the injector cycles through them.
    pub const ALL: [InfraFaultKind; 3] = [
        InfraFaultKind::WorkerCrash,
        InfraFaultKind::Timeout,
        InfraFaultKind::TransientTooling,
    ];
}

impl fmt::Display for InfraFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InfraFaultKind::WorkerCrash => "worker-crash",
            InfraFaultKind::Timeout => "timeout",
            InfraFaultKind::TransientTooling => "transient-tooling",
        };
        f.write_str(s)
    }
}

/// One concrete infrastructure failure observed on a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfraFault {
    /// What kind of infra failure.
    pub kind: InfraFaultKind,
    /// Which attempt (1-based) it hit.
    pub attempt: u32,
}

impl fmt::Display for InfraFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (attempt {})", self.kind, self.attempt)
    }
}

/// SplitMix64 finalizer: a strong 64-bit mixer, the same one the sim
/// crate uses for RNG seeding. Pure function — safe under concurrency.
/// Public so other fault models (e.g. the simulator's) draw decisions
/// from the same deterministic primitive.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Fold a step identity into a 64-bit hash (FNV-1a over the target name
/// plus the step-kind discriminant).
fn step_hash(step: &BuildStep) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in step.target.to_string().bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    h ^ mix64(step.kind as u64)
}

/// Map a 64-bit hash to a uniform fraction in `[0, 1)`.
pub fn fraction(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded, per-step-probability plan of infrastructure faults.
///
/// Probabilities resolve most-specific-first: per-target override, then
/// per-step-kind override, then the uniform default rate.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    default_rate: f64,
    per_kind: HashMap<StepKind, f64>,
    per_target: HashMap<TargetName, f64>,
}

impl FaultPlan {
    /// A plan injecting faults uniformly at `rate` on every step.
    /// Panics unless `rate` is a probability in `[0, 1]`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0,1]");
        FaultPlan {
            seed,
            default_rate: rate,
            per_kind: HashMap::new(),
            per_target: HashMap::new(),
        }
    }

    /// A plan that never injects (identity wrapper).
    pub fn none() -> Self {
        Self::uniform(0, 0.0)
    }

    /// Override the rate for one step kind (e.g. make `RunTests` flaky
    /// while compiles stay clean).
    pub fn with_kind_rate(mut self, kind: StepKind, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0,1]");
        self.per_kind.insert(kind, rate);
        self
    }

    /// Override the rate for every step of one target.
    pub fn with_target_rate(mut self, target: TargetName, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0,1]");
        self.per_target.insert(target, rate);
        self
    }

    /// The seed the plan draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The effective fault probability for a step.
    pub fn rate_for(&self, step: &BuildStep) -> f64 {
        if let Some(&r) = self.per_target.get(&step.target) {
            return r;
        }
        if let Some(&r) = self.per_kind.get(&step.kind) {
            return r;
        }
        self.default_rate
    }

    /// Decide whether `attempt` (1-based) of `step` hits an infra fault.
    ///
    /// Pure function of `(seed, step, attempt)` — identical across runs
    /// and thread schedules.
    pub fn decide(&self, step: &BuildStep, attempt: u32) -> Option<InfraFault> {
        let rate = self.rate_for(step);
        if rate <= 0.0 {
            return None;
        }
        let h = mix64(self.seed ^ step_hash(step) ^ mix64(u64::from(attempt)));
        if fraction(h) >= rate {
            return None;
        }
        // A second independent draw picks the fault kind.
        let pick = mix64(h ^ 0xF4017) as usize % InfraFaultKind::ALL.len();
        Some(InfraFault {
            kind: InfraFaultKind::ALL[pick],
            attempt,
        })
    }
}

/// Wraps a step action, injecting faults from a [`FaultPlan`].
///
/// The injector counts invocations per step so a retried step sees a
/// fresh draw on each attempt (a flaky step can pass on retry). The
/// counter is behind a mutex; the *decisions* stay deterministic because
/// they depend only on the per-step attempt ordinal, not on global
/// ordering.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    attempts: Mutex<HashMap<BuildStep, u32>>,
}

impl FaultInjector {
    /// An injector over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Reset attempt counters (a fresh build of the same steps re-draws
    /// from attempt 1 — used when a whole build is retried).
    pub fn reset(&self) {
        self.attempts.lock().clear();
    }

    /// Decide the outcome of the next attempt of `step`, injecting a
    /// fault or delegating to `real` for the genuine result.
    pub fn run<F>(&self, step: &BuildStep, real: F) -> StepOutcome
    where
        F: FnOnce(&BuildStep) -> StepOutcome,
    {
        let attempt = {
            let mut attempts = self.attempts.lock();
            let n = attempts.entry(step.clone()).or_insert(0);
            *n += 1;
            *n
        };
        match self.plan.decide(step, attempt) {
            Some(fault) => StepOutcome::InfraFailure(fault),
            None => real(step),
        }
    }

    /// Wrap an action so every call routes through the injector. The
    /// returned closure has the plain step-action signature, so it
    /// drops into [`RealExecutor::execute`] and
    /// [`BuildController::execute_affected`] unchanged.
    ///
    /// [`RealExecutor::execute`]: crate::executor::RealExecutor::execute
    /// [`BuildController::execute_affected`]: crate::controller::BuildController::execute_affected
    pub fn wrap<'a, F>(&'a self, action: F) -> impl Fn(&BuildStep) -> StepOutcome + Sync + 'a
    where
        F: Fn(&BuildStep) -> StepOutcome + Sync + 'a,
    {
        move |step| self.run(step, &action)
    }
}

/// Bounded retries with deterministic exponential backoff.
///
/// Only [`StepOutcome::InfraFailure`] is retried; genuine failures
/// resolve immediately. Backoff for attempt `k` (1-based, i.e. the delay
/// charged before attempt `k+1`) is `base · multiplier^(k−1)`, capped at
/// `max_backoff`, then scaled by a deterministic per-seed jitter in
/// `[0.5, 1.0)` — the classic decorrelated schedule, but reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per step (≥ 1). `1` means never retry.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base: SimDuration,
    /// Multiplier applied per further attempt. Must be ≥ 1.
    pub multiplier: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: SimDuration,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl RetryPolicy {
    /// Never retry (attempt bound 1, zero backoff).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: SimDuration::ZERO,
            multiplier: 1.0,
            max_backoff: SimDuration::ZERO,
            seed: 0,
        }
    }

    /// A sensible production-shaped default: up to `max_attempts`
    /// attempts, 10 s base backoff doubling to a 5 min cap.
    pub fn standard(max_attempts: u32, seed: u64) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        RetryPolicy {
            max_attempts,
            base: SimDuration::from_secs(10),
            multiplier: 2.0,
            max_backoff: SimDuration::from_mins(5),
            seed,
        }
    }

    /// True iff a step that infra-failed on `attempt` (1-based) should
    /// run again.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// The backoff charged after failed attempt `attempt` (1-based),
    /// before attempt `attempt + 1` starts.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        assert!(attempt >= 1, "attempts are 1-based");
        let exp = self.multiplier.powi(attempt as i32 - 1);
        let raw = self.base.as_secs_f64() * exp;
        let capped = raw.min(self.max_backoff.as_secs_f64());
        // Deterministic jitter in [0.5, 1.0): same seed ⇒ same schedule.
        let jitter = 0.5 + 0.5 * fraction(mix64(self.seed ^ mix64(u64::from(attempt))));
        SimDuration::from_secs_f64(capped * jitter)
    }

    /// Total backoff charged by a step that failed `attempts` times
    /// (the sum of the first `attempts` backoffs). Monotone
    /// nondecreasing in `attempts`.
    pub fn total_backoff(&self, attempts: u32) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for a in 1..=attempts {
            total += self.backoff(a);
        }
        total
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn step(name: &str, kind: StepKind) -> BuildStep {
        BuildStep::new(TargetName::from_str(name).unwrap(), kind)
    }

    #[test]
    fn zero_rate_never_injects() {
        let plan = FaultPlan::none();
        for attempt in 1..50 {
            assert_eq!(
                plan.decide(&step("//a:a", StepKind::Compile), attempt),
                None
            );
        }
    }

    #[test]
    fn unit_rate_always_injects() {
        let plan = FaultPlan::uniform(7, 1.0);
        for attempt in 1..50 {
            assert!(plan
                .decide(&step("//a:a", StepKind::Compile), attempt)
                .is_some());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let s = step("//pkg:t", StepKind::RunTests);
        let a = FaultPlan::uniform(42, 0.5);
        let b = FaultPlan::uniform(42, 0.5);
        let c = FaultPlan::uniform(43, 0.5);
        let seq = |p: &FaultPlan| (1..200).map(|k| p.decide(&s, k)).collect::<Vec<_>>();
        assert_eq!(seq(&a), seq(&b), "same seed must give identical faults");
        assert_ne!(seq(&a), seq(&c), "distinct seeds must diverge");
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let plan = FaultPlan::uniform(9, 0.3);
        let mut hits = 0;
        let n = 20_000;
        for i in 0..n {
            let s = step(&format!("//p{i}:t"), StepKind::Compile);
            if plan.decide(&s, 1).is_some() {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(n);
        assert!((rate - 0.3).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn per_kind_and_per_target_overrides_win() {
        let t = TargetName::from_str("//hot:spot").unwrap();
        let plan = FaultPlan::uniform(1, 0.0)
            .with_kind_rate(StepKind::RunTests, 1.0)
            .with_target_rate(t.clone(), 0.0);
        // Kind override applies...
        assert!(plan.decide(&step("//a:a", StepKind::RunTests), 1).is_some());
        assert!(plan.decide(&step("//a:a", StepKind::Compile), 1).is_none());
        // ...but the per-target override beats it.
        assert!(plan
            .decide(&BuildStep::new(t, StepKind::RunTests), 1)
            .is_none());
    }

    #[test]
    fn injector_draws_fresh_per_attempt() {
        // With rate 1.0 on attempt draws a retried step keeps failing;
        // with a 0.5 plan some attempt eventually passes through.
        let plan = FaultPlan::uniform(5, 0.5);
        let injector = FaultInjector::new(plan);
        let s = step("//a:a", StepKind::Compile);
        let mut saw_success = false;
        for _ in 0..64 {
            if injector.run(&s, |_| StepOutcome::Success) == StepOutcome::Success {
                saw_success = true;
                break;
            }
        }
        assert!(saw_success, "a 0.5-flaky step must eventually pass");
    }

    #[test]
    fn injector_reset_replays_identically() {
        let mk = || FaultInjector::new(FaultPlan::uniform(11, 0.4));
        let s = step("//a:a", StepKind::Link);
        let run = |inj: &FaultInjector| {
            (0..32)
                .map(|_| inj.run(&s, |_| StepOutcome::Success))
                .collect::<Vec<_>>()
        };
        let i1 = mk();
        let first = run(&i1);
        i1.reset();
        let replay = run(&i1);
        let second = run(&mk());
        assert_eq!(first, replay);
        assert_eq!(first, second);
    }

    #[test]
    fn injector_never_masks_genuine_failures() {
        // Where no fault fires, the real outcome (including Failure)
        // passes through untouched.
        let injector = FaultInjector::new(FaultPlan::none());
        let s = step("//a:a", StepKind::Compile);
        assert_eq!(
            injector.run(&s, |_| StepOutcome::Failure("bad code".into())),
            StepOutcome::Failure("bad code".into())
        );
    }

    #[test]
    fn retry_policy_none_never_retries() {
        let p = RetryPolicy::none();
        assert!(!p.should_retry(1));
        assert_eq!(p.total_backoff(5), SimDuration::ZERO);
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base: SimDuration::from_secs(10),
            multiplier: 2.0,
            max_backoff: SimDuration::from_secs(60),
            seed: 3,
        };
        // Jitter is within [0.5, 1.0): bounds scale accordingly.
        for a in 1..=9 {
            let b = p.backoff(a).as_secs_f64();
            let raw = (10.0 * 2f64.powi(a as i32 - 1)).min(60.0);
            assert!(b >= raw * 0.5 - 1e-9 && b < raw + 1e-9, "attempt {a}: {b}");
        }
        // Deeply-retried attempts all hit the cap band.
        assert!(p.backoff(9).as_secs_f64() <= 60.0);
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        let p1 = RetryPolicy::standard(6, 77);
        let p2 = RetryPolicy::standard(6, 77);
        let p3 = RetryPolicy::standard(6, 78);
        let sched = |p: &RetryPolicy| (1..=8).map(|a| p.backoff(a)).collect::<Vec<_>>();
        assert_eq!(sched(&p1), sched(&p2));
        assert_ne!(sched(&p1), sched(&p3));
    }
}
