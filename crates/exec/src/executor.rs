//! A real (thread-based) build executor.
//!
//! The simulator models build time; this executor actually *runs* build
//! steps, so the examples and integration tests can exercise the system
//! end to end with genuine parallel execution: a crossbeam-scoped worker
//! pool pulls ready targets from a queue, a target becomes ready when all
//! its dependencies finished, and artifacts are recorded in the shared
//! [`ArtifactCache`].
//!
//! Failure policy is fail-fast: once any step fails, no new targets are
//! dispatched (in-flight ones drain), mirroring how the paper's build
//! controller aborts doomed speculations early.

use crate::cache::ArtifactCache;
use crate::step::{steps_for, BuildStep};
use parking_lot::Mutex;
use sq_build::{BuildGraph, TargetHashes, TargetName};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

/// Result of one step action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step succeeded.
    Success,
    /// The step failed with a reason.
    Failure(String),
}

/// Report from an execution run.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Steps that ran, in completion order.
    pub executed: Vec<BuildStep>,
    /// Steps skipped via the artifact cache.
    pub cache_hits: usize,
    /// The first failure observed, if any.
    pub failure: Option<(BuildStep, String)>,
}

impl ExecReport {
    /// True iff every step succeeded.
    pub fn is_success(&self) -> bool {
        self.failure.is_none()
    }
}

/// A thread-pool executor over a build graph.
#[derive(Debug, Clone, Copy)]
pub struct RealExecutor {
    threads: usize,
}

impl RealExecutor {
    /// An executor with `threads` worker threads. Panics if zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        RealExecutor { threads }
    }

    /// Execute the pipelines of `targets` (a subset of `graph`) in
    /// dependency order.
    ///
    /// * Dependencies of a requested target that are themselves requested
    ///   are ordered before it; unrequested dependencies are assumed
    ///   up to date (the caller passes the affected set).
    /// * `action` runs each step; it must be thread-safe. Steps of one
    ///   target run sequentially; distinct ready targets run in parallel.
    /// * Steps whose `(target hash, step kind)` is cached are skipped.
    pub fn execute<F>(
        &self,
        graph: &BuildGraph,
        targets: &HashSet<TargetName>,
        hashes: &TargetHashes,
        cache: &Mutex<ArtifactCache>,
        action: F,
    ) -> ExecReport
    where
        F: Fn(&BuildStep) -> StepOutcome + Sync,
    {
        // Restrict the dependency relation to the requested set.
        let mut remaining_deps: HashMap<&TargetName, usize> = HashMap::new();
        let mut dependents: HashMap<&TargetName, Vec<&TargetName>> = HashMap::new();
        for name in targets {
            let Some(t) = graph.get(name) else { continue };
            let in_set: Vec<&TargetName> = t.deps.iter().filter(|d| targets.contains(*d)).collect();
            remaining_deps.insert(name, in_set.len());
            for d in in_set {
                dependents
                    .entry(graph.get(d).map(|t| &t.name).unwrap_or(d))
                    .or_default()
                    .push(name);
            }
        }

        let state = Mutex::new(ExecState {
            ready: remaining_deps
                .iter()
                .filter(|(_, &n)| n == 0)
                .map(|(&t, _)| t.clone())
                .collect(),
            remaining: remaining_deps
                .iter()
                .map(|(&t, &n)| (t.clone(), n))
                .collect(),
            in_flight: 0,
            report: ExecReport::default(),
        });
        let aborted = AtomicBool::new(false);

        crossbeam::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|_| loop {
                    // Claim a ready target or detect completion.
                    let claimed = {
                        let mut st = state.lock();
                        if let Some(t) = st.ready.pop() {
                            st.in_flight += 1;
                            Some(t)
                        } else if st.in_flight == 0 || aborted.load(Ordering::SeqCst) {
                            None
                        } else {
                            // Work may appear when in-flight targets
                            // finish; spin politely.
                            drop(st);
                            std::thread::yield_now();
                            continue;
                        }
                    };
                    let Some(target_name) = claimed else { break };

                    if aborted.load(Ordering::SeqCst) {
                        let mut st = state.lock();
                        st.in_flight -= 1;
                        continue;
                    }

                    // Run the pipeline for this target.
                    let target = graph.get(&target_name).expect("target in graph");
                    let hash = hashes.get(&target_name);
                    let mut target_failed = false;
                    for &kind in steps_for(target.kind) {
                        let step = BuildStep::new(target_name.clone(), kind);
                        // Cache check.
                        if let Some(h) = hash {
                            if cache.lock().lookup(h, kind).is_some() {
                                state.lock().report.cache_hits += 1;
                                continue;
                            }
                        }
                        match action(&step) {
                            StepOutcome::Success => {
                                if let Some(h) = hash {
                                    cache.lock().insert(h, kind);
                                }
                                state.lock().report.executed.push(step);
                            }
                            StepOutcome::Failure(reason) => {
                                let mut st = state.lock();
                                if st.report.failure.is_none() {
                                    st.report.failure = Some((step, reason));
                                }
                                drop(st);
                                aborted.store(true, Ordering::SeqCst);
                                target_failed = true;
                                break;
                            }
                        }
                    }

                    // Mark completion; release dependents.
                    let mut st = state.lock();
                    st.in_flight -= 1;
                    if !target_failed && !aborted.load(Ordering::SeqCst) {
                        if let Some(deps) = dependents.get(&target_name) {
                            for &d in deps {
                                let n = st.remaining.get_mut(d).expect("dependent tracked");
                                *n -= 1;
                                if *n == 0 {
                                    st.ready.push(d.clone());
                                }
                            }
                        }
                    }
                });
            }
        })
        .expect("executor threads must not panic");

        state.into_inner().report
    }
}

struct ExecState {
    ready: Vec<TargetName>,
    remaining: HashMap<TargetName, usize>,
    in_flight: usize,
    report: ExecReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_build::{RuleKind, Target};
    use sq_vcs::{ObjectStore, RepoPath, Tree};
    use std::str::FromStr;
    use std::sync::atomic::AtomicUsize;

    fn n(s: &str) -> TargetName {
        TargetName::from_str(s).unwrap()
    }

    fn p(s: &str) -> RepoPath {
        RepoPath::new(s).unwrap()
    }

    /// chain: a ← b ← c, plus independent d.
    fn fixture() -> (BuildGraph, TargetHashes, HashSet<TargetName>) {
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        for (path, content) in [
            ("a/s.rs", "a"),
            ("b/s.rs", "b"),
            ("c/s.rs", "c"),
            ("d/s.rs", "d"),
        ] {
            let id = store.put(content.as_bytes().to_vec());
            tree.insert(p(path), id);
        }
        let graph = BuildGraph::from_targets([
            Target::new(n("//a:a"), RuleKind::Library, vec![p("a/s.rs")], vec![]),
            Target::new(
                n("//b:b"),
                RuleKind::Library,
                vec![p("b/s.rs")],
                vec![n("//a:a")],
            ),
            Target::new(
                n("//c:c"),
                RuleKind::Test,
                vec![p("c/s.rs")],
                vec![n("//b:b")],
            ),
            Target::new(n("//d:d"), RuleKind::Library, vec![p("d/s.rs")], vec![]),
        ])
        .unwrap();
        let hashes = TargetHashes::compute(&graph, &tree, &store).unwrap();
        let targets: HashSet<TargetName> = ["//a:a", "//b:b", "//c:c", "//d:d"]
            .iter()
            .map(|s| n(s))
            .collect();
        (graph, hashes, targets)
    }

    #[test]
    fn executes_all_steps_in_dependency_order() {
        let (graph, hashes, targets) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let report = RealExecutor::new(4)
            .execute(&graph, &targets, &hashes, &cache, |_| StepOutcome::Success);
        assert!(report.is_success());
        // a, b, d: 1 compile each; c: compile + run-tests = 5 steps.
        assert_eq!(report.executed.len(), 5);
        let pos = |t: &str| {
            report
                .executed
                .iter()
                .position(|s| s.target == n(t))
                .unwrap()
        };
        assert!(pos("//a:a") < pos("//b:b"));
        assert!(pos("//b:b") < pos("//c:c"));
    }

    #[test]
    fn parallel_execution_actually_happens() {
        // Two independent targets and 2 threads: both actions must be able
        // to overlap. We detect overlap with a rendezvous: each action
        // waits until the other has started (bounded, to avoid hangs).
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        for (path, content) in [("a/s.rs", "a"), ("b/s.rs", "b")] {
            let id = store.put(content.as_bytes().to_vec());
            tree.insert(p(path), id);
        }
        let graph = BuildGraph::from_targets([
            Target::new(n("//a:a"), RuleKind::Library, vec![p("a/s.rs")], vec![]),
            Target::new(n("//b:b"), RuleKind::Library, vec![p("b/s.rs")], vec![]),
        ])
        .unwrap();
        let hashes = TargetHashes::compute(&graph, &tree, &store).unwrap();
        let targets: HashSet<TargetName> = [n("//a:a"), n("//b:b")].into_iter().collect();
        let cache = Mutex::new(ArtifactCache::new());
        let started = AtomicUsize::new(0);
        let report = RealExecutor::new(2).execute(&graph, &targets, &hashes, &cache, |_| {
            started.fetch_add(1, Ordering::SeqCst);
            // Wait (bounded) for the sibling to start too.
            for _ in 0..10_000 {
                if started.load(Ordering::SeqCst) >= 2 {
                    return StepOutcome::Success;
                }
                std::thread::yield_now();
            }
            StepOutcome::Failure("sibling never started: no parallelism".into())
        });
        assert!(report.is_success(), "failure: {:?}", report.failure);
    }

    #[test]
    fn failure_stops_dependents() {
        let (graph, hashes, targets) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let report = RealExecutor::new(2).execute(&graph, &targets, &hashes, &cache, |step| {
            if step.target == n("//b:b") {
                StepOutcome::Failure("compile error".into())
            } else {
                StepOutcome::Success
            }
        });
        assert!(!report.is_success());
        let (failed_step, reason) = report.failure.as_ref().unwrap();
        assert_eq!(failed_step.target, n("//b:b"));
        assert_eq!(reason, "compile error");
        // c depends on b and must not have run.
        assert!(report.executed.iter().all(|s| s.target != n("//c:c")));
    }

    #[test]
    fn cache_skips_previously_built_targets() {
        let (graph, hashes, targets) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let r1 = RealExecutor::new(2)
            .execute(&graph, &targets, &hashes, &cache, |_| StepOutcome::Success);
        assert_eq!(r1.executed.len(), 5);
        // Second run: everything cached.
        let r2 = RealExecutor::new(2)
            .execute(&graph, &targets, &hashes, &cache, |_| StepOutcome::Success);
        assert_eq!(r2.executed.len(), 0);
        assert_eq!(r2.cache_hits, 5);
    }

    #[test]
    fn subset_execution_ignores_outside_deps() {
        let (graph, hashes, _) = fixture();
        // Request only c: its dependency b is outside the set, so c is
        // immediately ready (the caller vouches b is up to date).
        let targets: HashSet<TargetName> = [n("//c:c")].into_iter().collect();
        let cache = Mutex::new(ArtifactCache::new());
        let report = RealExecutor::new(1)
            .execute(&graph, &targets, &hashes, &cache, |_| StepOutcome::Success);
        assert!(report.is_success());
        assert_eq!(report.executed.len(), 2); // compile + run-tests
    }

    #[test]
    fn empty_target_set() {
        let (graph, hashes, _) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let report = RealExecutor::new(2).execute(&graph, &HashSet::new(), &hashes, &cache, |_| {
            StepOutcome::Success
        });
        assert!(report.is_success());
        assert!(report.executed.is_empty());
    }
}
