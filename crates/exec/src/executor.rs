//! A real (thread-based) build executor.
//!
//! The simulator models build time; this executor actually *runs* build
//! steps, so the examples and integration tests can exercise the system
//! end to end with genuine parallel execution: a crossbeam-scoped worker
//! pool pulls ready targets from a queue, a target becomes ready when all
//! its dependencies finished, and artifacts are recorded in the shared
//! [`ArtifactCache`].
//!
//! Failure policy is fail-fast: once any step fails, no new targets are
//! dispatched (in-flight ones drain), mirroring how the paper's build
//! controller aborts doomed speculations early.
//!
//! Failures come in two colors (the [`fault`](crate::fault) module's
//! taxonomy): a genuine [`StepOutcome::Failure`] means the change is
//! bad and resolves immediately, while a [`StepOutcome::InfraFailure`]
//! is environmental and is retried under the caller's [`RetryPolicy`]
//! with deterministic backoff charged as build time. Artifacts enter
//! the cache only for steps whose *final* outcome is success, so a
//! flaky or crashed step can never poison the cache.

use crate::cache::ArtifactCache;
use crate::fault::{InfraFault, RetryPolicy};
use crate::step::{steps_for, BuildStep, StepKind};
use parking_lot::Mutex;
use sq_build::{BuildGraph, TargetHashes, TargetName};
use sq_obs::MetricsRegistry;
use sq_sim::SimDuration;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Result of one step action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step succeeded.
    Success,
    /// The step genuinely failed with a reason: the change is bad.
    /// Never retried — a red compile stays red.
    Failure(String),
    /// The step failed for infrastructure reasons (worker crash,
    /// timeout, transient tooling): says nothing about the change.
    /// Retried under the executor's [`RetryPolicy`].
    InfraFailure(InfraFault),
}

impl StepOutcome {
    /// True iff the outcome is [`StepOutcome::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, StepOutcome::Success)
    }
}

/// Report from an execution run.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Steps that ran, in completion order.
    pub executed: Vec<BuildStep>,
    /// Steps skipped via the artifact cache.
    pub cache_hits: usize,
    /// The first genuine failure observed, if any.
    pub failure: Option<(BuildStep, String)>,
    /// The infra failure that exhausted its retry budget, if any.
    pub infra_failure: Option<(BuildStep, InfraFault)>,
    /// Every infra fault observed, including ones recovered by retry
    /// (completion order; feeds flakiness attribution upstream).
    pub infra_events: Vec<(BuildStep, InfraFault)>,
    /// Step attempts that were retried after an infra fault.
    pub infra_retries: u64,
    /// Total deterministic backoff charged as build time by retries.
    pub charged_backoff: SimDuration,
    /// Wall-clock latency of every step attempt, in completion order.
    /// Wall-clock data is real-time (not simulated), so it varies run to
    /// run — export it through histograms, never into deterministic
    /// fixtures.
    pub step_wall: Vec<(StepKind, Duration)>,
    /// Wall-clock time each executor thread spent inside step actions
    /// (index = thread index; length = thread count).
    pub worker_busy: Vec<Duration>,
}

impl ExecReport {
    /// True iff every step succeeded (no genuine or infra failure).
    pub fn is_success(&self) -> bool {
        self.failure.is_none() && self.infra_failure.is_none()
    }

    /// True iff the run ended red purely for infrastructure reasons:
    /// retries exhausted without any genuine failure. Such a run says
    /// nothing about the change — callers should rebuild, not reject.
    pub fn is_infra_red(&self) -> bool {
        self.failure.is_none() && self.infra_failure.is_some()
    }

    /// Wall-clock utilization of each executor thread over `wall` (the
    /// run's total wall time): busy-in-action / wall, clamped to [0, 1].
    pub fn worker_utilization(&self, wall: Duration) -> Vec<f64> {
        let total = wall.as_secs_f64();
        self.worker_busy
            .iter()
            .map(|b| {
                if total <= 0.0 {
                    0.0
                } else {
                    (b.as_secs_f64() / total).min(1.0)
                }
            })
            .collect()
    }

    /// Record this report into a metrics registry under the `exec.`
    /// namespace: step/cache/retry counters, per-kind step-latency
    /// histograms (milliseconds), and a per-thread busy-time histogram.
    pub fn record_into(&self, metrics: &mut MetricsRegistry) {
        metrics.add("exec.steps_executed", self.executed.len() as u64);
        metrics.add("exec.cache_hits", self.cache_hits as u64);
        metrics.add("exec.infra_events", self.infra_events.len() as u64);
        metrics.add("exec.infra_retries", self.infra_retries);
        if self.failure.is_some() {
            metrics.inc("exec.failures");
        }
        if self.infra_failure.is_some() {
            metrics.inc("exec.infra_red");
        }
        metrics.observe(
            "exec.charged_backoff_secs",
            self.charged_backoff.as_secs_f64(),
        );
        for (kind, dt) in &self.step_wall {
            metrics.observe(&format!("exec.step_wall_ms.{kind}"), dt.as_secs_f64() * 1e3);
        }
        for busy in &self.worker_busy {
            metrics.observe("exec.worker_busy_ms", busy.as_secs_f64() * 1e3);
        }
    }
}

/// A thread-pool executor over a build graph.
#[derive(Debug, Clone, Copy)]
pub struct RealExecutor {
    threads: usize,
}

impl RealExecutor {
    /// An executor with `threads` worker threads. Panics if zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        RealExecutor { threads }
    }

    /// Execute the pipelines of `targets` (a subset of `graph`) in
    /// dependency order.
    ///
    /// * Dependencies of a requested target that are themselves requested
    ///   are ordered before it; unrequested dependencies are assumed
    ///   up to date (the caller passes the affected set).
    /// * `action` runs each step; it must be thread-safe. Steps of one
    ///   target run sequentially; distinct ready targets run in parallel.
    /// * Steps whose `(target hash, step kind)` is cached are skipped.
    ///
    /// Infra failures are not retried (policy bound 1); use
    /// [`Self::execute_with_recovery`] to tolerate flaky steps.
    pub fn execute<F>(
        &self,
        graph: &BuildGraph,
        targets: &HashSet<TargetName>,
        hashes: &TargetHashes,
        cache: &Mutex<ArtifactCache>,
        action: F,
    ) -> ExecReport
    where
        F: Fn(&BuildStep) -> StepOutcome + Sync,
    {
        self.execute_with_recovery(graph, targets, hashes, cache, &RetryPolicy::none(), action)
    }

    /// [`Self::execute`], retrying infra-failed steps under `policy`.
    ///
    /// A step that returns [`StepOutcome::InfraFailure`] is re-run up
    /// to the policy's attempt bound, with each retry's deterministic
    /// backoff charged to the report (not slept — wall clock stays
    /// fast; the simulator accounts the latency). Genuine failures are
    /// never retried. A step whose final outcome is not success never
    /// reaches the artifact cache.
    pub fn execute_with_recovery<F>(
        &self,
        graph: &BuildGraph,
        targets: &HashSet<TargetName>,
        hashes: &TargetHashes,
        cache: &Mutex<ArtifactCache>,
        policy: &RetryPolicy,
        action: F,
    ) -> ExecReport
    where
        F: Fn(&BuildStep) -> StepOutcome + Sync,
    {
        // Restrict the dependency relation to the requested set.
        let mut remaining_deps: HashMap<&TargetName, usize> = HashMap::new();
        let mut dependents: HashMap<&TargetName, Vec<&TargetName>> = HashMap::new();
        for name in targets {
            let Some(t) = graph.get(name) else { continue };
            let in_set: Vec<&TargetName> = t.deps.iter().filter(|d| targets.contains(*d)).collect();
            remaining_deps.insert(name, in_set.len());
            for d in in_set {
                dependents
                    .entry(graph.get(d).map(|t| &t.name).unwrap_or(d))
                    .or_default()
                    .push(name);
            }
        }

        let state = Mutex::new(ExecState {
            ready: remaining_deps
                .iter()
                .filter(|(_, &n)| n == 0)
                .map(|(&t, _)| t.clone())
                .collect(),
            remaining: remaining_deps
                .iter()
                .map(|(&t, &n)| (t.clone(), n))
                .collect(),
            in_flight: 0,
            report: ExecReport {
                worker_busy: vec![Duration::ZERO; self.threads],
                ..ExecReport::default()
            },
        });
        let aborted = AtomicBool::new(false);

        // Shadow with references so the indexed `move` closures below
        // capture cheap copies instead of taking ownership.
        let state = &state;
        let aborted = &aborted;
        let dependents = &dependents;
        let action = &action;

        crossbeam::scope(|scope| {
            for widx in 0..self.threads {
                scope.spawn(move |_| {
                    let mut busy = Duration::ZERO;
                    loop {
                        // Claim a ready target or detect completion.
                        let claimed = {
                            let mut st = state.lock();
                            if let Some(t) = st.ready.pop() {
                                st.in_flight += 1;
                                Some(t)
                            } else if st.in_flight == 0 || aborted.load(Ordering::SeqCst) {
                                None
                            } else {
                                // Work may appear when in-flight targets
                                // finish; spin politely.
                                drop(st);
                                std::thread::yield_now();
                                continue;
                            }
                        };
                        let Some(target_name) = claimed else { break };

                        if aborted.load(Ordering::SeqCst) {
                            let mut st = state.lock();
                            st.in_flight -= 1;
                            continue;
                        }

                        // Run the pipeline for this target.
                        let target = graph.get(&target_name).expect("target in graph");
                        let hash = hashes.get(&target_name);
                        let mut target_failed = false;
                        for &kind in steps_for(target.kind) {
                            let step = BuildStep::new(target_name.clone(), kind);
                            // Cache check.
                            if let Some(h) = hash {
                                if cache.lock().lookup(h, kind).is_some() {
                                    state.lock().report.cache_hits += 1;
                                    continue;
                                }
                            }
                            // Attempt loop: infra failures retry under the
                            // policy; genuine outcomes resolve immediately.
                            let mut attempt = 1u32;
                            let outcome = loop {
                                let t0 = Instant::now();
                                let out = action(&step);
                                let dt = t0.elapsed();
                                busy += dt;
                                state.lock().report.step_wall.push((kind, dt));
                                match out {
                                    StepOutcome::InfraFailure(fault) => {
                                        state
                                            .lock()
                                            .report
                                            .infra_events
                                            .push((step.clone(), fault.clone()));
                                        if policy.should_retry(attempt) {
                                            let backoff = policy.backoff(attempt);
                                            let mut st = state.lock();
                                            st.report.infra_retries += 1;
                                            st.report.charged_backoff += backoff;
                                            drop(st);
                                            attempt += 1;
                                            continue;
                                        }
                                        break StepOutcome::InfraFailure(fault);
                                    }
                                    other => break other,
                                }
                            };
                            match outcome {
                                StepOutcome::Success => {
                                    if let Some(h) = hash {
                                        let inserted =
                                            cache.lock().insert_if_success(h, kind, &outcome);
                                        debug_assert!(inserted.is_some());
                                    }
                                    state.lock().report.executed.push(step);
                                }
                                StepOutcome::Failure(reason) => {
                                    let mut st = state.lock();
                                    if st.report.failure.is_none() {
                                        st.report.failure = Some((step, reason));
                                    }
                                    drop(st);
                                    aborted.store(true, Ordering::SeqCst);
                                    target_failed = true;
                                    break;
                                }
                                StepOutcome::InfraFailure(fault) => {
                                    // Retry budget exhausted: the build is
                                    // infra-red. Fail fast like a genuine
                                    // failure, but keep the colors apart so
                                    // the caller can rebuild instead of
                                    // rejecting the change.
                                    let mut st = state.lock();
                                    if st.report.infra_failure.is_none() {
                                        st.report.infra_failure = Some((step, fault));
                                    }
                                    drop(st);
                                    aborted.store(true, Ordering::SeqCst);
                                    target_failed = true;
                                    break;
                                }
                            }
                        }

                        // Mark completion; release dependents.
                        let mut st = state.lock();
                        st.in_flight -= 1;
                        if !target_failed && !aborted.load(Ordering::SeqCst) {
                            if let Some(deps) = dependents.get(&target_name) {
                                for &d in deps {
                                    let n = st.remaining.get_mut(d).expect("dependent tracked");
                                    *n -= 1;
                                    if *n == 0 {
                                        st.ready.push(d.clone());
                                    }
                                }
                            }
                        }
                    }
                    state.lock().report.worker_busy[widx] += busy;
                });
            }
        })
        .expect("executor threads must not panic");

        let mut final_state = state.lock();
        std::mem::take(&mut final_state.report)
    }
}

struct ExecState {
    ready: Vec<TargetName>,
    remaining: HashMap<TargetName, usize>,
    in_flight: usize,
    report: ExecReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_build::{RuleKind, Target};
    use sq_vcs::{ObjectStore, RepoPath, Tree};
    use std::str::FromStr;
    use std::sync::atomic::AtomicUsize;

    fn n(s: &str) -> TargetName {
        TargetName::from_str(s).unwrap()
    }

    fn p(s: &str) -> RepoPath {
        RepoPath::new(s).unwrap()
    }

    /// chain: a ← b ← c, plus independent d.
    fn fixture() -> (BuildGraph, TargetHashes, HashSet<TargetName>) {
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        for (path, content) in [
            ("a/s.rs", "a"),
            ("b/s.rs", "b"),
            ("c/s.rs", "c"),
            ("d/s.rs", "d"),
        ] {
            let id = store.put(content.as_bytes().to_vec());
            tree.insert(p(path), id);
        }
        let graph = BuildGraph::from_targets([
            Target::new(n("//a:a"), RuleKind::Library, vec![p("a/s.rs")], vec![]),
            Target::new(
                n("//b:b"),
                RuleKind::Library,
                vec![p("b/s.rs")],
                vec![n("//a:a")],
            ),
            Target::new(
                n("//c:c"),
                RuleKind::Test,
                vec![p("c/s.rs")],
                vec![n("//b:b")],
            ),
            Target::new(n("//d:d"), RuleKind::Library, vec![p("d/s.rs")], vec![]),
        ])
        .unwrap();
        let hashes = TargetHashes::compute(&graph, &tree, &store).unwrap();
        let targets: HashSet<TargetName> = ["//a:a", "//b:b", "//c:c", "//d:d"]
            .iter()
            .map(|s| n(s))
            .collect();
        (graph, hashes, targets)
    }

    #[test]
    fn executes_all_steps_in_dependency_order() {
        let (graph, hashes, targets) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let report = RealExecutor::new(4)
            .execute(&graph, &targets, &hashes, &cache, |_| StepOutcome::Success);
        assert!(report.is_success());
        // a, b, d: 1 compile each; c: compile + run-tests = 5 steps.
        assert_eq!(report.executed.len(), 5);
        let pos = |t: &str| {
            report
                .executed
                .iter()
                .position(|s| s.target == n(t))
                .unwrap()
        };
        assert!(pos("//a:a") < pos("//b:b"));
        assert!(pos("//b:b") < pos("//c:c"));
    }

    #[test]
    fn parallel_execution_actually_happens() {
        // Two independent targets and 2 threads: both actions must be able
        // to overlap. We detect overlap with a rendezvous: each action
        // waits until the other has started (bounded, to avoid hangs).
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        for (path, content) in [("a/s.rs", "a"), ("b/s.rs", "b")] {
            let id = store.put(content.as_bytes().to_vec());
            tree.insert(p(path), id);
        }
        let graph = BuildGraph::from_targets([
            Target::new(n("//a:a"), RuleKind::Library, vec![p("a/s.rs")], vec![]),
            Target::new(n("//b:b"), RuleKind::Library, vec![p("b/s.rs")], vec![]),
        ])
        .unwrap();
        let hashes = TargetHashes::compute(&graph, &tree, &store).unwrap();
        let targets: HashSet<TargetName> = [n("//a:a"), n("//b:b")].into_iter().collect();
        let cache = Mutex::new(ArtifactCache::new());
        let started = AtomicUsize::new(0);
        let report = RealExecutor::new(2).execute(&graph, &targets, &hashes, &cache, |_| {
            started.fetch_add(1, Ordering::SeqCst);
            // Wait (bounded) for the sibling to start too.
            for _ in 0..10_000 {
                if started.load(Ordering::SeqCst) >= 2 {
                    return StepOutcome::Success;
                }
                std::thread::yield_now();
            }
            StepOutcome::Failure("sibling never started: no parallelism".into())
        });
        assert!(report.is_success(), "failure: {:?}", report.failure);
    }

    #[test]
    fn failure_stops_dependents() {
        let (graph, hashes, targets) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let report = RealExecutor::new(2).execute(&graph, &targets, &hashes, &cache, |step| {
            if step.target == n("//b:b") {
                StepOutcome::Failure("compile error".into())
            } else {
                StepOutcome::Success
            }
        });
        assert!(!report.is_success());
        let (failed_step, reason) = report.failure.as_ref().unwrap();
        assert_eq!(failed_step.target, n("//b:b"));
        assert_eq!(reason, "compile error");
        // c depends on b and must not have run.
        assert!(report.executed.iter().all(|s| s.target != n("//c:c")));
    }

    #[test]
    fn cache_skips_previously_built_targets() {
        let (graph, hashes, targets) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let r1 = RealExecutor::new(2)
            .execute(&graph, &targets, &hashes, &cache, |_| StepOutcome::Success);
        assert_eq!(r1.executed.len(), 5);
        // Second run: everything cached.
        let r2 = RealExecutor::new(2)
            .execute(&graph, &targets, &hashes, &cache, |_| StepOutcome::Success);
        assert_eq!(r2.executed.len(), 0);
        assert_eq!(r2.cache_hits, 5);
    }

    #[test]
    fn subset_execution_ignores_outside_deps() {
        let (graph, hashes, _) = fixture();
        // Request only c: its dependency b is outside the set, so c is
        // immediately ready (the caller vouches b is up to date).
        let targets: HashSet<TargetName> = [n("//c:c")].into_iter().collect();
        let cache = Mutex::new(ArtifactCache::new());
        let report = RealExecutor::new(1)
            .execute(&graph, &targets, &hashes, &cache, |_| StepOutcome::Success);
        assert!(report.is_success());
        assert_eq!(report.executed.len(), 2); // compile + run-tests
    }

    #[test]
    fn flaky_step_recovers_via_retries_and_charges_backoff() {
        let (graph, hashes, targets) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let policy = RetryPolicy::standard(3, 42);
        // Every step infra-fails on its first attempt, passes after.
        let attempts: Mutex<HashMap<BuildStep, u32>> = Mutex::new(HashMap::new());
        let report = RealExecutor::new(2).execute_with_recovery(
            &graph,
            &targets,
            &hashes,
            &cache,
            &policy,
            |step| {
                let mut a = attempts.lock();
                let n = a.entry(step.clone()).or_insert(0);
                *n += 1;
                if *n == 1 {
                    StepOutcome::InfraFailure(InfraFault {
                        kind: crate::fault::InfraFaultKind::Timeout,
                        attempt: 1,
                    })
                } else {
                    StepOutcome::Success
                }
            },
        );
        assert!(report.is_success(), "flakes must be absorbed: {report:?}");
        assert_eq!(report.executed.len(), 5);
        assert_eq!(report.infra_retries, 5, "one retry per step");
        assert_eq!(report.infra_events.len(), 5);
        assert!(report.charged_backoff > SimDuration::ZERO);
        // Recovered steps are cached like any success.
        assert_eq!(cache.lock().stats().entries, 5);
    }

    #[test]
    fn exhausted_retries_are_infra_red_not_change_red() {
        let (graph, hashes, targets) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let policy = RetryPolicy::standard(3, 7);
        let report = RealExecutor::new(2).execute_with_recovery(
            &graph,
            &targets,
            &hashes,
            &cache,
            &policy,
            |step| {
                if step.target == n("//b:b") {
                    StepOutcome::InfraFailure(InfraFault {
                        kind: crate::fault::InfraFaultKind::WorkerCrash,
                        attempt: 0,
                    })
                } else {
                    StepOutcome::Success
                }
            },
        );
        assert!(!report.is_success());
        assert!(report.is_infra_red(), "no genuine failure happened");
        assert!(report.failure.is_none());
        let (step, _) = report.infra_failure.as_ref().unwrap();
        assert_eq!(step.target, n("//b:b"));
        // All three attempts were observed, two of them retried.
        assert_eq!(report.infra_retries, 2);
        assert_eq!(report.infra_events.len(), 3);
        // Fail-fast still applies: c (dependent of b) never ran.
        assert!(report.executed.iter().all(|s| s.target != n("//c:c")));
    }

    /// Acceptance criterion: the cache never contains an artifact from a
    /// step whose final outcome was not `Success` — neither infra-failed
    /// steps, nor steps that retried and then genuinely failed.
    #[test]
    fn cache_never_poisoned_by_failed_or_retried_then_failed_steps() {
        let (graph, hashes, targets) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let policy = RetryPolicy::standard(4, 9);
        // //b:b infra-fails forever (exhausts retries); //d:d infra-fails
        // once and then fails genuinely; the rest succeed.
        let attempts: Mutex<HashMap<BuildStep, u32>> = Mutex::new(HashMap::new());
        let report = RealExecutor::new(2).execute_with_recovery(
            &graph,
            &targets,
            &hashes,
            &cache,
            &policy,
            |step| {
                let mut a = attempts.lock();
                let cnt = a.entry(step.clone()).or_insert(0);
                *cnt += 1;
                if step.target == n("//b:b") {
                    StepOutcome::InfraFailure(InfraFault {
                        kind: crate::fault::InfraFaultKind::TransientTooling,
                        attempt: *cnt,
                    })
                } else if step.target == n("//d:d") {
                    if *cnt == 1 {
                        StepOutcome::InfraFailure(InfraFault {
                            kind: crate::fault::InfraFaultKind::Timeout,
                            attempt: 1,
                        })
                    } else {
                        StepOutcome::Failure("genuine breakage".into())
                    }
                } else {
                    StepOutcome::Success
                }
            },
        );
        assert!(!report.is_success());
        let cache = cache.lock();
        for (target, must_be_absent) in [("//b:b", true), ("//d:d", true)] {
            let h = hashes.get(&n(target)).unwrap();
            for &kind in steps_for(graph.get(&n(target)).unwrap().kind) {
                assert!(
                    !cache.contains(h, kind),
                    "{target} {kind} cached despite non-success final outcome \
                     (must_be_absent={must_be_absent})"
                );
            }
        }
        // Only steps whose final outcome was Success are cached.
        assert_eq!(cache.stats().entries, report.executed.len());
    }

    /// Satellite regression: fail-fast drain. After the first failure,
    /// no *new* target is dispatched, while in-flight targets complete.
    #[test]
    fn fail_fast_drains_in_flight_without_new_dispatches() {
        use std::sync::atomic::AtomicUsize;
        // f and s are independent and ready; p1, p2 depend on both, so
        // they become dispatchable only once f and s complete.
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        for (path, content) in [
            ("f/s.rs", "f"),
            ("s/s.rs", "s"),
            ("p1/s.rs", "p1"),
            ("p2/s.rs", "p2"),
        ] {
            let id = store.put(content.as_bytes().to_vec());
            tree.insert(p(path), id);
        }
        let graph = BuildGraph::from_targets([
            Target::new(n("//f:f"), RuleKind::Library, vec![p("f/s.rs")], vec![]),
            Target::new(n("//s:s"), RuleKind::Library, vec![p("s/s.rs")], vec![]),
            Target::new(
                n("//p1:p1"),
                RuleKind::Library,
                vec![p("p1/s.rs")],
                vec![n("//f:f"), n("//s:s")],
            ),
            Target::new(
                n("//p2:p2"),
                RuleKind::Library,
                vec![p("p2/s.rs")],
                vec![n("//f:f"), n("//s:s")],
            ),
        ])
        .unwrap();
        let hashes = TargetHashes::compute(&graph, &tree, &store).unwrap();
        let targets: HashSet<TargetName> = ["//f:f", "//s:s", "//p1:p1", "//p2:p2"]
            .iter()
            .map(|s| n(s))
            .collect();
        let cache = Mutex::new(ArtifactCache::new());
        let s_started = AtomicBool::new(false);
        let f_failed = AtomicBool::new(false);
        let dispatched_after_failure = AtomicUsize::new(0);
        let report = RealExecutor::new(2).execute(&graph, &targets, &hashes, &cache, |step| {
            if step.target == n("//f:f") {
                // Wait until the sibling is genuinely in flight, then fail.
                for _ in 0..100_000 {
                    if s_started.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::yield_now();
                }
                f_failed.store(true, Ordering::SeqCst);
                StepOutcome::Failure("first failure".into())
            } else if step.target == n("//s:s") {
                s_started.store(true, Ordering::SeqCst);
                // Drain window: linger until the failure has been
                // delivered, giving a buggy scheduler every chance to
                // dispatch p1/p2 behind our back.
                for _ in 0..100_000 {
                    if f_failed.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::yield_now();
                }
                for _ in 0..1_000 {
                    std::thread::yield_now();
                }
                StepOutcome::Success
            } else {
                // p1/p2 must never be dispatched.
                if f_failed.load(Ordering::SeqCst) {
                    dispatched_after_failure.fetch_add(1, Ordering::SeqCst);
                }
                StepOutcome::Success
            }
        });
        assert!(!report.is_success());
        assert_eq!(report.failure.as_ref().unwrap().0.target, n("//f:f"));
        // The in-flight target drained to completion...
        assert!(
            report.executed.iter().any(|s| s.target == n("//s:s")),
            "in-flight step must complete: {:?}",
            report.executed
        );
        // ...and nothing new was dispatched after the failure.
        assert_eq!(dispatched_after_failure.load(Ordering::SeqCst), 0);
        assert!(report
            .executed
            .iter()
            .all(|s| s.target != n("//p1:p1") && s.target != n("//p2:p2")));
    }

    #[test]
    fn instrumentation_records_step_latency_and_worker_busy_time() {
        let (graph, hashes, targets) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let report = RealExecutor::new(2).execute(&graph, &targets, &hashes, &cache, |_| {
            std::thread::sleep(Duration::from_millis(2));
            StepOutcome::Success
        });
        assert!(report.is_success());
        // One latency sample per step attempt, one busy slot per thread.
        assert_eq!(report.step_wall.len(), 5);
        assert_eq!(report.worker_busy.len(), 2);
        let total_busy: Duration = report.worker_busy.iter().sum();
        assert!(
            total_busy >= Duration::from_millis(10),
            "5 steps × 2ms must be attributed: {total_busy:?}"
        );
        let util = report.worker_utilization(Duration::from_secs(1));
        assert_eq!(util.len(), 2);
        assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));

        let mut metrics = MetricsRegistry::new();
        report.record_into(&mut metrics);
        assert_eq!(metrics.counter("exec.steps_executed"), 5);
        assert_eq!(metrics.counter("exec.cache_hits"), 0);
        let h = metrics
            .histogram("exec.step_wall_ms.compile")
            .expect("compile latency histogram");
        assert_eq!(h.count(), 4); // a, b, d compile + c compile
        assert_eq!(
            metrics.histogram("exec.worker_busy_ms").map(|h| h.count()),
            Some(2)
        );
    }

    #[test]
    fn empty_target_set() {
        let (graph, hashes, _) = fixture();
        let cache = Mutex::new(ArtifactCache::new());
        let report = RealExecutor::new(2).execute(&graph, &HashSet::new(), &hashes, &cache, |_| {
            StepOutcome::Success
        });
        assert!(report.is_success());
        assert!(report.executed.is_empty());
    }
}
