//! Build planning: from affected targets to a minimal, ordered step list.
//!
//! Implements the paper's "minimal set of build steps" optimization
//! (Section 6): when scheduling `B_{1.2.3}` after `B_{1.2}`, only steps
//! for `δ_{H⊕C₁⊕C₂⊕C₃} − δ_{H⊕C₁⊕C₂}` are performed; everything else is
//! reused from prior builds via the artifact cache.

use crate::cache::ArtifactCache;
use crate::step::{steps_for, BuildStep};
use sq_build::{AffectedSet, BuildGraph, TargetHashes, TargetName};
use sq_sim::SimDuration;
use std::collections::HashSet;

/// A concrete plan: steps in dependency-respecting order.
#[derive(Debug, Clone, Default)]
pub struct BuildPlan {
    /// Steps to execute, topologically ordered by target.
    pub steps: Vec<BuildStep>,
    /// Steps skipped because an artifact was already cached.
    pub cached_steps: usize,
}

impl BuildPlan {
    /// Plan a full build of the affected set `delta` under `graph`.
    ///
    /// For each affected (non-deleted) target, emits its rule pipeline in
    /// topological order, skipping steps whose artifact is already in the
    /// cache (keyed by the target's hash in `hashes`).
    pub fn for_affected(
        graph: &BuildGraph,
        hashes: &TargetHashes,
        delta: &AffectedSet,
        cache: &ArtifactCache,
    ) -> BuildPlan {
        let affected: HashSet<&TargetName> = delta
            .iter()
            .filter(|(_, state)| !matches!(state, sq_build::affected::AffectedState::Deleted))
            .map(|(name, _)| name)
            .collect();
        let mut plan = BuildPlan::default();
        for name in graph.topo_order() {
            if !affected.contains(name) {
                continue;
            }
            let Some(target) = graph.get(name) else {
                continue;
            };
            let Some(hash) = hashes.get(name) else {
                continue;
            };
            for &kind in steps_for(target.kind) {
                if cache.contains(hash, kind) {
                    plan.cached_steps += 1;
                } else {
                    plan.steps.push(BuildStep::new(name.clone(), kind));
                }
            }
        }
        plan
    }

    /// The incremental plan: steps for targets in `full` that are *not*
    /// already covered by `prior` — the paper's
    /// `δ_{H⊕C₁⊕C₂⊕C₃} − δ_{H⊕C₁⊕C₂}`.
    ///
    /// A target is covered if `prior` contains it with the same state
    /// (same resulting hash). A target affected in both but with
    /// different hashes must be rebuilt.
    pub fn incremental(
        graph: &BuildGraph,
        hashes: &TargetHashes,
        full: &AffectedSet,
        prior: &AffectedSet,
        cache: &ArtifactCache,
    ) -> BuildPlan {
        // The set difference on (name, state) tuples.
        let mut plan_delta: Vec<(&TargetName, &sq_build::affected::AffectedState)> = Vec::new();
        for (name, state) in full.iter() {
            match prior.get(name) {
                Some(prev) if prev == state => {}
                _ => plan_delta.push((name, state)),
            }
        }
        let affected: HashSet<&TargetName> = plan_delta
            .iter()
            .filter(|(_, s)| !matches!(s, sq_build::affected::AffectedState::Deleted))
            .map(|(n, _)| *n)
            .collect();
        let mut plan = BuildPlan::default();
        for name in graph.topo_order() {
            if !affected.contains(name) {
                continue;
            }
            let Some(target) = graph.get(name) else {
                continue;
            };
            let Some(hash) = hashes.get(name) else {
                continue;
            };
            for &kind in steps_for(target.kind) {
                if cache.contains(hash, kind) {
                    plan.cached_steps += 1;
                } else {
                    plan.steps.push(BuildStep::new(name.clone(), kind));
                }
            }
        }
        plan
    }

    /// Number of steps to run.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff nothing needs to run.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Estimated serial duration under a per-step duration function.
    pub fn serial_duration(
        &self,
        mut estimate: impl FnMut(&BuildStep) -> SimDuration,
    ) -> SimDuration {
        self.steps
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + estimate(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sq_build::affected::SnapshotAnalysis;
    use sq_vcs::{ObjectStore, Patch, RepoPath, Tree};
    use std::str::FromStr;

    fn p(s: &str) -> RepoPath {
        RepoPath::new(s).unwrap()
    }

    fn n(s: &str) -> TargetName {
        TargetName::from_str(s).unwrap()
    }

    /// lib ← app (binary); test depends on lib too.
    fn workspace() -> (Tree, ObjectStore) {
        let mut store = ObjectStore::new();
        let mut tree = Tree::new();
        let files = [
            ("lib/BUILD", "library(name = \"lib\", srcs = [\"l.rs\"])"),
            ("lib/l.rs", "lib-v1"),
            (
                "app/BUILD",
                "binary(name = \"app\", srcs = [\"m.rs\"], deps = [\"//lib:lib\"])",
            ),
            ("app/m.rs", "app-v1"),
            (
                "t/BUILD",
                "test(name = \"t\", srcs = [\"t.rs\"], deps = [\"//lib:lib\"])",
            ),
            ("t/t.rs", "t-v1"),
        ];
        for (path, content) in files {
            let id = store.put(content.as_bytes().to_vec());
            tree.insert(p(path), id);
        }
        (tree, store)
    }

    #[test]
    fn full_plan_orders_deps_first() {
        let (tree, mut store) = workspace();
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        let t2 = Patch::write(p("lib/l.rs"), "lib-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let new = SnapshotAnalysis::analyze(&t2, &store).unwrap();
        let delta = AffectedSet::between(&base, &new);
        let cache = ArtifactCache::new();
        let plan = BuildPlan::for_affected(&new.graph, &new.hashes, &delta, &cache);
        // lib (compile) + app (compile, link, package) + t (compile, run).
        assert_eq!(plan.len(), 6);
        let lib_pos = plan
            .steps
            .iter()
            .position(|s| s.target == n("//lib:lib"))
            .unwrap();
        let app_pos = plan
            .steps
            .iter()
            .position(|s| s.target == n("//app:app"))
            .unwrap();
        assert!(lib_pos < app_pos, "dependency must be built first");
    }

    #[test]
    fn cache_hits_shrink_plan() {
        let (tree, mut store) = workspace();
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        let t2 = Patch::write(p("lib/l.rs"), "lib-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let new = SnapshotAnalysis::analyze(&t2, &store).unwrap();
        let delta = AffectedSet::between(&base, &new);
        let mut cache = ArtifactCache::new();
        // Simulate that lib's compile already ran for this exact hash.
        let lib_hash = new.hashes.get(&n("//lib:lib")).unwrap();
        cache.insert(lib_hash, crate::step::StepKind::Compile);
        let plan = BuildPlan::for_affected(&new.graph, &new.hashes, &delta, &cache);
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.cached_steps, 1);
    }

    #[test]
    fn incremental_plan_is_the_delta_difference() {
        let (tree, mut store) = workspace();
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        // C1 touches lib (affects lib, app, t). C1⊕C2 additionally
        // touches app's main.
        let c1 = Patch::write(p("lib/l.rs"), "lib-v2");
        let c12 = c1.compose(&Patch::write(p("app/m.rs"), "app-v2"));
        let t1 = c1.apply(&tree, &mut store).unwrap();
        let t12 = c12.apply(&tree, &mut store).unwrap();
        let a1 = SnapshotAnalysis::analyze(&t1, &store).unwrap();
        let a12 = SnapshotAnalysis::analyze(&t12, &store).unwrap();
        let d1 = AffectedSet::between(&base, &a1);
        let d12 = AffectedSet::between(&base, &a12);
        let cache = ArtifactCache::new();
        let plan = BuildPlan::incremental(&a12.graph, &a12.hashes, &d12, &d1, &cache);
        // Only //app:app differs between the two affected sets (its hash
        // changed again due to m.rs). lib and t carry identical states.
        let targets: HashSet<&TargetName> = plan.steps.iter().map(|s| &s.target).collect();
        assert!(targets.contains(&n("//app:app")));
        assert!(!targets.contains(&n("//lib:lib")));
        assert!(!targets.contains(&n("//t:t")));
    }

    #[test]
    fn incremental_with_identical_sets_is_empty() {
        let (tree, mut store) = workspace();
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        let t2 = Patch::write(p("lib/l.rs"), "lib-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let a2 = SnapshotAnalysis::analyze(&t2, &store).unwrap();
        let d = AffectedSet::between(&base, &a2);
        let cache = ArtifactCache::new();
        let plan = BuildPlan::incremental(&a2.graph, &a2.hashes, &d, &d, &cache);
        assert!(plan.is_empty());
    }

    #[test]
    fn serial_duration_sums_estimates() {
        let (tree, mut store) = workspace();
        let base = SnapshotAnalysis::analyze(&tree, &store).unwrap();
        let t2 = Patch::write(p("app/m.rs"), "app-v2")
            .apply(&tree, &mut store)
            .unwrap();
        let new = SnapshotAnalysis::analyze(&t2, &store).unwrap();
        let delta = AffectedSet::between(&base, &new);
        let cache = ArtifactCache::new();
        let plan = BuildPlan::for_affected(&new.graph, &new.hashes, &delta, &cache);
        // app alone: compile + link + package = 3 steps.
        assert_eq!(plan.len(), 3);
        let d = plan.serial_duration(|_| SimDuration::from_mins(2));
        assert_eq!(d, SimDuration::from_mins(6));
    }
}
