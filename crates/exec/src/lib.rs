//! # sq-exec — the build controller (paper Section 6)
//!
//! "Based on the selected builds, the planner engine … schedules
//! executions of selected builds … through the build controller." The
//! controller owns three optimizations the paper calls out:
//!
//! * **Minimal set of build steps** ([`plan`]): when building
//!   `H ⊕ C₁ ⊕ C₂ ⊕ C₃` after `H ⊕ C₁ ⊕ C₂` has already built, only the
//!   difference `δ_{H⊕C₁⊕C₂⊕C₃} − δ_{H⊕C₁⊕C₂}` needs steps.
//! * **Load balancing** ([`balance`]): steps are spread over workers using
//!   the history of observed step durations so every worker gets an even
//!   amount of work.
//! * **Caching artifacts** ([`cache`]): outputs are keyed by target hash,
//!   so any build that reaches an already-built target reuses the
//!   artifact.
//!
//! Two execution backends are provided: [`pool::WorkerPool`], a capacity
//! model for the discrete-event simulator (a build occupies one worker
//! for its duration, as in the paper's evaluation grid), and
//! [`executor::RealExecutor`], a crossbeam thread pool that actually runs
//! step actions in dependency order for the runnable examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod cache;
pub mod controller;
pub mod executor;
pub mod fault;
pub mod plan;
pub mod pool;
pub mod step;

pub use balance::{DurationModel, LoadBalancer};
pub use cache::{ArtifactCache, ArtifactId, CacheStats};
pub use controller::{BuildController, ControllerReport};
pub use executor::{ExecReport, RealExecutor, StepOutcome};
pub use fault::{FaultInjector, FaultPlan, InfraFault, InfraFaultKind, RetryPolicy};
pub use plan::BuildPlan;
pub use pool::WorkerPool;
pub use step::{steps_for, BuildStep, StepKind};
