//! Seeded end-to-end benchmark emitting a machine-readable JSON report.
//!
//! Default mode runs the recorded configuration and writes
//! `results/BENCH_e2e.json` under the repository root; `--smoke` runs a
//! small configuration under a tight time budget, writes the document
//! under `target/figures/`, and exits nonzero unless it validates.
//! `--out <path>` overrides the destination in either mode (this is how
//! the committed trajectory file at the repo root is refreshed:
//! `bench_e2e --out BENCH_e2e.json`). Both modes validate the emitted
//! JSON before writing it. The document is byte-identical across
//! same-seed runs (see `sq_bench::e2e`).

use sq_bench::e2e::{run_e2e, validate, E2eParams};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("[bench_e2e] FAIL: --out requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });
    let params = if smoke {
        E2eParams::smoke()
    } else {
        E2eParams::standard()
    };
    println!(
        "[bench_e2e] {} run: seed={} changes={} rate={}/h workers={} fault_rate={}",
        if smoke { "smoke" } else { "standard" },
        params.seed,
        params.n_changes,
        params.rate,
        params.workers,
        params.fault_rate
    );
    let json = run_e2e(&params);
    if let Err(e) = validate(&json) {
        eprintln!("[bench_e2e] FAIL: emitted document is invalid: {e}");
        std::process::exit(1);
    }
    let path = match out_override {
        Some(out) => {
            let p = PathBuf::from(out);
            if p.is_absolute() {
                p
            } else {
                repo_root().join(p)
            }
        }
        None if smoke => sq_bench::figures_dir().join("BENCH_e2e_smoke.json"),
        None => repo_root().join("results").join("BENCH_e2e.json"),
    };
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&path, &json).expect("write benchmark JSON");
    println!(
        "[bench_e2e] ok: wrote {} ({} bytes)",
        path.display(),
        json.len()
    );
}

fn repo_root() -> PathBuf {
    // crates/bench/ -> crates/ -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels below the repo root")
        .to_path_buf()
}
