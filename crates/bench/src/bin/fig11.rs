//! Figure 11: P50/P95/P99 turnaround time normalized against Oracle, on
//! the {100..500 changes/hour} × {100..500 workers} grid, for
//! SubmitQueue (a–c), Speculate-all (d–f) and Optimistic (g–i).
//!
//! Paper shape: SubmitQueue stays within ~1.2–4× of Oracle and improves
//! with workers; Speculate-all sits at ~6–24×; Optimistic at ~7–19× and
//! is insensitive to worker count.

use sq_core::strategy::StrategyKind;
use std::collections::HashMap;

fn main() {
    let rates = sq_bench::rates();
    let workers = sq_bench::worker_counts();
    let predictor = sq_bench::trained_predictor();
    let kinds = [
        StrategyKind::SubmitQueue,
        StrategyKind::SpeculateAll,
        StrategyKind::Optimistic,
    ];

    // (kind, rate, workers) → (p50, p95, p99), raw minutes.
    let mut raw: HashMap<(&str, u64, usize), (f64, f64, f64)> = HashMap::new();
    let mut oracle: HashMap<(u64, usize), (f64, f64, f64)> = HashMap::new();
    for &rate in &rates {
        let w = sq_bench::workload_at_rate(rate);
        for &nw in &workers {
            let o = sq_bench::run_cell(
                &w,
                &sq_bench::strategy_for(StrategyKind::Oracle, &w, &predictor),
                nw,
                true,
            );
            oracle.insert((rate as u64, nw), o.turnaround_p50_p95_p99());
            for kind in kinds {
                let r =
                    sq_bench::run_cell(&w, &sq_bench::strategy_for(kind, &w, &predictor), nw, true);
                raw.insert((kind.name(), rate as u64, nw), r.turnaround_p50_p95_p99());
                eprintln!("[fig11] {} rate={rate} workers={nw} done", kind.name());
            }
        }
    }

    let mut rows = Vec::new();
    for kind in kinds {
        for (pi, pname) in [(0usize, "P50"), (1, "P95"), (2, "P99")] {
            sq_bench::print_matrix(
                &format!(
                    "{} {} turnaround (normalized vs Oracle)",
                    kind.name(),
                    pname
                ),
                &rates,
                &workers,
                |rate, nw| {
                    let o = oracle[&(rate as u64, nw)];
                    let v = raw[&(kind.name(), rate as u64, nw)];
                    let (ov, vv) = match pi {
                        0 => (o.0, v.0),
                        1 => (o.1, v.1),
                        _ => (o.2, v.2),
                    };
                    if ov > 0.0 {
                        vv / ov
                    } else {
                        0.0
                    }
                },
            );
            for &rate in &rates {
                for &nw in &workers {
                    let o = oracle[&(rate as u64, nw)];
                    let v = raw[&(kind.name(), rate as u64, nw)];
                    let (ov, vv) = match pi {
                        0 => (o.0, v.0),
                        1 => (o.1, v.1),
                        _ => (o.2, v.2),
                    };
                    let norm = if ov > 0.0 { vv / ov } else { 0.0 };
                    rows.push(format!(
                        "{},{},{},{},{:.3},{:.2},{:.2}",
                        kind.name(),
                        pname,
                        rate,
                        nw,
                        norm,
                        vv,
                        ov
                    ));
                }
            }
        }
    }
    sq_bench::write_csv(
        "fig11.csv",
        "strategy,percentile,changes_per_hour,workers,normalized,minutes,oracle_minutes",
        &rows,
    );
    println!(
        "\npaper: SubmitQueue ≈1.2–4×, Speculate-all ≈6–24×, Optimistic ≈7–19× (flat in workers)"
    );
}
