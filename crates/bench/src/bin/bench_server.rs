//! Serving-layer benchmark: replays an `sq-workload` trace against a
//! live loopback `sq-server` and measures request throughput,
//! enqueue-to-ack / enqueue-to-verdict latency percentiles, and the
//! graceful-drain durability guarantee (zero lost acked enqueues
//! across a restart).
//!
//! Default mode runs the recorded configuration and writes the
//! deterministic document to `results/BENCH_server.json` under the
//! repository root (the wall-clock companion always goes to
//! `target/figures/BENCH_server_timing.json`); `--smoke` runs the
//! small configuration **twice**, fails unless the two documents are
//! byte-identical and the zero-loss gate holds, and writes under
//! `target/figures/`. `--out <path>` overrides the destination in
//! either mode (this is how the committed file at the repo root is
//! refreshed: `bench_server --out BENCH_server.json`). `--rate <r>`
//! paces the sequential phase at `r` enqueues/second (timing document
//! only); `--uds` serves over a Unix-domain socket instead of TCP.
//! Both modes validate the emitted JSON before writing it.

use sq_bench::server::{run_server_bench, validate, ServerBenchParams};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let use_uds = args.iter().any(|a| a == "--uds");
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("[bench_server] FAIL: {name} requires an argument");
                    std::process::exit(2);
                })
                .clone()
        })
    };
    let out_override = flag_value("--out");
    let rate: f64 = flag_value("--rate")
        .map(|r| {
            r.parse().unwrap_or_else(|_| {
                eprintln!("[bench_server] FAIL: --rate requires a number, got {r:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.0);
    let params = ServerBenchParams {
        rate,
        use_uds,
        ..if smoke {
            ServerBenchParams::smoke()
        } else {
            ServerBenchParams::standard()
        }
    };
    println!(
        "[bench_server] {} run: seed={} n_parts={} n_changes={} burst={} transport={} rate={}",
        if smoke { "smoke" } else { "standard" },
        params.seed,
        params.n_parts,
        params.n_changes,
        params.burst,
        if params.use_uds { "uds" } else { "tcp" },
        if params.rate > 0.0 {
            format!("{}/s", params.rate)
        } else {
            "unpaced".to_string()
        },
    );
    let report = run_server_bench(&params);
    let t = &report.timing;
    println!(
        "[bench_server] sequential: {:>3} changes landed | {:>5} requests | {:>9.3} ms ({:>8.1} req/s)",
        report.sequential.landed,
        t.requests,
        t.elapsed_nanos as f64 / 1e6,
        t.requests as f64 / (t.elapsed_nanos.max(1) as f64 / 1e9),
    );
    println!(
        "[bench_server] ack latency     micros: P50 {:>9.1} | P95 {:>9.1} | P99 {:>9.1}",
        t.ack_p50, t.ack_p95, t.ack_p99
    );
    println!(
        "[bench_server] verdict latency micros: P50 {:>9.1} | P95 {:>9.1} | P99 {:>9.1}",
        t.verdict_p50, t.verdict_p95, t.verdict_p99
    );
    println!(
        "[bench_server] durability: {} acked | {} landed after restart | {} lost",
        report.durability.acked, report.durability.landed_after_restart, report.durability.lost
    );
    if smoke {
        if let Err(e) = report.smoke_gate() {
            eprintln!("[bench_server] FAIL: zero-loss gate: {e}");
            std::process::exit(1);
        }
        // Byte-reproducibility: a same-seed rerun must emit the
        // identical deterministic document.
        let rerun = run_server_bench(&params);
        if rerun.to_json() != report.to_json() {
            eprintln!(
                "[bench_server] FAIL: deterministic document diverged across same-seed reruns"
            );
            std::process::exit(1);
        }
        println!("[bench_server] gate ok: zero lost acks, deterministic document reproducible");
    }
    let json = report.to_json();
    if let Err(e) = validate(&json) {
        eprintln!("[bench_server] FAIL: emitted document is invalid: {e}");
        std::process::exit(1);
    }
    let timing_path = sq_bench::figures_dir().join("BENCH_server_timing.json");
    std::fs::write(&timing_path, report.to_timing_json()).expect("write timing JSON");
    let path = match out_override {
        Some(out) => {
            let p = PathBuf::from(out);
            if p.is_absolute() {
                p
            } else {
                repo_root().join(p)
            }
        }
        None if smoke => sq_bench::figures_dir().join("BENCH_server_smoke.json"),
        None => repo_root().join("results").join("BENCH_server.json"),
    };
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&path, &json).expect("write benchmark JSON");
    println!(
        "[bench_server] ok: wrote {} ({} bytes) and {}",
        path.display(),
        json.len(),
        timing_path.display()
    );
}

fn repo_root() -> PathBuf {
    // crates/bench/ -> crates/ -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels below the repo root")
        .to_path_buf()
}
