//! Sharded-planner scaling benchmark: the same workload through one
//! global planning window and through the sharded multi-lane planner,
//! under the same load-adaptive planning-cost model, on the same worker
//! fleet.
//!
//! Default mode runs the recorded configuration (12k changes/hour —
//! above what a single window can schedule, below what the fleet can
//! build) and writes the deterministic document to
//! `results/BENCH_shard.json` under the repository root; `--smoke` runs
//! the small configuration **twice**, fails unless the two documents
//! are byte-identical and every gate holds (always-green, zero wrongful
//! rejections globally and per lane, sharded sustained ≥ single-queue),
//! and writes under `target/figures/`. `--out <path>` overrides the
//! destination in either mode (this is how the committed file at the
//! repo root is refreshed: `bench_shard --out BENCH_shard.json`). Both
//! modes validate the emitted JSON before writing it.

use sq_bench::shard::{run_shard_bench, validate, ShardBenchParams};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("[bench_shard] FAIL: --out requires an argument");
                std::process::exit(2);
            })
            .clone()
    });
    let params = if smoke {
        ShardBenchParams::smoke()
    } else {
        ShardBenchParams::standard()
    };
    println!(
        "[bench_shard] {} run: seed={} rate={}/h changes={} shards={} workers={} \
         planning={}ms+{}ms/pending",
        if smoke { "smoke" } else { "standard" },
        params.seed,
        params.rate_per_hour,
        params.n_changes(),
        params.n_shards,
        params.total_workers,
        params.planning_base_ms,
        params.planning_per_pending_ms,
    );
    let report = run_shard_bench(&params);
    for cell in [&report.single, &report.sharded] {
        println!(
            "[bench_shard] {:<12} sustained {:>8.0}/h | commits {:>5} | rejects {:>4} | \
             P50 {:>7.1}m P95 {:>7.1}m | green={} wrongful={}",
            cell.label,
            cell.sustained_per_hour,
            cell.commits,
            cell.rejects,
            cell.p50_mins,
            cell.p95_mins,
            cell.green,
            cell.wrongful,
        );
    }
    for l in &report.lanes {
        println!(
            "[bench_shard]   lane {:<8} workers {:>4} | routed {:>5} | committed {:>5} | \
             rejected {:>4} | wrongful {}",
            l.name, l.workers, l.routed, l.committed, l.rejected, l.wrongful
        );
    }
    if let Err(e) = report.smoke_gate() {
        eprintln!("[bench_shard] FAIL: gate: {e}");
        std::process::exit(1);
    }
    if smoke {
        // Byte-reproducibility: a same-seed rerun must emit the
        // identical deterministic document.
        let rerun = run_shard_bench(&params);
        if rerun.to_json() != report.to_json() {
            eprintln!(
                "[bench_shard] FAIL: deterministic document diverged across same-seed reruns"
            );
            std::process::exit(1);
        }
        println!(
            "[bench_shard] gate ok: green, zero wrongful, sharded ≥ single-queue, reproducible"
        );
    } else {
        println!(
            "[bench_shard] gate ok: sharded {:.0}/h ≥ {:.0}/h floor, single-queue {:.0}/h below it",
            report.sharded.sustained_per_hour,
            params.throughput_floor,
            report.single.sustained_per_hour,
        );
    }
    let json = report.to_json();
    if let Err(e) = validate(&json) {
        eprintln!("[bench_shard] FAIL: emitted document is invalid: {e}");
        std::process::exit(1);
    }
    let path = match out_override {
        Some(out) => {
            let p = PathBuf::from(out);
            if p.is_absolute() {
                p
            } else {
                repo_root().join(p)
            }
        }
        None if smoke => sq_bench::figures_dir().join("BENCH_shard_smoke.json"),
        None => repo_root().join("results").join("BENCH_shard.json"),
    };
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&path, &json).expect("write benchmark JSON");
    println!(
        "[bench_shard] ok: wrote {} ({} bytes)",
        path.display(),
        json.len()
    );
}

fn repo_root() -> PathBuf {
    // crates/bench/ -> crates/ -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels below the repo root")
        .to_path_buf()
}
