//! The lean-speculation ablation matrix, machine-readable.
//!
//! Replays one seeded workload through five lean configurations —
//! baseline, probability-gated skipping, risk prioritization, bypass
//! lanes, and all three together — audits every cell (always-green,
//! zero wrongful rejections), and writes the combined ablation
//! document.
//!
//! Default mode runs the recorded configuration (identical to
//! `bench_e2e`'s, so the baseline cell reproduces `BENCH_e2e.json`'s
//! build counts) and writes `results/BENCH_lean.json` under the
//! repository root; `--out <path>` overrides the destination (how the
//! committed trajectory at the repo root is refreshed:
//! `bench_lean --out BENCH_lean.json`). `--smoke` runs a small
//! configuration, writes under `target/figures/`, and exits nonzero
//! unless every cell passes its audits and a same-seed rerun
//! reproduces the document byte for byte.

use sq_bench::lean::{matrix_json, run_matrix, validate, violations, LeanBenchParams};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("[bench_lean] FAIL: --out requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });
    let params = if smoke {
        LeanBenchParams::smoke()
    } else {
        LeanBenchParams::standard()
    };
    println!(
        "[bench_lean] {} run: seed={} changes={} rate={} workers={} history={}",
        if smoke { "smoke" } else { "standard" },
        params.seed,
        params.n_changes,
        params.rate,
        params.workers,
        params.history_changes,
    );

    let matrix = run_matrix(&params);
    println!(
        "[bench_lean] calibrated skip threshold: {}",
        matrix.skip_threshold
    );
    for cell in &matrix.cells {
        let report = cell.lean_report();
        println!(
            "[bench_lean]   {:22} started={:4} wasted={:4} sustained={:8.3}/h \
             skipped={:3} (hits={} misses={}) bypassed={:3} {}",
            cell.label,
            cell.result.builds_started,
            cell.wasted(),
            cell.result.sustained_throughput_per_hour(),
            report.skipped,
            report.skip_hits,
            report.skip_misses,
            report.bypassed,
            if cell.green.is_ok() && cell.wrongful == 0 {
                "clean"
            } else {
                "VIOLATIONS"
            },
        );
    }

    let problems = violations(&matrix);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("[bench_lean] FAIL: {p}");
        }
        std::process::exit(1);
    }

    let doc = matrix_json(&matrix);
    if let Err(e) = validate(&doc) {
        eprintln!("[bench_lean] FAIL: emitted document is invalid: {e}");
        std::process::exit(1);
    }
    if smoke {
        // Determinism gate: a same-seed rerun must reproduce the
        // document byte for byte.
        let rerun = matrix_json(&run_matrix(&params));
        if rerun != doc {
            eprintln!("[bench_lean] FAIL: same-seed rerun diverged from the first run");
            std::process::exit(1);
        }
        println!("[bench_lean] same-seed rerun is byte-identical");
    }

    let out_path = match out_override {
        Some(out) => {
            let p = PathBuf::from(out);
            if p.is_absolute() {
                p
            } else {
                repo_root().join(p)
            }
        }
        None if smoke => sq_bench::figures_dir().join("BENCH_lean_smoke.json"),
        None => repo_root().join("results").join("BENCH_lean.json"),
    };
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &doc).expect("write ablation JSON");
    println!(
        "[bench_lean] ok: wrote {} ({} bytes)",
        out_path.display(),
        doc.len()
    );
}

fn repo_root() -> PathBuf {
    // crates/bench/ -> crates/ -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels below the repo root")
        .to_path_buf()
}
