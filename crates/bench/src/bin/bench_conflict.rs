//! Conflict-analysis benchmark: serial vs indexed vs indexed+parallel.
//!
//! Default mode runs the recorded configuration (64/256/1024-change
//! windows) and writes `results/BENCH_conflict.json` under the
//! repository root; `--smoke` runs the small configuration, writes the
//! document under `target/figures/`, and exits nonzero unless the
//! perf-regression gate holds: indexed+parallel wall time no worse than
//! the serial baseline on the 256-change window, and byte-identical
//! conflict matrices across all three modes (every window, every mode).
//! `--out <path>` overrides the destination in either mode (this is how
//! the committed trajectory file at the repo root is refreshed:
//! `bench_conflict --out BENCH_conflict.json`). Both modes validate the
//! emitted JSON before writing it.

use sq_bench::conflict::{run_conflict, validate, ConflictParams};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("[bench_conflict] FAIL: --out requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });
    let params = if smoke {
        ConflictParams::smoke()
    } else {
        ConflictParams::standard()
    };
    println!(
        "[bench_conflict] {} run: seed={} n_parts={} windows={:?} threads={} reps={}",
        if smoke { "smoke" } else { "standard" },
        params.seed,
        params.n_parts,
        params.windows,
        params.threads,
        params.reps
    );
    let report = run_conflict(&params);
    for r in &report.windows {
        println!(
            "[bench_conflict] window {:>5}: {:>8} pairs, {:>7} conflicts | serial {:>9.3} ms | indexed {:>8.3} ms ({:>6.1}x) | +parallel {:>8.3} ms ({:>6.1}x) | identical={}",
            r.n,
            r.pairs,
            r.conflicts,
            r.serial_nanos as f64 / 1e6,
            r.indexed_nanos as f64 / 1e6,
            r.speedup_indexed(),
            r.parallel_nanos as f64 / 1e6,
            r.speedup_parallel(),
            r.identical
        );
    }
    if smoke {
        if let Err(e) = report.smoke_gate() {
            eprintln!("[bench_conflict] FAIL: perf-regression gate: {e}");
            std::process::exit(1);
        }
        println!("[bench_conflict] gate ok: parallel <= serial and matrices identical");
    }
    let json = report.to_json();
    if let Err(e) = validate(&json) {
        eprintln!("[bench_conflict] FAIL: emitted document is invalid: {e}");
        std::process::exit(1);
    }
    let path = match out_override {
        Some(out) => {
            let p = PathBuf::from(out);
            if p.is_absolute() {
                p
            } else {
                repo_root().join(p)
            }
        }
        None if smoke => sq_bench::figures_dir().join("BENCH_conflict_smoke.json"),
        None => repo_root().join("results").join("BENCH_conflict.json"),
    };
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&path, &json).expect("write benchmark JSON");
    println!(
        "[bench_conflict] ok: wrote {} ({} bytes)",
        path.display(),
        json.len()
    );
}

fn repo_root() -> PathBuf {
    // crates/bench/ -> crates/ -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels below the repo root")
        .to_path_buf()
}
