//! Figure 14: state of the iOS mainline over one week *prior to*
//! SubmitQueue — hourly success (green) rate under trunk-based
//! development with post-submit detection and manual reverts.
//!
//! Paper anchor: the mainline was green only 52% of the time.

use sq_core::trunk::{simulate_trunk, TrunkConfig};
use sq_workload::{WorkloadBuilder, WorkloadParams};

fn main() {
    let hours = if sq_bench::quick() { 48.0 } else { 168.0 };
    // Organic mainline rate (production commits, not replay rates).
    let w = WorkloadBuilder::new(WorkloadParams::ios().with_rate(12.0))
        .seed(sq_bench::bench_seed())
        .duration_hours(hours)
        .build()
        .expect("valid params");
    let r = simulate_trunk(&w, &TrunkConfig::default());
    println!("Figure 14 — hourly mainline green rate before SubmitQueue ({hours:.0}h)");
    println!("{:>6} {:>12}", "hour", "green %");
    let mut rows = Vec::new();
    for (h, pct) in r.hourly_green_pct.iter().enumerate() {
        if h % 6 == 0 {
            println!("{h:>6} {pct:>12.1}");
        }
        rows.push(format!("{h},{pct:.2}"));
    }
    sq_bench::write_csv("fig14.csv", "hour,green_pct", &rows);
    println!(
        "\noverall green fraction: {:.1}% across {} breakages (paper: 52%)",
        r.green_fraction * 100.0,
        r.breakages
    );
    println!("since SubmitQueue's launch the mainline stays green 100% of the time (Section 8.5)");
}
