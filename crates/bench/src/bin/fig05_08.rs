//! Figures 5–8, rendered textually: the speculation tree (Fig. 5), the
//! speculation graphs under partial conflict knowledge (Figs. 6–7), and
//! the Figure 8 target-graph counterexample where two changes conflict
//! although their affected-target *names* are disjoint.

use sq_build::affected::{AffectedSet, SnapshotAnalysis};
use sq_build::conflict::{eq6_conflict, fast_path_conflict, union_graph_conflict};
use sq_core::analyzer::{ConflictAnalyzer, ConflictGraph};
use sq_core::predict::UniformPredictor;
use sq_core::speculation::SpeculationEngine;
use sq_vcs::{ObjectStore, Patch, RepoPath, Tree};
use sq_workload::{ChangeSpec, WorkloadBuilder, WorkloadParams};
use std::collections::HashMap;

/// Analyzer scripted from an explicit edge list over change ids.
struct Scripted(Vec<(u64, u64)>);
impl ConflictAnalyzer for Scripted {
    fn conflicts(&mut self, a: &ChangeSpec, b: &ChangeSpec) -> bool {
        let (x, y) = (a.id.0.min(b.id.0), a.id.0.max(b.id.0));
        self.0.contains(&(x, y))
    }
}

fn show_builds(title: &str, edges: &[(u64, u64)]) {
    let w = WorkloadBuilder::new(WorkloadParams::ios())
        .seed(1)
        .n_changes(3)
        .build()
        .expect("small workload");
    let mut analyzer = Scripted(edges.to_vec());
    let mut graph = ConflictGraph::new();
    let mut pending: Vec<&ChangeSpec> = Vec::new();
    for c in &w.changes {
        graph.admit(c, &pending, &mut analyzer);
        pending.push(c);
    }
    let builds = SpeculationEngine::select_builds(
        &w,
        &pending,
        &graph,
        &UniformPredictor,
        &HashMap::new(),
        &HashMap::new(),
        100,
    );
    println!("\n{title}");
    println!("  conflict edges: {edges:?}   (C1=id0, C2=id1, C3=id2)");
    println!("  speculation builds ({}):", builds.len());
    for b in &builds {
        println!("    {}  P_needed = {:.3}", b.key, b.value);
    }
}

fn main() {
    println!("Figures 5–7 — speculation tree vs speculation graphs");
    show_builds(
        "Figure 5: all three changes conflict — full tree, 2^3−1 = 7 builds",
        &[(0, 1), (0, 2), (1, 2)],
    );
    show_builds(
        "Figure 6: C1 ⊥ C2, both conflict C3 — 6 builds (C2 needs only B2)",
        &[(0, 2), (1, 2)],
    );
    show_builds(
        "Figure 7: C1 conflicts C2 and C3, C2 ⊥ C3 — 5 builds (paper: 'from seven to five')",
        &[(0, 1), (0, 2)],
    );

    // Figure 8: the dependency counterexample, on a real build graph.
    println!("\nFigure 8 — conflict with disjoint affected-target names");
    let mut store = ObjectStore::new();
    let mut tree = Tree::new();
    for (path, content) in [
        ("x/BUILD", "library(name = \"x\", srcs = [\"a.rs\"])"),
        ("x/a.rs", "x-v1"),
        (
            "y/BUILD",
            "library(name = \"y\", srcs = [\"a.rs\"], deps = [\"//x:x\"])",
        ),
        ("y/a.rs", "y-v1"),
        ("z/BUILD", "library(name = \"z\", srcs = [\"a.rs\"])"),
        ("z/a.rs", "z-v1"),
    ] {
        let id = store.put(content.as_bytes().to_vec());
        tree.insert(RepoPath::new(path).expect("valid"), id);
    }
    let base = SnapshotAnalysis::analyze(&tree, &store).expect("analyzable");
    let c1 = Patch::write(RepoPath::new("x/a.rs").expect("valid"), "x-v2");
    let c2 = Patch::write(
        RepoPath::new("z/BUILD").expect("valid"),
        "library(name = \"z\", srcs = [\"a.rs\"], deps = [\"//x:x\"])",
    );
    let t1 = c1.apply(&tree, &mut store).expect("applies");
    let t2 = c2.apply(&tree, &mut store).expect("applies");
    let t12 = c1.compose(&c2).apply(&tree, &mut store).expect("applies");
    let a1 = SnapshotAnalysis::analyze(&t1, &store).expect("analyzable");
    let a2 = SnapshotAnalysis::analyze(&t2, &store).expect("analyzable");
    let a12 = SnapshotAnalysis::analyze(&t12, &store).expect("analyzable");
    let d1 = AffectedSet::between(&base, &a1);
    let d2 = AffectedSet::between(&base, &a2);
    let show = |tag: &str, d: &AffectedSet| {
        let names: Vec<String> = d.names().map(|n| n.to_string()).collect();
        println!("  δ(H⊕{tag}) = {names:?}");
    };
    show("C1", &d1);
    show("C2", &d2);
    println!("  affected names intersect: {}", d1.names_intersect(&d2));
    println!(
        "  Equation 6 conflict:      {}",
        eq6_conflict(&base, &a1, &a2, &a12)
    );
    println!(
        "  fast path applicable:     {}",
        fast_path_conflict(&base, &a1, &a2).is_some()
    );
    println!(
        "  union-graph conflict:     {}",
        union_graph_conflict(&base, &a1, &a2)
    );
    println!("\npaper: names disjoint, yet the changes conflict — Eq. 6 and the union graph both catch it");
}
