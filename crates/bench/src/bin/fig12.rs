//! Figure 12: average throughput normalized against Oracle, vs workers,
//! at 300/400/500 changes/hour, for all five approaches.
//!
//! Paper shape: SubmitQueue has the least slowdown (→ ~0.8 with enough
//! workers); Single-Queue is worst (~0.05); Optimistic is flat in worker
//! count and below Speculate-all.

use sq_core::strategy::StrategyKind;

fn main() {
    let rates: Vec<f64> = sq_bench::rates()
        .into_iter()
        .filter(|&r| r >= 300.0)
        .collect();
    let rates = if rates.is_empty() { vec![300.0] } else { rates };
    let workers = sq_bench::worker_counts();
    let predictor = sq_bench::trained_predictor();
    let kinds = [
        StrategyKind::SubmitQueue,
        StrategyKind::SpeculateAll,
        StrategyKind::Optimistic,
        StrategyKind::SingleQueue,
    ];
    let mut rows = Vec::new();
    for &rate in &rates {
        let w = sq_bench::workload_at_rate(rate);
        println!("\n=== Figure 12 — normalized avg throughput @ {rate:.0} changes/hour ===");
        print!("{:>14} |", "strategy");
        for &nw in &workers {
            print!(" {nw:>8}");
        }
        println!("  (workers)");
        println!("{}", "-".repeat(16 + 9 * workers.len()));
        let mut oracle_tp = Vec::new();
        for &nw in &workers {
            let o = sq_bench::run_cell(
                &w,
                &sq_bench::strategy_for(StrategyKind::Oracle, &w, &predictor),
                nw,
                true,
            );
            oracle_tp.push(o.sustained_throughput_per_hour());
        }
        for kind in kinds {
            print!("{:>14} |", kind.name());
            for (i, &nw) in workers.iter().enumerate() {
                let r =
                    sq_bench::run_cell(&w, &sq_bench::strategy_for(kind, &w, &predictor), nw, true);
                let norm = if oracle_tp[i] > 0.0 {
                    r.sustained_throughput_per_hour() / oracle_tp[i]
                } else {
                    0.0
                };
                print!(" {norm:>8.2}");
                rows.push(format!(
                    "{},{rate},{nw},{norm:.3},{:.1},{:.1}",
                    kind.name(),
                    r.sustained_throughput_per_hour(),
                    oracle_tp[i]
                ));
            }
            println!();
            eprintln!("[fig12] {} rate={rate} done", kind.name());
        }
    }
    sq_bench::write_csv(
        "fig12.csv",
        "strategy,changes_per_hour,workers,normalized,throughput_per_hour,oracle_throughput",
        &rows,
    );
    println!("\npaper: SubmitQueue best (→~0.8), Single-Queue ~0.05, Optimistic flat");
}
