//! Recovery benchmark: measures crash-recovery replay throughput of the
//! durable SubmitQueue (`sq-store` journal + snapshots).
//!
//! Drives a real `DurableSubmitQueue` over an in-memory backend through
//! a landing workload, then repeatedly reopens the store and times the
//! snapshot + journal-suffix replay. Two phases isolate what snapshots
//! buy: `journal_only` (snapshotting disabled — every record replays on
//! open) and `snapshot_suffix` (periodic snapshots — only the tail
//! replays). The report goes to `target/figures/BENCH_recovery.json`.
//!
//! `--smoke` runs a small configuration and additionally asserts that
//! every reopen reconstructs byte-identical exported state, exiting
//! nonzero on any mismatch.

use sq_core::durable::DurableSubmitQueue;
use sq_core::RecoveryConfig;
use sq_exec::StepOutcome;
use sq_obs::JsonWriter;
use sq_store::{CrashPlan, DurableStoreConfig, MemStorage};
use sq_vcs::{Patch, RepoPath, Repository};
use std::sync::{Arc, Mutex};

type Shared = Arc<Mutex<MemStorage>>;

struct PhaseReport {
    name: &'static str,
    journal_records: u64,
    journal_bytes: u64,
    snapshot_bytes: u64,
    opens: u64,
    replay_micros_min: u64,
    replay_micros_mean: f64,
    records_per_sec: f64,
}

fn bench_repo() -> Repository {
    Repository::init([
        ("lib/BUILD", "library(name = \"lib\", srcs = [\"l.rs\"])"),
        ("lib/l.rs", "pub fn l() {}"),
        (
            "app/BUILD",
            "binary(name = \"app\", srcs = [\"m.rs\"], deps = [\"//lib:lib\"])",
        ),
        ("app/m.rs", "fn main() {}"),
    ])
    .unwrap()
}

/// Run `n_changes` landings against a fresh store with the given
/// snapshot cadence, then time `opens` recoveries.
fn run_phase(
    name: &'static str,
    n_changes: u32,
    snapshot_every: u64,
    opens: u64,
    check_exports: bool,
) -> PhaseReport {
    let storage: Shared = Arc::new(Mutex::new(MemStorage::with_crashes(CrashPlan::none())));
    let config = DurableStoreConfig::with_snapshot_every(snapshot_every);
    let dq = DurableSubmitQueue::open(
        bench_repo(),
        2,
        RecoveryConfig::disabled(),
        storage.clone(),
        config.clone(),
    )
    .expect("open fresh store");
    let action: Box<sq_core::service::StepAction> = Box::new(|_step, _tree| StepOutcome::Success);
    for i in 0..n_changes {
        dq.submit(
            "bench",
            format!("change {i}"),
            dq.head(),
            Patch::write(
                RepoPath::new("lib/l.rs").unwrap(),
                format!("pub fn l() {{ /* rev {i} */ }}"),
            ),
        )
        .expect("submit");
        dq.process_next(&action).expect("process");
    }
    let live_export = dq.export_state_json();
    let write_stats = dq.store_stats();
    let repo = dq.repository();
    drop(dq);

    let journal_bytes = storage
        .lock()
        .unwrap()
        .file(&config.journal_file)
        .map(|f| f.len() as u64)
        .unwrap_or(0);
    let mut total_micros = 0u64;
    let mut min_micros = u64::MAX;
    let mut replayed = 0u64;
    let mut snapshot_bytes = 0u64;
    for _ in 0..opens {
        let dq = DurableSubmitQueue::open(
            repo.clone(),
            2,
            RecoveryConfig::disabled(),
            storage.clone(),
            config.clone(),
        )
        .expect("reopen");
        let st = dq.store_stats();
        total_micros += st.replay_micros;
        min_micros = min_micros.min(st.replay_micros);
        replayed = st.replayed_records;
        snapshot_bytes = st.last_snapshot_bytes;
        if check_exports && dq.export_state_json() != live_export {
            eprintln!("[bench_recovery] FAIL: {name}: recovered state differs from live state");
            std::process::exit(1);
        }
    }
    let mean = total_micros as f64 / opens as f64;
    PhaseReport {
        name,
        journal_records: write_stats.appends,
        journal_bytes,
        snapshot_bytes,
        opens,
        replay_micros_min: min_micros,
        replay_micros_mean: mean,
        records_per_sec: replayed as f64 / (min_micros.max(1) as f64 / 1e6),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_changes, opens) = if smoke { (8, 3) } else { (64, 10) };
    println!(
        "[bench_recovery] {} run: changes={n_changes} opens={opens}",
        if smoke { "smoke" } else { "standard" }
    );
    let phases = [
        run_phase("journal_only", n_changes, u64::MAX, opens, smoke),
        run_phase("snapshot_suffix", n_changes, 16, opens, smoke),
    ];
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("benchmark", "recovery_replay");
    w.field_str("mode", if smoke { "smoke" } else { "standard" });
    w.field_u64("n_changes", u64::from(n_changes));
    w.key("phases");
    w.begin_array();
    for p in &phases {
        w.begin_object();
        w.field_str("name", p.name);
        w.field_u64("journal_records", p.journal_records);
        w.field_u64("journal_bytes", p.journal_bytes);
        w.field_u64("snapshot_bytes", p.snapshot_bytes);
        w.field_u64("opens", p.opens);
        w.field_u64("replay_micros_min", p.replay_micros_min);
        w.field_f64("replay_micros_mean", p.replay_micros_mean);
        w.field_f64("records_per_sec", p.records_per_sec);
        w.end_object();
        println!(
            "[bench_recovery] {}: {} records, {} journal bytes, {} snapshot bytes, \
             min replay {} us, {:.0} records/s",
            p.name,
            p.journal_records,
            p.journal_bytes,
            p.snapshot_bytes,
            p.replay_micros_min,
            p.records_per_sec
        );
    }
    w.end_array();
    w.end_object();
    let json = w.finish();
    let path = sq_bench::figures_dir().join("BENCH_recovery.json");
    std::fs::write(&path, &json).expect("write benchmark JSON");
    println!(
        "[bench_recovery] ok: wrote {} ({} bytes)",
        path.display(),
        json.len()
    );
}
