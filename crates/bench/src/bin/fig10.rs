//! Figure 10: CDF of Oracle turnaround time for 100..500 changes/hour
//! with effectively unconstrained workers (the paper used 2000, i.e. no
//! contention) — the difference between this and Figure 9 is the cost of
//! serializing conflicting changes.

use sq_core::strategy::{Strategy, StrategyKind};
use sq_sim::Cdf;

fn main() {
    let rates = sq_bench::rates();
    println!(
        "Figure 10 — CDF of Oracle turnaround time (minutes), {}h of arrivals, 2000 workers",
        sq_bench::bench_hours()
    );
    let mut cdfs: Vec<(f64, Cdf)> = Vec::new();
    for &rate in &rates {
        let w = sq_bench::workload_at_rate(rate);
        let strategy = Strategy::build(StrategyKind::Oracle, &w, None);
        let result = sq_bench::run_cell(&w, &strategy, 2000, true);
        cdfs.push((rate, Cdf::from_samples(&result.turnarounds_mins())));
    }
    print!("{:>10}", "minutes");
    for (rate, _) in &cdfs {
        print!(" {:>9.0}/h", rate);
    }
    println!();
    let mut rows = Vec::new();
    for m in (0..=120).step_by(10) {
        print!("{m:>10}");
        let mut row = format!("{m}");
        for (_, cdf) in &cdfs {
            let v = cdf.eval(m as f64);
            print!(" {v:>11.3}");
            row.push_str(&format!(",{v:.4}"));
        }
        println!();
        rows.push(row);
    }
    let header = std::iter::once("minutes".to_string())
        .chain(cdfs.iter().map(|(r, _)| format!("rate{r:.0}")))
        .collect::<Vec<_>>()
        .join(",");
    sq_bench::write_csv("fig10.csv", &header, &rows);
    println!("\npaper: higher rates shift the CDF right (more serialization waits)");
}
