//! Section 5.2 statistic: "only 7.9% (resp. 1.6%) of changes actually
//! cause a change to the build graph for iOS (resp. Backend) monorepos"
//! — the fact that makes the fast-path conflict check worthwhile.
//!
//! Verified at two levels: the workload generator's marginal, and the
//! *materialized* repository where graph changes are detected by actually
//! parsing BUILD files before and after each patch.

use sq_build::affected::SnapshotAnalysis;
use sq_workload::repo_model::MaterializedRepo;
use sq_workload::{WorkloadBuilder, WorkloadParams};

fn main() {
    let n = if sq_bench::quick() { 5_000 } else { 20_000 };
    println!("Section 5.2 — fraction of changes altering the build graph\n");
    println!("{:>10} {:>12} {:>10}", "platform", "generated", "paper");
    let mut rows = Vec::new();
    for (name, params, paper) in [
        ("iOS", WorkloadParams::ios(), 0.079),
        ("Android", WorkloadParams::android(), 0.079),
        ("Backend", WorkloadParams::backend(), 0.016),
    ] {
        let w = WorkloadBuilder::new(params)
            .seed(sq_bench::bench_seed())
            .n_changes(n)
            .build()
            .expect("valid params");
        let rate = w.graph_change_rate();
        println!("{name:>10} {rate:>12.4} {paper:>10.3}");
        rows.push(format!("{name},{rate:.4},{paper}"));
    }

    // Materialized check on a small repo: parse BUILD files for real.
    let mut params = WorkloadParams::ios();
    params.n_parts = 24;
    let m = MaterializedRepo::generate(&params).expect("repo generates");
    let w = WorkloadBuilder::new(params)
        .seed(sq_bench::bench_seed() ^ 1)
        .n_changes(if sq_bench::quick() { 150 } else { 400 })
        .build()
        .expect("valid params");
    let mut repo = m.repo.clone();
    let tree = repo.head_tree().expect("head tree");
    let base = SnapshotAnalysis::analyze(&tree, repo.store()).expect("base analyzable");
    let mut structural = 0usize;
    for c in &w.changes {
        let patch = m.patch_for(c);
        let new_tree = patch.apply(&tree, repo.store_mut()).expect("patch applies");
        let analysis = SnapshotAnalysis::analyze(&new_tree, repo.store()).expect("analyzable");
        if !base.same_graph_structure(&analysis) {
            structural += 1;
        }
    }
    let measured = structural as f64 / w.changes.len() as f64;
    println!(
        "\nmaterialized repo cross-check: {:.1}% of {} concrete patches changed the parsed graph",
        measured * 100.0,
        w.changes.len()
    );
    rows.push(format!("materialized_ios,{measured:.4},0.079"));
    sq_bench::write_csv("graph_change_rate.csv", "platform,measured,paper", &rows);
}
