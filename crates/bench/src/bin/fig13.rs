//! Figure 13: P95 turnaround-time improvement from the conflict analyzer
//! (1 − with/without), vs workers, at 300/400/500 changes/hour, for all
//! approaches.
//!
//! Paper shape: Oracle improves up to ~60%; SubmitQueue and Speculate-all
//! benefit substantially; Optimistic only ~20% and flat; deep build
//! graphs limit the benefit (Section 8.4).

use sq_core::strategy::StrategyKind;

fn main() {
    let rates: Vec<f64> = sq_bench::rates()
        .into_iter()
        .filter(|&r| r >= 300.0)
        .collect();
    let rates = if rates.is_empty() { vec![300.0] } else { rates };
    let workers = sq_bench::worker_counts();
    let predictor = sq_bench::trained_predictor();
    let kinds = [
        StrategyKind::SubmitQueue,
        StrategyKind::Oracle,
        StrategyKind::SpeculateAll,
        StrategyKind::Optimistic,
        StrategyKind::SingleQueue,
    ];
    let mut rows = Vec::new();
    for &rate in &rates {
        let w = sq_bench::workload_at_rate(rate);
        println!(
            "\n=== Figure 13 — P95 turnaround improvement with conflict analyzer @ {rate:.0}/h ==="
        );
        print!("{:>14} |", "strategy");
        for &nw in &workers {
            print!(" {nw:>8}");
        }
        println!("  (workers)");
        println!("{}", "-".repeat(16 + 9 * workers.len()));
        for kind in kinds {
            print!("{:>14} |", kind.name());
            for &nw in &workers {
                let strategy = sq_bench::strategy_for(kind, &w, &predictor);
                let with = sq_bench::run_cell(&w, &strategy, nw, true);
                let without = sq_bench::run_cell(&w, &strategy, nw, false);
                let (_, p95_with, _) = with.turnaround_p50_p95_p99();
                let (_, p95_without, _) = without.turnaround_p50_p95_p99();
                let improvement = if p95_without > 0.0 {
                    (1.0 - p95_with / p95_without).max(0.0)
                } else {
                    0.0
                };
                print!(" {improvement:>8.2}");
                rows.push(format!(
                    "{},{rate},{nw},{improvement:.3},{p95_with:.2},{p95_without:.2}",
                    kind.name()
                ));
            }
            println!();
            eprintln!("[fig13] {} rate={rate} done", kind.name());
        }
    }
    sq_bench::write_csv(
        "fig13.csv",
        "strategy,changes_per_hour,workers,p95_improvement,p95_with,p95_without",
        &rows,
    );
    println!("\npaper: Oracle up to 0.6; Optimistic ~0.2 and flat in workers");
}
