//! Figure 1: probability of real conflicts as the number of concurrent
//! and potentially conflicting changes increases (iOS and Android).
//!
//! Paper anchors: ≈5% at n = 2, ≈40% at n = 16.

use sq_workload::curves::real_conflict_probability;
use sq_workload::WorkloadParams;

fn main() {
    let trials = if sq_bench::quick() { 300 } else { 1200 };
    let seed = sq_bench::bench_seed();
    let platforms = [
        ("iOS", WorkloadParams::ios()),
        ("Android", WorkloadParams::android()),
    ];
    println!("Figure 1 — P(real conflict) vs #concurrent potentially-conflicting changes");
    println!("{:>4} {:>10} {:>10}", "n", "iOS", "Android");
    let mut rows = Vec::new();
    for n in (2..=16).step_by(2) {
        let mut cells = Vec::new();
        for (_, params) in &platforms {
            cells.push(real_conflict_probability(params, n, trials, seed));
        }
        println!("{:>4} {:>10.3} {:>10.3}", n, cells[0], cells[1]);
        rows.push(format!("{n},{:.4},{:.4}", cells[0], cells[1]));
    }
    sq_bench::write_csv("fig01.csv", "n_concurrent,ios,android", &rows);
    println!("\npaper: ~0.05 at n=2, ~0.40 at n=16 (both platforms)");
}
