//! Run every figure binary in sequence (convenience wrapper) by invoking
//! the sibling executables. Useful for regenerating the complete
//! EXPERIMENTS.md evidence in one command:
//!
//! ```bash
//! cargo run --release -p sq-bench --bin run_all
//! ```

use std::process::Command;

const BINARIES: &[&str] = &[
    "fig01",
    "fig02",
    "fig05_08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "model_eval",
    "graph_change_rate",
    "ablation_s10",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in BINARIES {
        println!("\n━━━━━━━━━━━━━━━━ {name} ━━━━━━━━━━━━━━━━");
        let path = bin_dir.join(name);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo (slower, but works from any directory).
            Command::new("cargo")
                .args(["run", "--release", "-p", "sq-bench", "--bin", name])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("{name} failed to launch: {e}");
                failures.push(*name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall figures regenerated; CSVs in target/figures/");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
