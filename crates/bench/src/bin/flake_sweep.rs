//! Flake-rate sweep: how much infrastructure flakiness costs, and that
//! it never costs *correctness*.
//!
//! Sweeps the per-attempt infra-fault probability over the controlled
//! replay workload (300 changes/hour, SubmitQueue strategy) and reports
//! for each rate: wrongly-rejected changes (must stay 0 at every rate —
//! infra evidence is never grounds for rejection), retried build
//! attempts, backoff charged, and the turnaround/makespan inflation
//! relative to the fault-free baseline.

use sq_core::audit::{audit_green, audit_rejections_justified, recovery_report};
use sq_core::planner::{run_simulation, PlannerConfig, SimFaults};
use sq_core::strategy::StrategyKind;
use sq_sim::Cdf;
use sq_workload::Workload;

const FLAKE_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

/// Rejections the ground truth cannot justify: the change passes alone
/// and conflicts with nothing that landed while it was in flight.
fn count_wrongly_rejected(workload: &Workload, result: &sq_core::planner::SimResult) -> usize {
    let truth = workload.truth();
    let committed: std::collections::HashSet<_> = result.commit_log.iter().copied().collect();
    let resolved_at: std::collections::HashMap<_, _> =
        result.records.iter().map(|r| (r.id, r.resolved)).collect();
    result
        .records
        .iter()
        .filter(|rec| !committed.contains(&rec.id))
        .filter(|rec| {
            let c = &workload.changes[rec.id.0 as usize];
            truth.succeeds_alone(c)
                && !result.commit_log.iter().any(|&d_id| {
                    let d = &workload.changes[d_id.0 as usize];
                    let d_committed = resolved_at
                        .get(&d_id)
                        .copied()
                        .unwrap_or(sq_sim::SimTime::ZERO);
                    c.submit_time < d_committed && truth.real_conflict(c, d)
                })
        })
        .count()
}

fn main() {
    let rate = 300.0;
    let workers = 128;
    let workload = sq_bench::workload_at_rate(rate);
    let predictor = sq_bench::trained_predictor();
    let strategy = sq_bench::strategy_for(StrategyKind::SubmitQueue, &workload, &predictor);

    println!(
        "Flake sweep — SubmitQueue, {rate:.0} changes/hour, {workers} workers, \
         {} changes",
        workload.changes.len()
    );
    println!(
        "{:>6} {:>7} {:>9} {:>8} {:>9} {:>9} {:>9} {:>10}",
        "flake", "wrong", "retries", "backoff", "p50 turn", "p95 turn", "makespan", "quarantine"
    );

    let mut rows = Vec::new();
    let mut baseline_makespan = 0.0_f64;
    for &flake in &FLAKE_RATES {
        let config = PlannerConfig {
            workers,
            faults: (flake > 0.0)
                .then(|| SimFaults::at_rate(flake, sq_bench::bench_seed() ^ 0xF1A4E)),
            ..PlannerConfig::default()
        };
        let result = run_simulation(&workload, &strategy, &config);

        // Correctness gates: green mainline, every rejection justified
        // by content or real conflict — never by an injected fault.
        audit_green(&workload, &result).expect("mainline stays green under faults");
        audit_rejections_justified(&workload, &result).expect("no infra-caused rejections");
        let wrong = count_wrongly_rejected(&workload, &result);
        assert_eq!(wrong, 0, "flake rate {flake}: wrongly rejected changes");

        let cdf = Cdf::from_samples(&result.turnarounds_mins());
        let p50 = cdf.quantile(0.5).unwrap_or(0.0);
        let p95 = cdf.quantile(0.95).unwrap_or(0.0);
        let makespan = result.makespan.as_hours_f64();
        if flake == 0.0 {
            baseline_makespan = makespan;
        }
        println!(
            "{flake:>6.2} {wrong:>7} {:>9} {:>7.1}m {p50:>8.1}m {p95:>8.1}m {:>8.2}h {:>10}",
            result.infra_retries,
            result.infra_backoff.as_mins_f64(),
            makespan,
            result.quarantined.len(),
        );
        println!("        [{}]", recovery_report(&result));
        rows.push(format!(
            "{flake},{wrong},{},{:.2},{p50:.2},{p95:.2},{makespan:.3},{}",
            result.infra_retries,
            result.infra_backoff.as_mins_f64(),
            result.quarantined.len(),
        ));
    }
    sq_bench::write_csv(
        "flake_sweep.csv",
        "flake_rate,wrongly_rejected,infra_retries,backoff_mins,p50_turnaround_mins,\
         p95_turnaround_mins,makespan_hours,quarantined",
        &rows,
    );
    println!(
        "\nwrongly-rejected stays 0 at every flake rate; faults only add latency \
         (baseline makespan {baseline_makespan:.2}h)"
    );
}
