//! Figure 9: CDF of build durations for changes submitted to the iOS and
//! Android monorepos.
//!
//! Paper shape: both platforms nearly overlap; P50 around half an hour,
//! tail out to ~120 minutes.

use sq_sim::{Cdf, Xoshiro256StarStar};
use sq_workload::duration::DurationModel;
use sq_workload::WorkloadParams;

fn main() {
    let n = if sq_bench::quick() { 20_000 } else { 100_000 };
    let platforms = [
        ("iOS", WorkloadParams::ios()),
        ("Android", WorkloadParams::android()),
    ];
    let mut cdfs = Vec::new();
    for (_, params) in &platforms {
        let model = DurationModel::new(params);
        let mut rng = Xoshiro256StarStar::seed_from_u64(sq_bench::bench_seed());
        let samples: Vec<f64> = (0..n)
            .map(|_| model.sample(&mut rng).as_mins_f64())
            .collect();
        cdfs.push(Cdf::from_samples(&samples));
    }
    println!("Figure 9 — CDF of build duration (minutes)");
    println!("{:>10} {:>10} {:>10}", "minutes", "iOS", "Android");
    let mut rows = Vec::new();
    for m in (0..=120).step_by(10) {
        let ios = cdfs[0].eval(m as f64);
        let android = cdfs[1].eval(m as f64);
        println!("{m:>10} {ios:>10.3} {android:>10.3}");
        rows.push(format!("{m},{ios:.4},{android:.4}"));
    }
    sq_bench::write_csv("fig09.csv", "minutes,ios,android", &rows);
    println!(
        "\nmedians: iOS {:.1} min, Android {:.1} min (paper: ≈27/25 min, overlapping CDFs)",
        cdfs[0].quantile(0.5).unwrap(),
        cdfs[1].quantile(0.5).unwrap()
    );
}
