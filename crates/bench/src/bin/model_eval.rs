//! Section 7.2 model report: train the success/conflict logistic models
//! on a 70/30 split of historical changes, report validation accuracy
//! (paper: 97%), the strongest features (paper: succeeded speculations,
//! revert/test plans, pre-submit status positive; failed speculations and
//! resubmission count negative), and the RFE feature reduction.

use sq_core::predict::LearnedPredictor;
use sq_ml::{recursive_feature_elimination, Dataset, Scaler, TrainConfig};
use sq_sim::Xoshiro256StarStar;
use sq_workload::features::{success_features, SUCCESS_FEATURES};

fn main() {
    let history = sq_bench::training_history();
    println!(
        "Section 7.2 model evaluation — {} historical changes, 70/30 split",
        history.changes.len()
    );

    let (_, report) = LearnedPredictor::train(&history, sq_bench::bench_seed());
    println!(
        "\nsuccess model:  accuracy {:.1}%   AUC {:.3}   (paper: 97%)",
        report.success_accuracy * 100.0,
        report.success_auc
    );
    println!(
        "conflict model: accuracy {:.1}%",
        report.conflict_accuracy * 100.0
    );
    println!("\ntop features by |standardized weight|:");
    for (i, f) in report.success_feature_ranking.iter().take(6).enumerate() {
        println!("  {}. {f}", i + 1);
    }

    // RFE over the success features (paper: reduce to the bare minimum).
    let mut rng = Xoshiro256StarStar::seed_from_u64(sq_bench::bench_seed() ^ 0xFE);
    let mut data = Dataset::new(SUCCESS_FEATURES.iter().map(|s| s.to_string()).collect());
    for c in &history.changes {
        let dev = history.developer(c.developer);
        let (ok, fail) = if c.intrinsic_success {
            (rng.next_below(4) as u32 + 1, rng.next_below(2) as u32)
        } else {
            (rng.next_below(2) as u32, rng.next_below(4) as u32 + 1)
        };
        data.push(success_features(c, dev, ok, fail), c.intrinsic_success);
    }
    let split = data.split(0.7, &mut rng);
    let rfe =
        recursive_feature_elimination(&split.train, &split.test, 5, 2, &TrainConfig::default());
    println!(
        "\nRFE: {} → {} features, accuracy per round: {:?}",
        SUCCESS_FEATURES.len(),
        rfe.selected.len(),
        rfe.accuracy_per_round
            .iter()
            .map(|a| format!("{:.3}", a))
            .collect::<Vec<_>>()
    );
    println!("surviving features: {:?}", rfe.selected_names);

    // Scaler sanity: standardized columns should be ~N(0,1) on train.
    let scaler = Scaler::fit(&split.train);
    let z = scaler.transform(&split.train);
    let first_col_mean: f64 = z.rows().iter().map(|r| r[0]).sum::<f64>() / z.len().max(1) as f64;
    println!("\n(standardization check: first-column mean after z-score = {first_col_mean:.2e})");

    let rows = vec![
        format!("success_accuracy,{:.4}", report.success_accuracy),
        format!("success_auc,{:.4}", report.success_auc),
        format!("conflict_accuracy,{:.4}", report.conflict_accuracy),
        format!("rfe_final_features,{}", rfe.selected.len()),
        format!(
            "rfe_final_accuracy,{:.4}",
            rfe.accuracy_per_round.last().copied().unwrap_or(0.0)
        ),
        format!("top_feature,{}", report.success_feature_ranking[0]),
    ];
    sq_bench::write_csv("model_eval.csv", "metric,value", &rows);
}
