//! Ablations for the paper's Section 10 extensions (implemented here as
//! future work made concrete):
//!
//! * **change reordering** — greedy out-of-order commits vs. strict
//!   submission order;
//! * **build preemption guard** — protecting nearly-finished builds from
//!   gating-build preemption;
//! * **batching independent changes** — batch-and-bisect at several batch
//!   sizes, trading builds-per-change against turnaround;
//! * **gradient boosting vs logistic regression** — the §10 "other ML
//!   techniques" comparison on the §7.2 features.

use sq_core::batching::{simulate_batching, BatchingConfig};
use sq_core::planner::{run_simulation, PlannerConfig};
use sq_core::strategy::StrategyKind;
use sq_ml::{BoostConfig, Dataset, GradientBoostedStumps, LogisticRegression, Scaler, TrainConfig};
use sq_sim::Xoshiro256StarStar;
use sq_workload::features::{success_features, SUCCESS_FEATURES};

fn main() {
    let mut rows = Vec::new();
    let w = sq_bench::workload_at_rate(300.0);
    let predictor = sq_bench::trained_predictor();
    let workers = 150;

    // ---- reordering & preemption guard --------------------------------
    println!("=== Section 10 ablations @ 300 changes/h, {workers} workers ===\n");
    println!(
        "{:>34} {:>9} {:>9} {:>9} {:>9}",
        "planner variant", "P50", "P95", "aborted", "commits"
    );
    for (name, reorder, guard, epoch_secs) in [
        ("baseline (in order, no guard)", false, None, None),
        ("reorder", true, None, None),
        ("preemption guard 0.8", false, Some(0.8), None),
        ("reorder + guard 0.8", true, Some(0.8), None),
        ("epoch 30s (paper §6)", false, None, Some(30u64)),
        ("epoch 10min", false, None, Some(600)),
    ] {
        let strategy = sq_bench::strategy_for(StrategyKind::SubmitQueue, &w, &predictor);
        let config = PlannerConfig {
            workers,
            reorder,
            preemption_guard: guard,
            epoch: epoch_secs.map(sq_sim::SimDuration::from_secs),
            ..PlannerConfig::default()
        };
        let r = run_simulation(&w, &strategy, &config);
        sq_core::audit::audit_green(&w, &r).expect("extension keeps master green");
        let (p50, p95, _) = r.turnaround_p50_p95_p99();
        println!(
            "{name:>34} {p50:>9.1} {p95:>9.1} {:>9} {:>9}",
            r.builds_aborted,
            r.committed()
        );
        rows.push(format!(
            "planner,{name},{p50:.1},{p95:.1},{},{}",
            r.builds_aborted,
            r.committed()
        ));
    }

    // ---- batching ------------------------------------------------------
    println!("\n=== batching independent changes (batch-and-bisect) ===\n");
    println!(
        "{:>12} {:>9} {:>9} {:>14} {:>16}",
        "max batch", "P50", "P95", "builds/change", "worker-min/commit"
    );
    for k in [1usize, 2, 4, 8, 16] {
        let r = simulate_batching(
            &w,
            &BatchingConfig {
                max_batch: k,
                workers,
                ..BatchingConfig::default()
            },
        );
        let (p50, p95, _) = r
            .turnaround_p50_p95_p99()
            .expect("workload resolves changes");
        let bpc = r.builds_per_change().expect("workload resolves changes");
        let wmpc = r
            .worker_mins_per_commit()
            .expect("workload commits changes");
        println!("{k:>12} {p50:>9.1} {p95:>9.1} {bpc:>14.2} {wmpc:>16.1}");
        rows.push(format!(
            "batching,k={k},{p50:.1},{p95:.1},{bpc:.3},{wmpc:.1}"
        ));
    }
    println!("\npaper §10: batching lowers hardware cost; mispredicted batches raise turnaround");

    // ---- gradient boosting vs logistic ----------------------------------
    println!("\n=== §10 'other ML techniques': gradient boosting vs logistic ===\n");
    let history = sq_bench::training_history();
    let mut rng = Xoshiro256StarStar::seed_from_u64(sq_bench::bench_seed() ^ 0xB005);
    let mut data = Dataset::new(SUCCESS_FEATURES.iter().map(|s| s.to_string()).collect());
    for c in &history.changes {
        let dev = history.developer(c.developer);
        let (ok, fail) = if c.intrinsic_success {
            (rng.next_below(4) as u32 + 1, rng.next_below(2) as u32)
        } else {
            (rng.next_below(2) as u32, rng.next_below(4) as u32 + 1)
        };
        data.push(success_features(c, dev, ok, fail), c.intrinsic_success);
    }
    let split = data.split(0.7, &mut rng);
    let scaler = Scaler::fit(&split.train);
    let z_train = scaler.transform(&split.train);
    let z_test = scaler.transform(&split.test);
    let (logit, _) = LogisticRegression::fit(&z_train, &TrainConfig::default());
    let (gbm, _) = GradientBoostedStumps::fit(&split.train, &BoostConfig::default());
    let logit_acc = logit.accuracy(&z_test);
    let gbm_acc = gbm.accuracy(&split.test);
    let logit_auc = sq_ml::roc_auc(&logit.predict(&z_test), z_test.labels());
    let gbm_auc = sq_ml::roc_auc(&gbm.predict(&split.test), split.test.labels());
    println!(
        "logistic regression: accuracy {:.2}%  AUC {logit_auc:.4}",
        logit_acc * 100.0
    );
    println!(
        "gradient boosting:   accuracy {:.2}%  AUC {gbm_auc:.4}  ({} stumps)",
        gbm_acc * 100.0,
        gbm.len()
    );
    rows.push(format!("ml,logistic,{logit_acc:.4},{logit_auc:.4},,"));
    rows.push(format!("ml,gbm,{gbm_acc:.4},{gbm_auc:.4},,"));

    sq_bench::write_csv("ablation_s10.csv", "group,variant,a,b,c,d", &rows);
}
