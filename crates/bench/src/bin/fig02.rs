//! Figure 2: probability of a mainline breakage as change staleness
//! increases (log-scale x-axis, 0.1 h .. 100 h).
//!
//! Paper anchors: changes with 1–10 h staleness carry a 10–20% breakage
//! risk; the curve keeps rising toward 100 h.

use sq_workload::curves::breakage_vs_staleness;
use sq_workload::WorkloadParams;

fn main() {
    let trials = if sq_bench::quick() { 400 } else { 1500 };
    let seed = sq_bench::bench_seed();
    // Organic mainline commit rate while changes are in development
    // (production mainlines absorb on the order of ten commits/hour;
    // distinct from the Section 8 controlled replay rates).
    let organic_rate = 12.0;
    let platforms = [
        ("iOS", WorkloadParams::ios()),
        ("Android", WorkloadParams::android()),
    ];
    let staleness_hours = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];
    println!("Figure 2 — P(mainline breakage) vs change staleness (hours)");
    println!("{:>10} {:>10} {:>10}", "staleness", "iOS", "Android");
    let mut rows = Vec::new();
    for &h in &staleness_hours {
        let mut cells = Vec::new();
        for (_, params) in &platforms {
            cells.push(breakage_vs_staleness(params, h, organic_rate, trials, seed));
        }
        println!("{:>10.1} {:>10.3} {:>10.3}", h, cells[0], cells[1]);
        rows.push(format!("{h},{:.4},{:.4}", cells[0], cells[1]));
    }
    sq_bench::write_csv("fig02.csv", "staleness_hours,ios,android", &rows);
    println!("\npaper: ~0.1–0.2 at 1–10h staleness, rising with staleness");
}
