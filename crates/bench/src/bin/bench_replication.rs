//! Replication benchmark: WAL-shipping throughput and fenced-failover
//! measurements for Async vs Quorum ack modes at 1/2/3 followers.
//!
//! Default mode runs the recorded configuration and writes the
//! deterministic document to `results/BENCH_replication.json` under the
//! repository root (the wall-clock companion always goes to
//! `target/figures/BENCH_replication_timing.json`); `--smoke` runs the
//! small configuration, writes the document under `target/figures/`,
//! and exits nonzero unless the zero-loss gate holds: every seeded
//! leader kill fired, every promoted replica's tail was clean, and the
//! post-failover state is byte-identical to an uncrashed twin's.
//! `--out <path>` overrides the destination in either mode (this is how
//! the committed trajectory file at the repo root is refreshed:
//! `bench_replication --out BENCH_replication.json`). Both modes
//! validate the emitted JSON before writing it.

use sq_bench::replication::{run_replication, validate, ReplicationParams};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("[bench_replication] FAIL: --out requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });
    let params = if smoke {
        ReplicationParams::smoke()
    } else {
        ReplicationParams::standard()
    };
    println!(
        "[bench_replication] {} run: seed={} n_parts={} n_changes={} followers={:?} kill_after={}",
        if smoke { "smoke" } else { "standard" },
        params.seed,
        params.n_parts,
        params.n_changes,
        params.follower_counts,
        params.kill_after
    );
    let report = run_replication(&params);
    for c in &report.cells {
        println!(
            "[bench_replication] cell {:>6?} x{}: {:>3} landed | {:>5} ships | {:>6} records | {:>9} bytes | {:>9.3} ms ({:>7.1} changes/s)",
            c.mode,
            c.followers,
            c.landed,
            c.ships,
            c.shipped_records,
            c.shipped_bytes,
            c.elapsed_nanos as f64 / 1e6,
            c.changes as f64 / (c.elapsed_nanos.max(1) as f64 / 1e9),
        );
    }
    for f in &report.failover {
        println!(
            "[bench_replication] failover {:>6?}: epoch {} | durable_lsn {} | {} replayed | promote {:>7.3} ms | identical={}",
            f.mode,
            f.epoch,
            f.durable_lsn,
            f.replayed_records,
            f.promote_nanos as f64 / 1e6,
            f.export_identical
        );
    }
    if smoke {
        if let Err(e) = report.smoke_gate() {
            eprintln!("[bench_replication] FAIL: zero-loss gate: {e}");
            std::process::exit(1);
        }
        println!(
            "[bench_replication] gate ok: failover states identical, tails clean, full quorum"
        );
    }
    let json = report.to_json();
    if let Err(e) = validate(&json) {
        eprintln!("[bench_replication] FAIL: emitted document is invalid: {e}");
        std::process::exit(1);
    }
    let timing_path = sq_bench::figures_dir().join("BENCH_replication_timing.json");
    std::fs::write(&timing_path, report.to_timing_json()).expect("write timing JSON");
    let path = match out_override {
        Some(out) => {
            let p = PathBuf::from(out);
            if p.is_absolute() {
                p
            } else {
                repo_root().join(p)
            }
        }
        None if smoke => sq_bench::figures_dir().join("BENCH_replication_smoke.json"),
        None => repo_root().join("results").join("BENCH_replication.json"),
    };
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&path, &json).expect("write benchmark JSON");
    println!(
        "[bench_replication] ok: wrote {} ({} bytes) and {}",
        path.display(),
        json.len(),
        timing_path.display()
    );
}

fn repo_root() -> PathBuf {
    // crates/bench/ -> crates/ -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels below the repo root")
        .to_path_buf()
}
