//! Diagnostic: per-strategy run summary at one grid cell (not a paper
//! figure; used to sanity-check the planner's behaviour).

use sq_core::strategy::StrategyKind;

fn main() {
    let rate: f64 = std::env::var("R")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300.0);
    let workers: usize = std::env::var("W")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300.0 as usize);
    let w = sq_bench::workload_at_rate(rate);
    let predictor = sq_bench::trained_predictor();
    println!(
        "cell: {rate:.0} changes/h, {workers} workers, {} changes over {:.2}h",
        w.changes.len(),
        w.horizon().as_hours_f64()
    );
    println!(
        "{:>14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "strategy", "commit", "reject", "p50", "p95", "makespan", "started", "aborted", "util"
    );
    for kind in StrategyKind::all() {
        let strategy = sq_bench::strategy_for(kind, &w, &predictor);
        let r = sq_bench::run_cell(&w, &strategy, workers, true);
        let (p50, p95, _) = r.turnaround_p50_p95_p99();
        println!(
            "{:>14} {:>9} {:>9} {:>9.1} {:>9.1} {:>8.2}h {:>9} {:>9} {:>8.2}",
            kind.name(),
            r.committed(),
            r.rejected(),
            p50,
            p95,
            r.makespan.as_hours_f64(),
            r.builds_started,
            r.builds_aborted,
            r.utilization
        );
    }
}
