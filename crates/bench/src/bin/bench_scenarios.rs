//! The adversarial scenario matrix, machine-readable.
//!
//! Runs every named scenario (baseline, revert-storm, flaky-cluster,
//! hub-touch, diurnal-spike, shard-stress) through every scheduling
//! strategy, audits
//! each run, and writes one JSON document per scenario plus the combined
//! matrix document.
//!
//! Default mode runs the recorded full-duration configuration and writes
//! `results/BENCH_scenarios.json` (+ `results/scenarios/<name>.json`)
//! under the repository root; `--out <path>` overrides the matrix
//! destination (how the committed trajectory at the repo root is
//! refreshed: `bench_scenarios --out BENCH_scenarios.json`). `--smoke`
//! runs a small configuration, writes under `target/figures/`, and exits
//! nonzero unless every scenario × strategy is always-green with zero
//! wrongful rejections and a same-seed rerun reproduces the matrix
//! document byte for byte.

use sq_bench::scenarios::{
    matrix_json, run_matrix, scenario_json, validate, violations, ScenarioBenchParams,
};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_override = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("[bench_scenarios] FAIL: --out requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });
    let params = if smoke {
        ScenarioBenchParams::smoke()
    } else {
        ScenarioBenchParams::standard()
    };
    println!(
        "[bench_scenarios] {} run: seed={} history={}{}",
        if smoke { "smoke" } else { "standard" },
        params.seed,
        params.history_changes,
        params
            .n_changes_override
            .map(|n| format!(" changes/scenario={n}"))
            .unwrap_or_else(|| " (full configured durations)".into()),
    );

    let runs = run_matrix(&params);
    for run in &runs {
        let clean = run.outcomes.iter().all(|o| o.clean());
        println!(
            "[bench_scenarios]   {:14} {} strategies, {}",
            run.manifest.name,
            run.outcomes.len(),
            if clean { "all clean" } else { "VIOLATIONS" },
        );
    }

    let problems = violations(&runs);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("[bench_scenarios] FAIL: {p}");
        }
        std::process::exit(1);
    }

    let doc = matrix_json(&params, &runs);
    if let Err(e) = validate(&doc) {
        eprintln!("[bench_scenarios] FAIL: emitted matrix document is invalid: {e}");
        std::process::exit(1);
    }
    if smoke {
        // Determinism gate: a same-seed rerun must reproduce the matrix
        // document byte for byte.
        let rerun = matrix_json(&params, &run_matrix(&params));
        if rerun != doc {
            eprintln!("[bench_scenarios] FAIL: same-seed rerun diverged from the first run");
            std::process::exit(1);
        }
        println!("[bench_scenarios] same-seed rerun is byte-identical");
    }

    let base = if smoke {
        sq_bench::figures_dir()
    } else {
        repo_root().join("results")
    };
    let scenario_dir = base.join("scenarios");
    std::fs::create_dir_all(&scenario_dir).expect("create scenario output directory");
    for run in &runs {
        let path = scenario_dir.join(format!("{}.json", run.manifest.name));
        std::fs::write(&path, scenario_json(run)).expect("write scenario JSON");
        println!("[bench_scenarios] wrote {}", path.display());
    }
    let matrix_path = match out_override {
        Some(out) => {
            let p = PathBuf::from(out);
            if p.is_absolute() {
                p
            } else {
                repo_root().join(p)
            }
        }
        None if smoke => base.join("BENCH_scenarios_smoke.json"),
        None => base.join("BENCH_scenarios.json"),
    };
    if let Some(dir) = matrix_path.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&matrix_path, &doc).expect("write matrix JSON");
    println!(
        "[bench_scenarios] ok: wrote {} ({} bytes)",
        matrix_path.display(),
        doc.len()
    );
}

fn repo_root() -> PathBuf {
    // crates/bench/ -> crates/ -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels below the repo root")
        .to_path_buf()
}
